//! Integration: message-passing collectives (the paper's §8 future work)
//! over real networks.

use desim::Time;
use macrochip::prelude::*;
use macrochip::runner::{drive, DriveLimits};
use netcore::PacketSource;
use workloads::{Collective, MessagePassingWorkload};

fn run(kind: NetworkKind, collective: Collective, bytes: u32) -> f64 {
    let config = MacrochipConfig::scaled();
    let mut net = networks::build(kind, config);
    let mut w = MessagePassingWorkload::new(&config.grid, collective, bytes, 1);
    let expected = w.total_messages();
    let outcome = drive(
        net.as_mut(),
        &mut w,
        DriveLimits {
            deadline: Time::from_us(1_000_000),
            max_stalled: usize::MAX,
        },
    );
    assert!(!outcome.timed_out, "{kind} timed out");
    assert!(w.is_exhausted(), "{kind} did not finish");
    // Packets per message: bytes / 64-byte lines.
    let per_message = bytes.div_ceil(64) as u64;
    assert_eq!(
        net.stats().delivered_packets(),
        expected * per_message,
        "{kind} conservation"
    );
    w.finished_at().expect("finished").as_us_f64()
}

#[test]
fn every_network_completes_every_collective() {
    for kind in NetworkKind::ALL {
        for collective in Collective::ALL {
            let us = run(kind, collective, 256);
            assert!(us > 0.0, "{kind} {}", collective.name());
        }
    }
}

#[test]
fn halo_exchange_favors_the_limited_network() {
    // Neighbor-only traffic maps exactly onto the row/column channels.
    let limited = run(
        NetworkKind::LimitedPointToPoint,
        Collective::HaloExchange,
        1024,
    );
    for kind in [
        NetworkKind::PointToPoint,
        NetworkKind::TokenRing,
        NetworkKind::CircuitSwitched,
    ] {
        let other = run(kind, Collective::HaloExchange, 1024);
        assert!(
            other > limited,
            "{kind} ({other} us) beat limited p2p ({limited} us) on halo"
        );
    }
}

#[test]
fn circuit_setup_compounds_across_butterfly_steps() {
    // Six dependent steps, each paying the setup round trip.
    let p2p = run(NetworkKind::PointToPoint, Collective::ButterflyExchange, 64);
    let circuit = run(
        NetworkKind::CircuitSwitched,
        Collective::ButterflyExchange,
        64,
    );
    assert!(
        circuit > 3.0 * p2p,
        "circuit {circuit} us vs p2p {p2p} us: setup did not compound"
    );
}

#[test]
fn bigger_messages_shift_the_balance_toward_wide_channels() {
    // At 4 KB per transfer, bandwidth dominates per-message overhead and
    // the 20 GB/s limited network overtakes the 5 GB/s point-to-point.
    let p2p = run(
        NetworkKind::PointToPoint,
        Collective::AllToAllPersonalized,
        4096,
    );
    let limited = run(
        NetworkKind::LimitedPointToPoint,
        Collective::AllToAllPersonalized,
        4096,
    );
    assert!(
        limited < p2p,
        "limited {limited} us should beat p2p {p2p} us on bulk transfers"
    );
}
