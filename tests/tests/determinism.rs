//! Reproducibility: identical seeds must give bit-identical results on
//! every architecture — the foundation for comparable experiments.

use desim::Time;
use macrochip::prelude::*;
use macrochip::runner::{drive, DriveLimits};
use workloads::OpenLoopTraffic;

fn open_loop_fingerprint(kind: NetworkKind, seed: u64) -> (u64, u64, u64) {
    let config = MacrochipConfig::scaled();
    let mut net = networks::build(kind, config);
    let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.05, 320.0, 64, seed);
    traffic.set_horizon(Time::from_ns(600));
    drive(net.as_mut(), &mut traffic, DriveLimits::default());
    let s = net.stats();
    (
        s.delivered_packets(),
        s.delivered_bytes(),
        s.mean_latency().as_ps(),
    )
}

#[test]
fn open_loop_runs_are_deterministic() {
    for kind in NetworkKind::ALL {
        let a = open_loop_fingerprint(kind, 42);
        let b = open_loop_fingerprint(kind, 42);
        assert_eq!(a, b, "{kind} not deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let a = open_loop_fingerprint(NetworkKind::PointToPoint, 1);
    let b = open_loop_fingerprint(NetworkKind::PointToPoint, 2);
    assert_ne!(a, b, "seeds should matter");
}

fn coherent_fingerprint(seed: u64) -> (u64, u64, u64) {
    let config = MacrochipConfig::scaled();
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::MoreSharing,
        ops_per_core: 6,
    };
    let run = run_coherent(NetworkKind::TwoPhase, &spec, &config, seed);
    (
        run.ops_completed,
        run.makespan.as_ps(),
        run.mean_op_latency.as_ps(),
    )
}

#[test]
fn coherent_runs_are_deterministic() {
    assert_eq!(coherent_fingerprint(7), coherent_fingerprint(7));
}

#[test]
fn app_workloads_are_deterministic() {
    let config = MacrochipConfig::scaled();
    let profile = AppProfile::suite()[0].with_ops_per_core(5);
    let run = |seed| {
        let r = run_coherent(
            NetworkKind::PointToPoint,
            &WorkloadSpec::App(profile),
            &config,
            seed,
        );
        (r.makespan.as_ps(), r.delivered_bytes, r.packets)
    };
    assert_eq!(run(9), run(9));
}
