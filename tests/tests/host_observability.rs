//! Host observability contract tests: the span profiler and the host.*
//! counters must never change simulation results, spans must nest and
//! close correctly, counters must be monotone, and a profiler-enabled
//! run must produce **byte-identical** `net.*` metrics to a
//! profiler-off run.

use desim::prof::{self, Counter, Site};
use desim::{Span, Tracer};
use macrochip::bench::{run_bench, BenchOptions};
use macrochip::campaign::{run_point_full, CampaignPoint, PointExecOptions};
use macrochip::prelude::*;
use macrochip::sweep::run_load_point_traced;
use netcore::{MacrochipConfig, MetricsRegistry};
use proptest::prelude::*;
use std::sync::Mutex;
use workloads::Pattern;

/// Serializes tests that flip the process-wide profiler enable flag;
/// everything else in this binary runs with whatever state it finds and
/// must be correct either way (that's the whole point of the contract).
static PROFILER: Mutex<()> = Mutex::new(());

fn with_profiler<R>(f: impl FnOnce() -> R) -> R {
    let _guard = PROFILER.lock().unwrap_or_else(|e| e.into_inner());
    let was = prof::enabled();
    prof::set_enabled(true);
    prof::reset_local();
    let out = f();
    prof::set_enabled(was);
    out
}

fn short_options() -> SweepOptions {
    SweepOptions {
        sim: Span::from_ns(500),
        drain: Span::from_us(2),
        max_stalled: 5_000,
        seed: 23,
    }
}

/// The tentpole determinism guarantee: enabling the profiler changes
/// nothing about simulation results — the exported `net.*` snapshot is
/// byte-identical with profiling on and off, for every network.
#[test]
fn profiler_on_and_off_produce_byte_identical_metrics() {
    let config = MacrochipConfig::scaled();
    for kind in NetworkKind::FIGURE6 {
        let snapshot = |enabled: bool| -> String {
            let _guard = PROFILER.lock().unwrap_or_else(|e| e.into_inner());
            let was = prof::enabled();
            prof::set_enabled(enabled);
            let (point, net) = run_load_point_traced(
                networks::build(kind, config),
                Pattern::Uniform,
                0.05,
                &config,
                short_options(),
                Tracer::disabled(),
            );
            prof::set_enabled(was);
            let mut reg = MetricsRegistry::new();
            reg.record_net_stats(net.stats());
            format!(
                "{}|{}|{}",
                point.mean_latency_ns,
                point.p99_latency_ns,
                reg.snapshot().to_json()
            )
        };
        let off = snapshot(false);
        let on = snapshot(true);
        assert_eq!(off, on, "{} results differ with profiling on", kind.name());
    }
}

/// Same guarantee one layer up: a full campaign point (which also runs
/// the metrics and audit plumbing) is unchanged by profiling.
#[test]
fn profiled_campaign_point_matches_unprofiled() {
    let config = MacrochipConfig::scaled();
    let point = CampaignPoint::Sweep {
        kind: NetworkKind::TokenRing,
        pattern: Pattern::Uniform,
        offered: 0.05,
        options: short_options(),
    };
    let exec = PointExecOptions {
        trace: false,
        metrics: true,
        audit: true,
        trace_capacity: 1 << 12,
    };
    let run_json = |enabled: bool| -> String {
        let _guard = PROFILER.lock().unwrap_or_else(|e| e.into_inner());
        let was = prof::enabled();
        prof::set_enabled(enabled);
        let run = run_point_full(&point, &config, exec);
        prof::set_enabled(was);
        run.metrics.expect("metrics requested").to_json()
    };
    assert_eq!(run_json(false), run_json(true));
}

/// Driving a network reports its event count through the trait, and the
/// host SimEvents counter absorbs it.
#[test]
fn events_processed_flows_into_host_counter() {
    let config = MacrochipConfig::scaled();
    let before = prof::counter(Counter::SimEvents);
    let packets_before = prof::counter(Counter::Packets);
    let (point, net) = run_load_point_traced(
        networks::build(NetworkKind::PointToPoint, config),
        Pattern::Uniform,
        0.05,
        &config,
        short_options(),
        Tracer::disabled(),
    );
    assert!(!point.saturated);
    let events = net.events_processed();
    assert!(events > 0, "a driven network must process events");
    assert!(
        prof::counter(Counter::SimEvents) >= before + events,
        "host counter must absorb the run's events"
    );
    assert!(
        prof::counter(Counter::Packets) >= packets_before + net.stats().delivered_packets(),
        "host counter must absorb the run's deliveries"
    );
    // Furthest sim time advanced at least to this run's end.
    assert!(prof::sim_time_ps() > 0);
}

/// The bench harness is itself deterministic: consecutive runs agree on
/// every non-timing field, across all six benched networks.
#[test]
fn bench_runs_are_deterministic_modulo_timing() {
    let config = MacrochipConfig::scaled();
    let options = BenchOptions {
        trials: 2,
        sim: Span::from_ns(100),
        drain: Span::from_us(2),
        trace: false,
        progress: false,
        max_regression: macrochip::bench::DEFAULT_MAX_REGRESSION,
    };
    let a = run_bench(&config, &options);
    let b = run_bench(&config, &options);
    assert_eq!(a.networks.len(), 6);
    for (x, y) in a.networks.iter().zip(&b.networks) {
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.events, y.events, "{}", x.kind.name());
        assert_eq!(x.injected, y.injected);
        assert_eq!(x.delivered, y.delivered);
        assert_eq!(x.saturated, y.saturated);
    }
    desim::trace::validate_json(&a.to_json()).expect("bench JSON well-formed");
}

/// Benching with the flight recorder attached changes wall-clock only,
/// never the simulated work (the tracer-overhead measurement relies on
/// comparing like-for-like work).
#[test]
fn traced_bench_does_identical_work() {
    let config = MacrochipConfig::scaled();
    let mut options = BenchOptions {
        trials: 1,
        sim: Span::from_ns(100),
        drain: Span::from_us(2),
        trace: false,
        progress: false,
        max_regression: macrochip::bench::DEFAULT_MAX_REGRESSION,
    };
    let plain = run_bench(&config, &options);
    options.trace = true;
    let traced = run_bench(&config, &options);
    for (p, t) in plain.networks.iter().zip(&traced.networks) {
        assert_eq!(p.events, t.events, "{}", p.kind.name());
        assert_eq!(p.delivered, t.delivered);
    }
}

proptest! {
    /// Arbitrary well-bracketed open/close sequences: every span closes,
    /// depth returns to where it started, per-site counts grow by
    /// exactly the number of spans opened there, and self time never
    /// exceeds total time.
    #[test]
    fn spans_nest_and_close_correctly(script in proptest::collection::vec(0usize..Site::COUNT, 1..40)) {
        with_profiler(|| {
            let base_depth = prof::open_depth();
            let before = prof::local_report();
            // Nest the whole script: span[0] contains span[1] contains...
            fn nest(script: &[usize], base_depth: usize) {
                let Some((&first, rest)) = script.split_first() else { return };
                let _span = prof::span(Site::ALL[first]);
                assert_eq!(prof::open_depth(), base_depth + 1);
                nest(rest, base_depth + 1);
                assert_eq!(prof::open_depth(), base_depth + 1);
            }
            nest(&script, base_depth);
            prop_assert_eq!(prof::open_depth(), base_depth);
            let after = prof::local_report();
            for site in Site::ALL {
                let opened = script.iter().filter(|&&s| Site::ALL[s] == site).count() as u64;
                let count_before = after_count(&before, site);
                let count_after = after_count(&after, site);
                prop_assert_eq!(count_after - count_before, opened, "site {}", site.name());
            }
            for s in &after.spans {
                prop_assert!(s.self_ns <= s.total_ns, "self exceeds total at {}", s.site.name());
            }
            Ok(())
        })?;
    }

    /// Host counters are monotone under arbitrary increments: reading
    /// after an add never shows less than the floor the add guarantees.
    #[test]
    fn host_counters_are_monotone(increments in proptest::collection::vec((0usize..Counter::COUNT, 0u64..1_000), 1..50)) {
        for (idx, n) in increments {
            let c = Counter::ALL[idx];
            let before = prof::counter(c);
            prof::add(c, n);
            // Other test threads only ever add, so the floor holds even
            // under concurrency.
            prop_assert!(prof::counter(c) >= before + n, "{} went backwards", c.name());
        }
    }
}

fn after_count(report: &prof::ProfReport, site: Site) -> u64 {
    report
        .spans
        .iter()
        .find(|s| s.site == site)
        .map_or(0, |s| s.count)
}
