//! Protocol and end-to-end tests for `macrochip serve`.
//!
//! Each test binds its own server on an ephemeral port (127.0.0.1:0) so
//! the suite can run in parallel, and byte-identity is asserted on the
//! bit-exact cache encoding — the same bytes `campaign::run_point`
//! produces directly.

use desim::Span;
use macrochip::campaign::{self, CampaignPoint, ResultCache};
use macrochip::sweep::SweepOptions;
use netcore::{MacrochipConfig, NetworkKind};
use serve::{Client, ServeOptions, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use workloads::Pattern;

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh cache directory per test, so parallel tests never share state.
fn temp_cache(label: &str) -> (PathBuf, ResultCache) {
    let dir = std::env::temp_dir().join(format!(
        "macrochip-serve-test-{label}-{}-{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let cache = ResultCache::new(dir.clone()).expect("create temp cache");
    (dir, cache)
}

struct TestServer {
    addr: SocketAddr,
    handle: serve::ShutdownHandle,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    fn start(workers: usize, queue_cap: usize, cache: Option<ResultCache>) -> TestServer {
        let options = ServeOptions {
            workers,
            queue_cap,
            cache,
            manifest_dir: None,
            quiet: true,
        };
        let server = Server::bind("127.0.0.1:0", MacrochipConfig::scaled(), options)
            .expect("bind ephemeral port");
        let addr = server.local_addr().expect("bound address");
        let handle = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            handle,
            thread,
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr.to_string()).expect("connect to test server")
    }

    fn stop(self) {
        self.handle.shutdown();
        self.thread
            .join()
            .expect("server thread")
            .expect("clean shutdown");
    }
}

/// A fast sweep point: 1 us of simulation keeps debug-mode runtime low
/// while still producing a nontrivial latency distribution.
fn quick_sweep(kind: NetworkKind, offered: f64) -> CampaignPoint {
    CampaignPoint::Sweep {
        kind,
        pattern: Pattern::Uniform,
        offered,
        options: SweepOptions {
            sim: Span::from_us(1),
            drain: Span::from_us(5),
            max_stalled: 5_000,
            seed: 0xC0FFEE,
        },
    }
}

fn send_raw(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    response
}

#[test]
fn malformed_requests_get_errors_and_the_connection_stays_usable() {
    let server = TestServer::start(1, 4, None);
    let mut stream = TcpStream::connect(server.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    for (request, expected) in [
        ("this is not json", "malformed JSON"),
        ("{\"no_op\":true}", "missing or non-string"),
        ("{\"op\":\"dance\"}", "unknown op"),
        (
            "{\"op\":\"submit\",\"command\":\"s\",\"points\":[]}",
            "at least one point",
        ),
        ("{\"op\":\"status\",\"job\":\"job-999\"}", "unknown job"),
        ("{\"op\":\"result\",\"job\":\"job-999\"}", "unknown job"),
        ("{\"op\":\"cancel\",\"job\":\"job-999\"}", "unknown job"),
    ] {
        let response = send_raw(&mut stream, &mut reader, request);
        assert!(
            response.contains("\"ok\":false") && response.contains(expected),
            "request {request:?} should fail with {expected:?}, got {response:?}"
        );
    }
    // The same connection still serves well-formed requests afterwards.
    let response = send_raw(&mut stream, &mut reader, "{\"op\":\"ping\"}");
    assert!(
        response.contains("\"ok\":true") && response.contains("macrochip-serve"),
        "connection should survive malformed requests, got {response:?}"
    );
    server.stop();
}

#[test]
fn served_results_are_byte_identical_to_direct_runs_for_every_network() {
    let (dir, cache) = temp_cache("identity");
    let server = TestServer::start(2, 8, Some(cache));
    let config = MacrochipConfig::scaled();

    // One sweep point per network, plus a fault and a coherent point, so
    // identity is checked across point variants too.
    let mut points: Vec<CampaignPoint> = NetworkKind::ALL
        .iter()
        .map(|&kind| quick_sweep(kind, 0.05))
        .collect();
    points.push(CampaignPoint::Fault {
        kind: NetworkKind::TwoPhase,
        pattern: Pattern::Uniform,
        load: 0.05,
        plan: faults::FaultPlan::parse("rand-links=1; repair=10us").expect("valid plan"),
        seed: 7,
        sim: Span::from_us(1),
        drain: Span::from_us(5),
        max_stalled: 5_000,
    });
    points.push(CampaignPoint::Coherent {
        kind: NetworkKind::PointToPoint,
        spec: macrochip::names::parse_workload("Swaptions", 5).expect("suite workload"),
        seed: 0xCAFE,
    });

    let mut client = server.client();
    let submitted = client
        .submit("identity-test", None, points.clone())
        .expect("submit");
    let status = client.wait(&submitted.job, |_| {}).expect("wait");
    assert_eq!(status.state, "done");
    assert_eq!(status.done, points.len());

    let served = client.result(&submitted.job).expect("fetch results");
    assert_eq!(served.len(), points.len());
    for (point, served) in points.iter().zip(&served) {
        let direct = campaign::run_point(point, &config);
        assert_eq!(
            served.to_cache_bytes(),
            direct.to_cache_bytes(),
            "served result for {} on {} must be byte-identical to the direct run",
            point.tag(),
            point.kind().name()
        );
    }
    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resubmitted_job_is_answered_from_the_cache_without_resimulation() {
    let (dir, cache) = temp_cache("warm");
    let server = TestServer::start(1, 4, Some(cache));
    let mut client = server.client();
    let points = vec![quick_sweep(NetworkKind::TokenRing, 0.05)];

    let cold = client
        .submit("warm-test", None, points.clone())
        .expect("submit cold");
    let finished = client.wait(&cold.job, |_| {}).expect("wait cold");
    assert_eq!(finished.state, "done");
    assert_eq!(cold.warm, 0, "an empty cache cannot answer the first job");

    // The identical job again: the submit-time cache probe must resolve
    // every point, so the job is done before a worker ever sees it.
    let warm = client
        .submit("warm-test", None, points.clone())
        .expect("submit warm");
    assert_eq!(
        warm.state, "done",
        "all-warm job should finish at submit time"
    );
    assert_eq!(warm.warm, points.len());
    let status = client.status(&warm.job).expect("status");
    assert_eq!(status.state, "done");
    assert!(
        status.counters.cache_hits >= points.len() as u64,
        "the warm job's host.* delta should record its cache hits, got {:?}",
        status.counters
    );
    // And both jobs agree bit-for-bit.
    let first = client.result(&cold.job).expect("cold results");
    let second = client.result(&warm.job).expect("warm results");
    let as_bytes = |rs: &[macrochip::campaign::PointResult]| {
        rs.iter().map(|r| r.to_cache_bytes()).collect::<Vec<_>>()
    };
    assert_eq!(as_bytes(&first), as_bytes(&second));
    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn queue_backpressure_rejects_overflow_and_cancel_frees_the_slot() {
    // One worker and a queue bound of one unfinished job: the second
    // submission must bounce with a retryable error.
    let server = TestServer::start(1, 1, None);
    let mut client = server.client();

    // Enough default-duration points to keep the job busy while the rest
    // of the test runs.
    let slow: Vec<CampaignPoint> = NetworkKind::ALL
        .iter()
        .map(|&kind| CampaignPoint::Sweep {
            kind,
            pattern: Pattern::Uniform,
            offered: 0.2,
            options: SweepOptions::default(),
        })
        .collect();
    let running = client.submit("slow", None, slow).expect("submit slow job");
    assert_eq!(running.state, "running");

    let overflow = client.submit(
        "overflow",
        None,
        vec![quick_sweep(NetworkKind::PointToPoint, 0.05)],
    );
    let error = overflow.expect_err("a full queue must reject the job");
    assert!(error.contains("queue full"), "unexpected error {error:?}");

    // Cancelling the running job frees its slot...
    client.cancel(&running.job).expect("cancel running job");
    let status = client.status(&running.job).expect("status after cancel");
    assert_eq!(status.state, "cancelled");
    // ...and cancelling it again is an error, not a state change.
    let again = client.cancel(&running.job).expect_err("double cancel");
    assert!(
        again.contains("already cancelled"),
        "unexpected error {again:?}"
    );
    // Results of a cancelled job are unavailable.
    let result = client
        .result(&running.job)
        .expect_err("cancelled job result");
    assert!(result.contains("cancelled"), "unexpected error {result:?}");

    let retry = client
        .submit(
            "retry",
            None,
            vec![quick_sweep(NetworkKind::PointToPoint, 0.05)],
        )
        .expect("slot freed by cancel");
    let finished = client.wait(&retry.job, |_| {}).expect("wait retry");
    assert_eq!(finished.state, "done");
    server.stop();
}

#[test]
fn watch_streams_progress_and_seed_override_pins_every_point() {
    let (dir, cache) = temp_cache("watch");
    let server = TestServer::start(2, 4, Some(cache));
    let mut client = server.client();

    // A job seed overrides the per-point seeds, so two submissions that
    // differ only in their embedded seeds dedupe onto one cache entry.
    let a = vec![quick_sweep(NetworkKind::CircuitSwitched, 0.05)];
    let mut b = a.clone();
    if let CampaignPoint::Sweep { options, .. } = &mut b[0] {
        options.seed = 999; // overridden below
    }
    let first = client.submit("seeded", Some(42), a).expect("submit a");
    let mut events = 0usize;
    let done = client
        .wait(&first.job, |progress| {
            events += 1;
            assert_eq!(progress.state, "running");
        })
        .expect("wait a");
    assert_eq!(done.state, "done");
    // Progress events are timing-dependent; the terminal event is not.
    assert!(done.wall_ms >= 0.0);
    let _ = events;

    let second = client.submit("seeded", Some(42), b).expect("submit b");
    assert_eq!(
        second.warm, 1,
        "the seed override must make both submissions hit one cache key"
    );
    server.stop();
    let _ = std::fs::remove_dir_all(dir);
}
