//! Capture → replay round-trip regression: a trace replayed through the
//! network it was captured on must reproduce the live run's `net.*`
//! metrics byte-identically, the same trace must play through every
//! architecture, and a corrupted trace must be rejected cleanly, never
//! with a panic.

use desim::{Span, Tracer};
use macrochip::prelude::*;
use macrochip::replay_run::record_replay_metrics;
use macrochip::sweep::run_load_point_observed;
use replay::{CaptureSink, TraceHeader, TraceMeta};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_trace(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "macrochip-roundtrip-{label}-{}-{}.mtrc",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn config() -> MacrochipConfig {
    MacrochipConfig::scaled()
}

fn sweep_options() -> SweepOptions {
    SweepOptions {
        sim: Span::from_ns(500),
        drain: Span::from_us(5),
        max_stalled: 5_000,
        seed: 42,
    }
}

/// Captures a short uniform point-to-point run to a trace file, returning
/// the trace header and the live network's end-of-run state.
fn capture_uniform(path: &PathBuf) -> (TraceHeader, Box<dyn Network>) {
    let cfg = config();
    let meta = TraceMeta {
        grid_side: cfg.grid.side() as u16,
        seed: 42,
        description: "round-trip regression".into(),
    };
    let mut sink = CaptureSink::create_file(path, &meta).expect("create trace");
    let (point, net) = run_load_point_observed(
        networks::build(NetworkKind::PointToPoint, cfg),
        Pattern::Uniform,
        0.05,
        &cfg,
        sweep_options(),
        Tracer::disabled(),
        |p| sink.record(p),
    );
    assert!(!point.saturated, "baseline run must not saturate");
    let header = sink.finish().expect("finish trace");
    (header, net)
}

/// The `net.*` metrics snapshot of a driven network, serialized.
fn net_snapshot_json(net: &dyn Network) -> String {
    let mut reg = netcore::MetricsRegistry::new();
    reg.record_net_stats(net.stats());
    reg.snapshot().to_json()
}

#[test]
fn same_network_replay_reproduces_net_metrics_byte_identically() {
    let path = temp_trace("identity");
    let (header, live_net) = capture_uniform(&path);
    assert!(header.packets > 1_000, "capture too small to be meaningful");

    let (summary, replay_net) = run_replay(
        NetworkKind::PointToPoint,
        &path,
        &config(),
        ReplayOptions::default(),
        Tracer::disabled(),
    )
    .expect("replay");
    assert!(!summary.saturated && !summary.timed_out && !summary.poisoned);
    assert_eq!(summary.emitted, header.packets, "every packet re-injected");
    assert_eq!(
        net_snapshot_json(live_net.as_ref()),
        net_snapshot_json(replay_net.as_ref()),
        "replay through the captured network must reproduce the live \
         net.* metrics byte for byte"
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn one_trace_plays_through_every_architecture() {
    let path = temp_trace("cross");
    let (header, _) = capture_uniform(&path);

    for kind in NetworkKind::FIGURE6 {
        let (summary, net) = run_replay(
            kind,
            &path,
            &config(),
            ReplayOptions::default(),
            Tracer::disabled(),
        )
        .unwrap_or_else(|e| panic!("replay on {kind}: {e}"));
        assert!(!summary.poisoned, "{kind} poisoned a clean trace");
        assert_eq!(summary.content_hash, header.content_hash);
        assert!(summary.delivered > 0, "{kind} delivered nothing");
        // Both metric families export for every architecture.
        let mut reg = netcore::MetricsRegistry::new();
        record_replay_metrics(&mut reg, net.as_ref(), &summary);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"replay.trace_packets\""), "{kind}: {json}");
        assert!(json.contains("\"net.delivered\""), "{kind}: {json}");
    }

    let _ = std::fs::remove_file(&path);
}

#[test]
fn replay_point_in_campaign_engine_matches_direct_run() {
    let path = temp_trace("campaign");
    let (header, _) = capture_uniform(&path);

    let (direct, _) = run_replay(
        NetworkKind::TokenRing,
        &path,
        &config(),
        ReplayOptions::default(),
        Tracer::disabled(),
    )
    .expect("direct replay");
    let campaign = Campaign::serial(config());
    let point = CampaignPoint::Replay {
        kind: NetworkKind::TokenRing,
        trace: path.to_string_lossy().into_owned(),
        content_hash: header.content_hash,
        plan: None,
        seed: 0,
        drain: ReplayOptions::default().drain,
        max_stalled: ReplayOptions::default().max_stalled,
    };
    let out = campaign.run(std::slice::from_ref(&point));
    let PointResult::Replay(engine) = &out[0].result else {
        panic!("campaign returned a non-replay result");
    };
    assert_eq!(engine, &direct, "campaign engine must match a direct run");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_trace_block_is_rejected_without_a_panic() {
    let path = temp_trace("corrupt");
    let (header, _) = capture_uniform(&path);

    // Flip one byte in the middle of the packet stream, well past the
    // header.
    let mut bytes = std::fs::read(&path).expect("read trace");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("rewrite trace");

    // Full validation reports the corruption as an error, not a panic.
    let err = replay::validate(&path).expect_err("corruption must be detected");
    let msg = err.to_string();
    assert!(
        msg.contains("CRC") || msg.contains("corrupt"),
        "unhelpful corruption error: {msg}"
    );

    // Replay survives too: the source poisons itself at the bad block and
    // the run ends early instead of crashing.
    let (summary, _) = run_replay(
        NetworkKind::PointToPoint,
        &path,
        &config(),
        ReplayOptions::default(),
        Tracer::disabled(),
    )
    .expect("header is intact, open succeeds");
    assert!(summary.poisoned, "replay must flag the corrupt block");
    assert!(
        summary.emitted < header.packets,
        "injection must stop at the corrupt block"
    );

    let _ = std::fs::remove_file(&path);
}
