//! Cross-crate integration: coherent workloads over real networks — the
//! paper's headline orderings on small runs.

use macrochip::prelude::*;

fn small(pattern: Pattern, mix: SharingMix) -> WorkloadSpec {
    WorkloadSpec::Synthetic {
        pattern,
        mix,
        ops_per_core: 8,
    }
}

#[test]
fn all_work_completes_on_every_network() {
    let config = MacrochipConfig::scaled();
    let spec = small(Pattern::Uniform, SharingMix::LessSharing);
    for kind in NetworkKind::ALL {
        let run = run_coherent(kind, &spec, &config, 11);
        assert_eq!(run.ops_completed, 64 * 8 * 8, "{kind}");
    }
}

#[test]
fn p2p_wins_uniform_coherent_traffic() {
    // §6.2: the point-to-point network consistently outperforms the
    // others on latency-sensitive coherence traffic.
    let config = MacrochipConfig::scaled();
    let spec = small(Pattern::Uniform, SharingMix::LessSharing);
    let p2p = run_coherent(NetworkKind::PointToPoint, &spec, &config, 11);
    for kind in [
        NetworkKind::TokenRing,
        NetworkKind::CircuitSwitched,
        NetworkKind::TwoPhase,
    ] {
        let other = run_coherent(kind, &spec, &config, 11);
        assert!(
            other.makespan > p2p.makespan,
            "{kind} ({}) beat p2p ({})",
            other.makespan,
            p2p.makespan
        );
    }
}

#[test]
fn circuit_switched_is_the_slowest_on_uniform() {
    let config = MacrochipConfig::scaled();
    let spec = small(Pattern::Uniform, SharingMix::LessSharing);
    let circuit = run_coherent(NetworkKind::CircuitSwitched, &spec, &config, 11);
    for kind in [
        NetworkKind::PointToPoint,
        NetworkKind::TokenRing,
        NetworkKind::TwoPhase,
        NetworkKind::LimitedPointToPoint,
    ] {
        let other = run_coherent(kind, &spec, &config, 11);
        assert!(
            other.makespan < circuit.makespan,
            "{kind} slower than circuit"
        );
    }
}

#[test]
fn limited_p2p_wins_nearest_neighbor() {
    // §6.1/6.2: the nearest-neighbor pattern maps exactly onto the
    // limited point-to-point network's row/column connectivity.
    let config = MacrochipConfig::scaled();
    let spec = small(Pattern::Neighbor, SharingMix::LessSharing);
    let limited = run_coherent(NetworkKind::LimitedPointToPoint, &spec, &config, 11);
    // Request/data traffic goes to grid neighbors (always peers); only
    // the occasional LS-mix invalidation to a random sharer routes.
    let routed_frac = limited.routed_bytes as f64 / limited.delivered_bytes as f64;
    assert!(routed_frac < 0.05, "routed fraction {routed_frac}");
    for kind in [
        NetworkKind::PointToPoint,
        NetworkKind::TokenRing,
        NetworkKind::CircuitSwitched,
        NetworkKind::TwoPhase,
    ] {
        let other = run_coherent(kind, &spec, &config, 11);
        assert!(
            other.mean_op_latency > limited.mean_op_latency,
            "{kind} beat limited p2p on nearest-neighbor"
        );
    }
}

#[test]
fn ms_mix_multiplies_small_messages() {
    let config = MacrochipConfig::scaled();
    let ls = run_coherent(
        NetworkKind::PointToPoint,
        &small(Pattern::Transpose, SharingMix::LessSharing),
        &config,
        11,
    );
    let ms = run_coherent(
        NetworkKind::PointToPoint,
        &small(Pattern::Transpose, SharingMix::MoreSharing),
        &config,
        11,
    );
    // MS sends invalidations + acks: substantially more packets per op.
    assert!(
        ms.packets as f64 > 1.5 * ls.packets as f64,
        "MS {} vs LS {} packets",
        ms.packets,
        ls.packets
    );
}

#[test]
fn app_suite_runs_on_p2p_and_produces_sharing() {
    let config = MacrochipConfig::scaled();
    for profile in AppProfile::suite() {
        let spec = WorkloadSpec::App(profile.with_ops_per_core(6));
        let run = run_coherent(NetworkKind::PointToPoint, &spec, &config, 5);
        assert!(
            run.ops_completed >= 64 * 8 * 5,
            "{}: only {} ops",
            profile.name,
            run.ops_completed
        );
        assert!(run.mean_op_latency.as_ns_f64() > 1.0, "{}", profile.name);
    }
}

#[test]
fn energy_model_ranks_p2p_first_on_edp() {
    let config = MacrochipConfig::scaled();
    let model = NetworkEnergyModel::default();
    let spec = small(Pattern::Uniform, SharingMix::LessSharing);
    let p2p = run_coherent(NetworkKind::PointToPoint, &spec, &config, 11);
    let p2p_edp = model.edp(&p2p);
    for kind in [
        NetworkKind::TokenRing,
        NetworkKind::CircuitSwitched,
        NetworkKind::TwoPhase,
    ] {
        let run = run_coherent(kind, &spec, &config, 11);
        assert!(
            model.edp(&run) > 3.0 * p2p_edp,
            "{kind} EDP too close to p2p"
        );
    }
}
