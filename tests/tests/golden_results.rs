//! Golden-results regression guard: small, fast versions of the headline
//! experiments pinned to tolerance bands, so future refactors cannot
//! silently move the reproduction away from the paper.
//!
//! Bands are deliberately loose (these are small runs) but tight enough
//! to catch an order-of-magnitude drift or a flipped ordering.

use desim::Span;
use macrochip::campaign::{run_indexed, run_point, CampaignPoint, PointResult};
use macrochip::prelude::*;
use macrochip::sweep::sustained_bandwidth;

fn quick_sweep() -> SweepOptions {
    SweepOptions {
        sim: Span::from_us(2),
        drain: Span::from_us(10),
        max_stalled: 4_000,
        seed: 1,
    }
}

/// The paper's Figure 6 sustained-bandwidth observations on uniform
/// random, with our accepted band (fraction of peak).
#[test]
fn golden_uniform_sustained_bandwidth() {
    let config = MacrochipConfig::scaled();
    let bands = [
        (NetworkKind::PointToPoint, 0.90, 1.00),
        (NetworkKind::LimitedPointToPoint, 0.40, 0.56),
        (NetworkKind::TokenRing, 0.33, 0.48),
        (NetworkKind::TwoPhase, 0.05, 0.13),
        (NetworkKind::CircuitSwitched, 0.008, 0.035),
    ];
    for (kind, lo, hi) in bands {
        let f = sustained_bandwidth(kind, Pattern::Uniform, &config, quick_sweep(), 0.02);
        assert!(
            (lo..=hi).contains(&f),
            "{kind}: sustained {:.1}% outside golden band [{:.1}%, {:.1}%]",
            f * 100.0,
            lo * 100.0,
            hi * 100.0
        );
    }
}

/// P2P coherence-operation latency band (paper: ≤54 ns on applications).
#[test]
fn golden_p2p_op_latency() {
    let config = MacrochipConfig::scaled();
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::LessSharing,
        ops_per_core: 20,
    };
    let run = run_coherent(NetworkKind::PointToPoint, &spec, &config, 0xFEED);
    let lat = run.mean_op_latency.as_ns_f64();
    assert!((35.0..=60.0).contains(&lat), "p2p op latency {lat} ns");
}

/// Speedup orderings of Figure 7 that must never flip.
#[test]
fn golden_figure7_orderings() {
    let config = MacrochipConfig::scaled();
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::LessSharing,
        ops_per_core: 15,
    };
    let runs: Vec<CoherentRun> = NetworkKind::ALL
        .iter()
        .map(|&k| run_coherent(k, &spec, &config, 0xFEED))
        .collect();
    let makespan = |k: NetworkKind| {
        runs.iter()
            .find(|r| r.network == k)
            .expect("all networks ran")
            .makespan
    };
    // P2P fastest; circuit-switched slowest; limited between p2p and the
    // arbitrated designs.
    assert!(makespan(NetworkKind::PointToPoint) < makespan(NetworkKind::LimitedPointToPoint));
    assert!(makespan(NetworkKind::LimitedPointToPoint) < makespan(NetworkKind::TokenRing));
    assert!(makespan(NetworkKind::TokenRing) < makespan(NetworkKind::CircuitSwitched));
    assert!(makespan(NetworkKind::TwoPhase) < makespan(NetworkKind::CircuitSwitched));
    // And the paper's factor bands, loosely.
    let p2p = makespan(NetworkKind::PointToPoint).as_ns_f64();
    let circuit = makespan(NetworkKind::CircuitSwitched).as_ns_f64();
    let ratio = circuit / p2p;
    assert!((3.0..=15.0).contains(&ratio), "p2p/circuit ratio {ratio}");
}

/// Analytic artifacts are exact and must stay exact.
#[test]
fn golden_analytic_tables() {
    use photonics::geometry::Layout;
    use photonics::inventory::{ComponentCounts, NetworkId};
    use photonics::power::NetworkPower;
    let layout = Layout::macrochip();
    let p2p = NetworkPower::for_network(NetworkId::PointToPoint, &layout);
    assert_eq!(p2p.laser_sources, 8_192);
    assert!((p2p.laser.watts() - 8.192).abs() < 1e-9);
    let counts = ComponentCounts::for_network(NetworkId::TwoPhaseData, &layout);
    assert_eq!(counts.switches, 16_384);
}

/// Table 1's energy terms are the paper's numbers verbatim and must stay
/// exact: they seed every power and EDP figure downstream.
#[test]
fn golden_table1_energy_terms() {
    use photonics::components::{Component, EnergyCost};
    use photonics::units::{FemtojoulesPerBit, Milliwatts};
    let dynamic = |fj: f64| EnergyCost::Dynamic(FemtojoulesPerBit::new(fj));
    let standing = |mw: f64| EnergyCost::Standing(Milliwatts::new(mw));
    let expected = [
        (Component::Modulator, dynamic(35.0)),
        (Component::ModulatorOffResonance, EnergyCost::Negligible),
        (Component::Opxc, EnergyCost::Negligible),
        (Component::WaveguidePerCm, EnergyCost::Negligible),
        (Component::DropFilterPass, standing(0.1)),
        (Component::DropFilterDrop, standing(0.1)),
        (Component::Multiplexer, standing(0.1)),
        (Component::Receiver, dynamic(65.0)),
        (Component::Switch, standing(0.5)),
        (
            Component::Laser,
            EnergyCost::Static(FemtojoulesPerBit::new(50.0)),
        ),
        (Component::Splitter, EnergyCost::Negligible),
    ];
    assert_eq!(expected.len(), Component::ALL.len());
    for (component, energy) in expected {
        assert_eq!(component.props().energy, energy, "{}", component.name());
    }
}

/// Table 6's component counts are analytic and must stay exact, per
/// network row (scaled 8×8 configuration: 2 λ/destination, 8-way WDM).
#[test]
fn golden_table6_component_counts() {
    use photonics::geometry::Layout;
    use photonics::inventory::{ComponentCounts, NetworkId};
    let layout = Layout::macrochip();
    // (network, transmitters, receivers, waveguides, switches)
    let expected = [
        (NetworkId::TokenRing, 524_288, 8_192, 32_768, 0),
        (NetworkId::PointToPoint, 8_192, 8_192, 3_072, 0),
        (NetworkId::CircuitSwitched, 8_192, 8_192, 2_048, 1_024),
        (NetworkId::LimitedPointToPoint, 8_192, 8_192, 3_072, 128),
        (NetworkId::TwoPhaseData, 8_192, 8_192, 4_096, 16_384),
    ];
    for (id, tx, rx, wgs, switches) in expected {
        let c = ComponentCounts::for_network(id, &layout);
        assert_eq!(c.transmitters, tx, "{id} transmitters");
        assert_eq!(c.receivers, rx, "{id} receivers");
        assert_eq!(c.waveguide_area_equivalent, wgs, "{id} waveguides");
        assert_eq!(c.switches, switches, "{id} switches");
    }
}

/// One Figure 6-style latency-load curve per network, pinned to explicit
/// per-point latency bands (ns). Loads sit below each architecture's
/// saturation knee, so every point must come back unsaturated and the
/// curve must be monotone non-decreasing. Runs through the parallel
/// campaign engine (jobs = 2), so a merge-order regression would also
/// surface here as a band miss.
#[test]
fn golden_figure6_curves() {
    let config = MacrochipConfig::scaled();
    let options = quick_sweep();
    // Per point: (offered load, min mean ns, max mean ns).
    type Curve = (NetworkKind, [(f64, f64, f64); 3]);
    let curves: [Curve; 5] = [
        (
            NetworkKind::PointToPoint,
            [(0.1, 10.0, 20.0), (0.3, 12.0, 25.0), (0.6, 16.0, 40.0)],
        ),
        (
            NetworkKind::LimitedPointToPoint,
            [(0.1, 10.0, 22.0), (0.2, 12.0, 25.0), (0.4, 18.0, 45.0)],
        ),
        (
            NetworkKind::TokenRing,
            [(0.1, 15.0, 32.0), (0.2, 18.0, 45.0), (0.35, 60.0, 180.0)],
        ),
        (
            NetworkKind::TwoPhase,
            [(0.02, 15.0, 35.0), (0.05, 17.0, 45.0), (0.07, 90.0, 400.0)],
        ),
        (
            NetworkKind::CircuitSwitched,
            [
                (0.005, 50.0, 150.0),
                (0.01, 80.0, 220.0),
                (0.02, 400.0, 1_500.0),
            ],
        ),
    ];
    let points: Vec<CampaignPoint> = curves
        .iter()
        .flat_map(|&(kind, loads)| {
            loads
                .into_iter()
                .map(move |(offered, _, _)| CampaignPoint::Sweep {
                    kind,
                    pattern: Pattern::Uniform,
                    offered,
                    options,
                })
        })
        .collect();
    let results = run_indexed(&points, 2, |_, p| run_point(p, &config));
    let bands = curves.iter().flat_map(|&(kind, loads)| {
        loads
            .into_iter()
            .map(move |(load, lo, hi)| (kind, load, lo, hi))
    });
    let mut prev: Option<(NetworkKind, f64)> = None;
    for ((kind, load, lo, hi), r) in bands.zip(&results) {
        let PointResult::Sweep(p) = r else {
            unreachable!("sweep point")
        };
        assert!(!p.saturated, "{kind} saturated at {load}");
        assert!(
            (lo..=hi).contains(&p.mean_latency_ns),
            "{kind} @ {load}: mean {:.2} ns outside golden band [{lo}, {hi}]",
            p.mean_latency_ns
        );
        if let Some((prev_kind, prev_mean)) = prev {
            if prev_kind == kind {
                assert!(
                    p.mean_latency_ns >= prev_mean,
                    "{kind} latency fell from {prev_mean} to {} at {load}",
                    p.mean_latency_ns
                );
            }
        }
        prev = Some((kind, p.mean_latency_ns));
    }
}

/// Energy-delay-product ordering (Figure 10) must hold on a small run.
#[test]
fn golden_edp_ordering() {
    let config = MacrochipConfig::scaled();
    let model = NetworkEnergyModel::default();
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::LessSharing,
        ops_per_core: 15,
    };
    let edp = |k| model.edp(&run_coherent(k, &spec, &config, 0xFEED));
    let p2p = edp(NetworkKind::PointToPoint);
    assert!(edp(NetworkKind::TokenRing) > 10.0 * p2p);
    assert!(edp(NetworkKind::CircuitSwitched) > 100.0 * p2p);
    assert!(edp(NetworkKind::TwoPhase) > 3.0 * p2p);
}
