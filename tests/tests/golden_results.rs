//! Golden-results regression guard: small, fast versions of the headline
//! experiments pinned to tolerance bands, so future refactors cannot
//! silently move the reproduction away from the paper.
//!
//! Bands are deliberately loose (these are small runs) but tight enough
//! to catch an order-of-magnitude drift or a flipped ordering.

use desim::Span;
use macrochip::prelude::*;
use macrochip::sweep::sustained_bandwidth;

fn quick_sweep() -> SweepOptions {
    SweepOptions {
        sim: Span::from_us(2),
        drain: Span::from_us(10),
        max_stalled: 4_000,
        seed: 1,
    }
}

/// The paper's Figure 6 sustained-bandwidth observations on uniform
/// random, with our accepted band (fraction of peak).
#[test]
fn golden_uniform_sustained_bandwidth() {
    let config = MacrochipConfig::scaled();
    let bands = [
        (NetworkKind::PointToPoint, 0.90, 1.00),
        (NetworkKind::LimitedPointToPoint, 0.40, 0.56),
        (NetworkKind::TokenRing, 0.33, 0.48),
        (NetworkKind::TwoPhase, 0.05, 0.13),
        (NetworkKind::CircuitSwitched, 0.008, 0.035),
    ];
    for (kind, lo, hi) in bands {
        let f = sustained_bandwidth(kind, Pattern::Uniform, &config, quick_sweep(), 0.02);
        assert!(
            (lo..=hi).contains(&f),
            "{kind}: sustained {:.1}% outside golden band [{:.1}%, {:.1}%]",
            f * 100.0,
            lo * 100.0,
            hi * 100.0
        );
    }
}

/// P2P coherence-operation latency band (paper: ≤54 ns on applications).
#[test]
fn golden_p2p_op_latency() {
    let config = MacrochipConfig::scaled();
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::LessSharing,
        ops_per_core: 20,
    };
    let run = run_coherent(NetworkKind::PointToPoint, &spec, &config, 0xFEED);
    let lat = run.mean_op_latency.as_ns_f64();
    assert!((35.0..=60.0).contains(&lat), "p2p op latency {lat} ns");
}

/// Speedup orderings of Figure 7 that must never flip.
#[test]
fn golden_figure7_orderings() {
    let config = MacrochipConfig::scaled();
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::LessSharing,
        ops_per_core: 15,
    };
    let runs: Vec<CoherentRun> = NetworkKind::ALL
        .iter()
        .map(|&k| run_coherent(k, &spec, &config, 0xFEED))
        .collect();
    let makespan = |k: NetworkKind| {
        runs.iter()
            .find(|r| r.network == k)
            .expect("all networks ran")
            .makespan
    };
    // P2P fastest; circuit-switched slowest; limited between p2p and the
    // arbitrated designs.
    assert!(makespan(NetworkKind::PointToPoint) < makespan(NetworkKind::LimitedPointToPoint));
    assert!(makespan(NetworkKind::LimitedPointToPoint) < makespan(NetworkKind::TokenRing));
    assert!(makespan(NetworkKind::TokenRing) < makespan(NetworkKind::CircuitSwitched));
    assert!(makespan(NetworkKind::TwoPhase) < makespan(NetworkKind::CircuitSwitched));
    // And the paper's factor bands, loosely.
    let p2p = makespan(NetworkKind::PointToPoint).as_ns_f64();
    let circuit = makespan(NetworkKind::CircuitSwitched).as_ns_f64();
    let ratio = circuit / p2p;
    assert!((3.0..=15.0).contains(&ratio), "p2p/circuit ratio {ratio}");
}

/// Analytic artifacts are exact and must stay exact.
#[test]
fn golden_analytic_tables() {
    use photonics::geometry::Layout;
    use photonics::inventory::{ComponentCounts, NetworkId};
    use photonics::power::NetworkPower;
    let layout = Layout::macrochip();
    let p2p = NetworkPower::for_network(NetworkId::PointToPoint, &layout);
    assert_eq!(p2p.laser_sources, 8_192);
    assert!((p2p.laser.watts() - 8.192).abs() < 1e-9);
    let counts = ComponentCounts::for_network(NetworkId::TwoPhaseData, &layout);
    assert_eq!(counts.switches, 16_384);
}

/// Energy-delay-product ordering (Figure 10) must hold on a small run.
#[test]
fn golden_edp_ordering() {
    let config = MacrochipConfig::scaled();
    let model = NetworkEnergyModel::default();
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::LessSharing,
        ops_per_core: 15,
    };
    let edp = |k| model.edp(&run_coherent(k, &spec, &config, 0xFEED));
    let p2p = edp(NetworkKind::PointToPoint);
    assert!(edp(NetworkKind::TokenRing) > 10.0 * p2p);
    assert!(edp(NetworkKind::CircuitSwitched) > 100.0 * p2p);
    assert!(edp(NetworkKind::TwoPhase) > 3.0 * p2p);
}
