//! End-to-end conservation and sanity tests across all seven network
//! architectures.

use desim::Time;
use macrochip::runner::{drive, DriveLimits};
use netcore::{MacrochipConfig, NetworkKind};
use workloads::{OpenLoopTraffic, Pattern};

fn run_pattern(kind: NetworkKind, pattern: Pattern, load: f64) -> (u64, u64, f64) {
    let config = MacrochipConfig::scaled();
    let mut net = networks::build(kind, config);
    let mut traffic = OpenLoopTraffic::new(&config.grid, pattern, load, 320.0, 64, 0xAB);
    traffic.set_horizon(Time::from_ns(800));
    drive(net.as_mut(), &mut traffic, DriveLimits::default());
    let stats = net.stats();
    (
        traffic.emitted(),
        stats.delivered_packets(),
        stats.mean_latency().as_ns_f64(),
    )
}

#[test]
fn every_network_conserves_packets_on_every_pattern() {
    for kind in NetworkKind::ALL {
        for pattern in Pattern::FIGURE6 {
            let (emitted, delivered, _) = run_pattern(kind, pattern, 0.01);
            assert_eq!(
                emitted, delivered,
                "{kind} lost packets on {pattern}: {emitted} vs {delivered}"
            );
        }
    }
}

#[test]
fn latency_floor_is_physical() {
    // No network may beat serialization + time-of-flight physics: at least
    // 64 B / 320 B/ns = 0.2 ns for the widest channel.
    for kind in NetworkKind::ALL {
        let (_, delivered, mean_ns) = run_pattern(kind, Pattern::Uniform, 0.01);
        assert!(delivered > 0, "{kind} delivered nothing");
        assert!(
            mean_ns >= 0.2,
            "{kind} mean latency {mean_ns} ns beats physics"
        );
    }
}

#[test]
fn p2p_has_the_lowest_light_load_uniform_latency() {
    // §6.1: the point-to-point network has no arbitration or setup
    // overhead; at light uniform load only its serialization (12.8 ns)
    // and flight remain. The 40 GB/s+ architectures serialize faster but
    // pay overheads that exceed the difference.
    let p2p = run_pattern(NetworkKind::PointToPoint, Pattern::Uniform, 0.01).2;
    for kind in [
        NetworkKind::CircuitSwitched,
        NetworkKind::TwoPhase,
        NetworkKind::TwoPhaseAlt,
    ] {
        let other = run_pattern(kind, Pattern::Uniform, 0.01).2;
        assert!(
            other > p2p,
            "{kind} ({other} ns) beat p2p ({p2p} ns) at light load"
        );
    }
}

#[test]
fn circuit_switched_pays_the_setup_round_trip() {
    let (_, _, mean_ns) = run_pattern(NetworkKind::CircuitSwitched, Pattern::Uniform, 0.005);
    // Average ~4+4 control hops at ~15 ns each.
    assert!(
        mean_ns > 60.0,
        "circuit-switched mean {mean_ns} ns is implausibly low"
    );
}

#[test]
fn nearest_neighbor_is_free_of_electronic_routing() {
    let config = MacrochipConfig::scaled();
    let mut net = networks::build(NetworkKind::LimitedPointToPoint, config);
    let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Neighbor, 0.05, 320.0, 64, 0xAB);
    traffic.set_horizon(Time::from_ns(500));
    drive(net.as_mut(), &mut traffic, DriveLimits::default());
    assert_eq!(net.stats().routed_bytes(), 0);
}

#[test]
fn uniform_traffic_on_limited_p2p_routes_most_bytes() {
    // 75% of uniform traffic is to non-peers (§6.1).
    let config = MacrochipConfig::scaled();
    let mut net = networks::build(NetworkKind::LimitedPointToPoint, config);
    let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.05, 320.0, 64, 0xAB);
    traffic.set_horizon(Time::from_ns(500));
    drive(net.as_mut(), &mut traffic, DriveLimits::default());
    let stats = net.stats();
    let frac = stats.routed_bytes() as f64 / stats.delivered_bytes() as f64;
    assert!(
        (frac - 0.75).abs() < 0.06,
        "routed fraction {frac}, expected ~0.75"
    );
}

#[test]
fn hierarchical_routes_bytes_only_at_bridges() {
    // Within a cluster the broadcast ring is all-optical; only
    // cross-cluster packets touch electronics, and each is relayed
    // exactly twice (source bridge out, destination bridge in).
    let config = MacrochipConfig::scaled();
    let mut net = networks::build(NetworkKind::Hierarchical, config);
    let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Neighbor, 0.02, 320.0, 64, 0xAB);
    traffic.set_horizon(Time::from_ns(500));
    drive(net.as_mut(), &mut traffic, DriveLimits::default());
    let stats = net.stats();
    // Neighbor traffic crosses cluster boundaries only at the seams of
    // the 4x4 tiling, so most bytes stay optical.
    let frac = stats.routed_bytes() as f64 / stats.delivered_bytes() as f64;
    assert!(
        frac < 1.0,
        "expected some all-optical intra-cluster delivery, routed fraction {frac}"
    );

    // Uniform traffic at 8x8: 4 clusters, 3/4 of destinations are in
    // another cluster, and each such packet is relayed twice — the
    // routed fraction lands near 2 * 0.75 = 1.5x delivered bytes.
    let mut net = networks::build(NetworkKind::Hierarchical, config);
    let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.02, 320.0, 64, 0xAB);
    traffic.set_horizon(Time::from_ns(500));
    drive(net.as_mut(), &mut traffic, DriveLimits::default());
    let stats = net.stats();
    let frac = stats.routed_bytes() as f64 / stats.delivered_bytes() as f64;
    assert!(
        (frac - 1.5).abs() < 0.15,
        "routed fraction {frac}, expected ~1.5 (two relays for 3/4 of packets)"
    );
}

#[test]
fn hierarchical_scales_past_the_eight_by_eight_ceiling() {
    // The headline geometry: a 16x16 macrochip (256 sites, 16 clusters)
    // conserves packets end to end just like the paper-scale grid.
    let config = MacrochipConfig::with_side(16);
    let mut net = networks::build(NetworkKind::Hierarchical, config);
    let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.01, 320.0, 64, 0xAB);
    traffic.set_horizon(Time::from_ns(800));
    drive(net.as_mut(), &mut traffic, DriveLimits::default());
    let stats = net.stats();
    assert_eq!(
        traffic.emitted(),
        stats.delivered_packets(),
        "16x16 hierarchical lost packets"
    );
    assert!(stats.delivered_packets() > 0, "nothing delivered at 16x16");
}

#[test]
fn two_phase_base_wastes_slots_under_column_contention() {
    let config = MacrochipConfig::scaled();
    let mut base = networks::build(NetworkKind::TwoPhase, config);
    let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.05, 320.0, 64, 0xAB);
    traffic.set_horizon(Time::from_ns(800));
    drive(base.as_mut(), &mut traffic, DriveLimits::default());
    assert!(
        base.stats().wasted_slots() > 0,
        "expected switch-tree contention waste"
    );
}
