//! Cross-crate fault-injection checks: the zero-fault wrapper reproduces
//! baseline numbers exactly, and degraded runs stay accountable.

use desim::{Span, Time};
use faults::{FaultPlan, ResilientNetwork};
use macrochip::runner::{drive, DriveLimits};
use netcore::{MacrochipConfig, MetricsRegistry, Network, NetworkKind};
use workloads::{OpenLoopTraffic, Pattern};

const SIM: Span = Span::from_us(2);
const DRAIN: Span = Span::from_us(10);

fn traffic(config: &MacrochipConfig, seed: u64) -> OpenLoopTraffic {
    let mut t = OpenLoopTraffic::new(
        &config.grid,
        Pattern::Uniform,
        0.02,
        config.site_bandwidth_bytes_per_ns(),
        config.data_bytes,
        seed,
    );
    t.set_horizon(Time::ZERO + SIM);
    t
}

fn limits() -> DriveLimits {
    DriveLimits {
        deadline: Time::ZERO + SIM + DRAIN,
        max_stalled: 5_000,
    }
}

/// A metrics snapshot of one driven network, as canonical JSON.
fn snapshot_json(net: &dyn Network) -> String {
    let mut reg = MetricsRegistry::new();
    reg.record_net_stats(net.stats());
    reg.snapshot().to_json()
}

#[test]
fn zero_fault_plan_reproduces_baseline_byte_identically() {
    for kind in NetworkKind::FIGURE6 {
        let config = MacrochipConfig::scaled();
        // Baseline: the bare network.
        let mut bare = networks::build(kind, config);
        let mut t = traffic(&config, 42);
        drive(bare.as_mut(), &mut t, limits());
        let baseline = snapshot_json(bare.as_ref());
        // Same seed, same traffic, but wrapped under the no-fault plan.
        let mut wrapped = ResilientNetwork::new(
            networks::build(kind, config),
            &FaultPlan::none(),
            42,
            Time::ZERO + SIM,
        );
        let mut t = traffic(&config, 42);
        drive(&mut wrapped, &mut t, limits());
        assert_eq!(
            baseline,
            snapshot_json(&wrapped),
            "{kind}: no-fault wrapper changed the baseline metrics"
        );
        let s = wrapped.fault_stats();
        assert_eq!(
            (s.corrupted, s.retries, s.dropped, s.faults_applied),
            (0, 0, 0, 0),
            "{kind}: no-fault wrapper did fault work"
        );
        assert_eq!(wrapped.availability(), 1.0);
    }
}

#[test]
fn faulted_runs_resolve_every_packet() {
    // One percent transient faults with recovery: every emitted packet
    // ends as exactly one clean delivery or counted drop, on all five
    // networks.
    let plan = FaultPlan::parse("transient=0.01; rand-links=2; repair=5us").unwrap();
    for kind in NetworkKind::FIGURE6 {
        let config = MacrochipConfig::scaled();
        let mut net =
            ResilientNetwork::new(networks::build(kind, config), &plan, 7, Time::ZERO + SIM);
        let mut t = traffic(&config, 7);
        let outcome = drive(&mut net, &mut t, limits());
        assert!(!outcome.saturated, "{kind} saturated at 2% load");
        let s = net.fault_stats();
        assert_eq!(
            s.clean_delivered + net.lost_packets(),
            t.emitted(),
            "{kind}: packets unaccounted for"
        );
        assert_eq!(net.pending_retries(), 0, "{kind}: packets stuck in retry");
        let a = net.availability();
        assert!((0.0..=1.0).contains(&a), "{kind}: availability {a}");
    }
}

#[test]
fn site_kill_shrinks_participating_sources_not_fairness() {
    // Jain's index is computed over sources that delivered at least one
    // packet. A plan that kills a site therefore removes it from the
    // index instead of scoring it as maximally unfair — fairness can hold
    // (or even rise) while a site is silently dead. The honest signal is
    // the participating-source count, which is why the degradation bench
    // reports both side by side.
    let config = MacrochipConfig::scaled();
    let sites = config.grid.sites();

    // Baseline: fault-free, every site delivers.
    let mut bare = networks::build(NetworkKind::PointToPoint, config);
    let mut t = traffic(&config, 11);
    drive(bare.as_mut(), &mut t, limits());
    let baseline = bare.stats().jain_fairness();
    assert_eq!(bare.stats().participating_sources(), sites);

    // Kill one site before its first packet can be delivered and never
    // repair it; the wrapper absorbs all of its traffic as dead-site
    // drops.
    let plan = FaultPlan::parse("site:12@1ns; no-recovery").unwrap();
    let mut net = ResilientNetwork::new(
        networks::build(NetworkKind::PointToPoint, config),
        &plan,
        11,
        Time::ZERO + SIM,
    );
    let mut t = traffic(&config, 11);
    drive(&mut net, &mut t, limits());
    let stats = net.stats();
    assert!(
        stats.participating_sources() < sites,
        "killed site still delivered: {}/{sites} sources",
        stats.participating_sources()
    );
    assert!(net.fault_stats().dropped > 0, "no dead-site drops recorded");
    // The survivors are still served fairly, so the index stays near the
    // fault-free baseline — the shrinkage only shows in the source count.
    assert!(
        (stats.jain_fairness() - baseline).abs() < 0.05,
        "fairness moved from {baseline} to {} despite surviving sources \
         being served evenly",
        stats.jain_fairness()
    );
}

#[test]
fn identical_seeds_reproduce_identical_faulted_metrics() {
    let plan = FaultPlan::parse("transient=0.02; rand-links=3; repair=2us").unwrap();
    let run = |seed: u64| {
        let config = MacrochipConfig::scaled();
        let mut net = ResilientNetwork::new(
            networks::build(NetworkKind::TwoPhase, config),
            &plan,
            seed,
            Time::ZERO + SIM,
        );
        let mut t = traffic(&config, seed);
        let outcome = drive(&mut net, &mut t, limits());
        let mut reg = MetricsRegistry::new();
        net.record_metrics(&mut reg, outcome.end);
        reg.snapshot().to_json()
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100));
}
