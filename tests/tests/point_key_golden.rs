//! Golden values for the content-addressed cache key.
//!
//! [`campaign::point_key`] names every on-disk cache entry and routes
//! points to serve-daemon shards. If its value changes for an unchanged
//! point, every existing cache entry silently becomes unreachable and
//! mixed-version fleets stop deduping — so the key for one fixed point
//! per variant is pinned here.
//!
//! If a test below fails because you intentionally changed the key
//! material (new hashed field, changed encoding), bump
//! `campaign::CACHE_FORMAT` — which changes every key and invalidates
//! old entries on purpose — and update these constants. Do not update
//! the constants without the format bump.

use desim::Span;
use macrochip::campaign::{point_key, CampaignPoint};
use macrochip::experiment::WorkloadSpec;
use macrochip::sweep::SweepOptions;
use netcore::{MacrochipConfig, NetworkKind};
use workloads::{Pattern, SharingMix};

fn golden_points() -> Vec<(CampaignPoint, u64)> {
    vec![
        (
            CampaignPoint::Sweep {
                kind: NetworkKind::TwoPhase,
                pattern: Pattern::Uniform,
                offered: 0.25,
                options: SweepOptions {
                    sim: Span::from_us(5),
                    drain: Span::from_us(20),
                    max_stalled: 5_000,
                    seed: 0xC0FFEE,
                },
            },
            0x2A68_8160_F3FE_EF76,
        ),
        (
            CampaignPoint::Fault {
                kind: NetworkKind::TokenRing,
                pattern: Pattern::Transpose,
                load: 0.05,
                plan: faults::FaultPlan::parse("rand-links=2; transient=0.01; repair=10us")
                    .expect("valid plan"),
                seed: 0xC0FFEE,
                sim: Span::from_us(5),
                drain: Span::from_us(20),
                max_stalled: 5_000,
            },
            0x0D3D_1652_1152_7AD1,
        ),
        (
            CampaignPoint::Coherent {
                kind: NetworkKind::PointToPoint,
                spec: WorkloadSpec::Synthetic {
                    pattern: Pattern::Butterfly,
                    mix: SharingMix::LessSharing,
                    ops_per_core: 40,
                },
                seed: 0xCAFE,
            },
            0xD69C_DE57_0252_B1CA,
        ),
        (
            CampaignPoint::Replay {
                kind: NetworkKind::CircuitSwitched,
                trace: "traces/golden.mtrc".to_string(),
                content_hash: 0x1234_5678_9ABC_DEF0,
                plan: None,
                seed: 0xC0FFEE,
                drain: Span::from_us(20),
                max_stalled: 5_000,
            },
            0xD153_5E94_672C_805E,
        ),
    ]
}

#[test]
fn point_keys_are_stable_across_releases() {
    let config = MacrochipConfig::scaled();
    let golden = golden_points();
    let actual: Vec<u64> = golden.iter().map(|(p, _)| point_key(p, &config)).collect();
    let pinned: Vec<u64> = golden.iter().map(|(_, k)| *k).collect();
    assert_eq!(
        actual, pinned,
        "point_key changed for a fixed point — cached results and serve \
         shard routing silently diverge. If the key material changed on \
         purpose, bump campaign::CACHE_FORMAT and repin: {actual:#018x?}"
    );
}
