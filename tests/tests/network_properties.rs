//! Property-based end-to-end tests: invariants that must hold for every
//! network architecture under arbitrary admissible traffic.

use desim::Time;
use netcore::{MacrochipConfig, MessageKind, NetworkKind, Packet, PacketId};
use proptest::prelude::*;

/// A randomly generated injection: (source, destination, offset in ns).
fn injections(max: usize) -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    proptest::collection::vec((0usize..64, 0usize..64, 0u64..200), 1..max)
}

fn network_kind() -> impl Strategy<Value = NetworkKind> {
    prop_oneof![
        Just(NetworkKind::PointToPoint),
        Just(NetworkKind::LimitedPointToPoint),
        Just(NetworkKind::TokenRing),
        Just(NetworkKind::CircuitSwitched),
        Just(NetworkKind::TwoPhase),
        Just(NetworkKind::TwoPhaseAlt),
        Just(NetworkKind::Hierarchical),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever is injected is delivered exactly once, with delivery no
    /// earlier than creation, on every architecture.
    #[test]
    fn conservation_and_causality(kind in network_kind(), inj in injections(40)) {
        let config = MacrochipConfig::scaled();
        let mut net = networks::build(kind, config);
        let mut accepted = Vec::new();
        let mut inj = inj;
        inj.sort_by_key(|&(_, _, at)| at); // simulation time must advance monotonically
        for (i, &(s, d, at_ns)) in inj.iter().enumerate() {
            let at = Time::from_ns(at_ns);
            net.advance(at);
            let p = Packet::new(
                PacketId(i as u64),
                config.grid.site(s % 8, s / 8),
                config.grid.site(d % 8, d / 8),
                64,
                MessageKind::Data,
                at,
            );
            if net.inject(p, at).is_ok() {
                accepted.push(PacketId(i as u64));
            }
        }
        let mut guard = 0;
        while let Some(t) = net.next_event() {
            net.advance(t);
            guard += 1;
            prop_assert!(guard < 2_000_000, "{kind} did not drain");
        }
        let delivered = net.drain_delivered();
        prop_assert_eq!(delivered.len(), accepted.len(), "{} conservation", kind);
        let mut ids: Vec<PacketId> = delivered.iter().map(|p| p.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), accepted.len(), "{} duplicated packets", kind);
        for p in &delivered {
            prop_assert!(p.delivered.expect("delivered") >= p.created, "{} causality", kind);
        }
    }

    /// Latency respects the physical floor: no 64-byte packet beats its
    /// best-case serialization (bundle width 320 B/ns => 0.2 ns) and
    /// inter-site packets cannot beat the time of flight.
    #[test]
    fn physical_latency_floor(kind in network_kind(), inj in injections(24)) {
        let config = MacrochipConfig::scaled();
        let mut net = networks::build(kind, config);
        let mut inj = inj;
        inj.sort_by_key(|&(_, _, at)| at);
        for (i, &(s, d, at_ns)) in inj.iter().enumerate() {
            let at = Time::from_ns(at_ns);
            net.advance(at);
            let p = Packet::new(
                PacketId(i as u64),
                config.grid.site(s % 8, s / 8),
                config.grid.site(d % 8, d / 8),
                64,
                MessageKind::Data,
                at,
            );
            let _ = net.inject(p, at);
        }
        while let Some(t) = net.next_event() {
            net.advance(t);
        }
        for p in net.drain_delivered() {
            let lat = p.latency().expect("delivered");
            // Instrumentation invariant: wait + wire == total latency.
            let wait = p.wait_time().expect("tx_start instrumented");
            let wire = p.wire_time().expect("delivered");
            prop_assert_eq!(wait + wire, lat, "{} breakdown", kind);
            if p.src == p.dst {
                prop_assert_eq!(lat, config.cycle(), "{} loopback", kind);
            } else {
                // The token ring's data follows the serpentine ring, whose
                // wrap edge can undercut the row-column Manhattan route;
                // its floor is the ring flight. Everyone else routes
                // row-then-column — including the hierarchical network,
                // whose cluster rings model their wrap edges at physical
                // length, so every leg is a unit-pitch walk and the
                // src→dst Manhattan floor holds by triangle inequality.
                let flight = if kind == NetworkKind::TokenRing {
                    config
                        .layout
                        .ring_prop_delay(config.grid.coord(p.src), config.grid.coord(p.dst))
                } else {
                    config
                        .layout
                        .prop_delay(config.grid.coord(p.src), config.grid.coord(p.dst))
                };
                prop_assert!(
                    lat >= flight,
                    "{kind}: {lat} beats flight {flight} for {} -> {}",
                    p.src,
                    p.dst
                );
                prop_assert!(lat >= desim::Span::from_ps(200), "{} serialization", kind);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Geometry at arbitrary grid sides: the layout invariants the networks and
// the auditor lean on must hold for every side, not just the paper's 8.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The serpentine ring visits every site exactly once and the
    /// coordinate maps invert each other at any grid side.
    #[test]
    fn serpentine_ring_bijective_at_any_side(side in 2usize..33) {
        let layout = photonics::geometry::Layout::new(side, 2.5, 0.1);
        let mut seen = vec![false; layout.sites()];
        for i in 0..layout.sites() {
            let c = layout.ring_coord(i);
            prop_assert!(c.0 < side && c.1 < side, "coord in grid");
            prop_assert!(!seen[c.1 * side + c.0], "site visited twice");
            seen[c.1 * side + c.0] = true;
            prop_assert_eq!(layout.ring_index(c), i, "ring maps invert");
        }
        // Consecutive ring positions are physically adjacent (the
        // serpentine never teleports except at the modeled wrap edge).
        for i in 0..layout.sites() - 1 {
            let a = layout.ring_coord(i);
            let b = layout.ring_coord(i + 1);
            prop_assert_eq!(
                a.0.abs_diff(b.0) + a.1.abs_diff(b.1),
                1,
                "serpentine step {} not unit pitch",
                i
            );
        }
    }

    /// Torus distance is a metric bounded by the row-column route, and
    /// ring distances complete to a full revolution, at any grid side.
    #[test]
    fn distances_are_metrics_at_any_side(
        side in 2usize..33,
        picks in proptest::collection::vec((0usize..1024, 0usize..1024), 1..24),
    ) {
        let layout = photonics::geometry::Layout::new(side, 2.5, 0.1);
        let n = layout.sites();
        for &(a, b) in &picks {
            let (a, b) = (a % n, b % n);
            let ca = (a % side, a / side);
            let cb = (b % side, b / side);
            let torus = layout.torus_hops(ca, cb);
            let manhattan = ca.0.abs_diff(cb.0) + ca.1.abs_diff(cb.1);
            prop_assert_eq!(layout.torus_hops(cb, ca), torus, "torus symmetric");
            prop_assert!(torus <= manhattan, "wrap routing never longer");
            prop_assert!(torus <= side, "torus diameter is side (2 * side/2)");
            prop_assert_eq!(torus == 0, a == b, "identity of indiscernibles");
            // prop_delay is the row-column flight: hop_delay per pitch.
            prop_assert_eq!(
                layout.prop_delay(ca, cb),
                layout.hop_delay() * manhattan as u64,
                "prop_delay counts pitches"
            );
            // Forward ring distances around the loop sum to one revolution.
            let fwd = layout.ring_distance(layout.ring_index(ca), layout.ring_index(cb));
            let back = layout.ring_distance(layout.ring_index(cb), layout.ring_index(ca));
            if a == b {
                prop_assert_eq!(fwd + back, 0);
            } else {
                prop_assert_eq!(fwd + back, n, "ring distances complete the loop");
            }
        }
    }

    /// The hierarchical clustering tiles the grid exactly at any side.
    #[test]
    fn clusters_tile_the_grid_at_any_side(side in 2usize..33) {
        let layout = photonics::geometry::Layout::new(side, 2.5, 0.1);
        let c = layout.cluster_side();
        prop_assert!((1..=4).contains(&c));
        prop_assert_eq!(side % c, 0, "cluster side divides the grid");
        let per_side = side / c;
        prop_assert_eq!(layout.clusters(), per_side * per_side);
        prop_assert_eq!(layout.clusters() * c * c, layout.sites(), "clusters tile");
    }
}
