//! Property-based end-to-end tests: invariants that must hold for every
//! network architecture under arbitrary admissible traffic.

use desim::Time;
use netcore::{MacrochipConfig, MessageKind, NetworkKind, Packet, PacketId};
use proptest::prelude::*;

/// A randomly generated injection: (source, destination, offset in ns).
fn injections(max: usize) -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    proptest::collection::vec((0usize..64, 0usize..64, 0u64..200), 1..max)
}

fn network_kind() -> impl Strategy<Value = NetworkKind> {
    prop_oneof![
        Just(NetworkKind::PointToPoint),
        Just(NetworkKind::LimitedPointToPoint),
        Just(NetworkKind::TokenRing),
        Just(NetworkKind::CircuitSwitched),
        Just(NetworkKind::TwoPhase),
        Just(NetworkKind::TwoPhaseAlt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever is injected is delivered exactly once, with delivery no
    /// earlier than creation, on every architecture.
    #[test]
    fn conservation_and_causality(kind in network_kind(), inj in injections(40)) {
        let config = MacrochipConfig::scaled();
        let mut net = networks::build(kind, config);
        let mut accepted = Vec::new();
        let mut inj = inj;
        inj.sort_by_key(|&(_, _, at)| at); // simulation time must advance monotonically
        for (i, &(s, d, at_ns)) in inj.iter().enumerate() {
            let at = Time::from_ns(at_ns);
            net.advance(at);
            let p = Packet::new(
                PacketId(i as u64),
                config.grid.site(s % 8, s / 8),
                config.grid.site(d % 8, d / 8),
                64,
                MessageKind::Data,
                at,
            );
            if net.inject(p, at).is_ok() {
                accepted.push(PacketId(i as u64));
            }
        }
        let mut guard = 0;
        while let Some(t) = net.next_event() {
            net.advance(t);
            guard += 1;
            prop_assert!(guard < 2_000_000, "{kind} did not drain");
        }
        let delivered = net.drain_delivered();
        prop_assert_eq!(delivered.len(), accepted.len(), "{} conservation", kind);
        let mut ids: Vec<PacketId> = delivered.iter().map(|p| p.id).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), accepted.len(), "{} duplicated packets", kind);
        for p in &delivered {
            prop_assert!(p.delivered.expect("delivered") >= p.created, "{} causality", kind);
        }
    }

    /// Latency respects the physical floor: no 64-byte packet beats its
    /// best-case serialization (bundle width 320 B/ns => 0.2 ns) and
    /// inter-site packets cannot beat the time of flight.
    #[test]
    fn physical_latency_floor(kind in network_kind(), inj in injections(24)) {
        let config = MacrochipConfig::scaled();
        let mut net = networks::build(kind, config);
        let mut inj = inj;
        inj.sort_by_key(|&(_, _, at)| at);
        for (i, &(s, d, at_ns)) in inj.iter().enumerate() {
            let at = Time::from_ns(at_ns);
            net.advance(at);
            let p = Packet::new(
                PacketId(i as u64),
                config.grid.site(s % 8, s / 8),
                config.grid.site(d % 8, d / 8),
                64,
                MessageKind::Data,
                at,
            );
            let _ = net.inject(p, at);
        }
        while let Some(t) = net.next_event() {
            net.advance(t);
        }
        for p in net.drain_delivered() {
            let lat = p.latency().expect("delivered");
            // Instrumentation invariant: wait + wire == total latency.
            let wait = p.wait_time().expect("tx_start instrumented");
            let wire = p.wire_time().expect("delivered");
            prop_assert_eq!(wait + wire, lat, "{} breakdown", kind);
            if p.src == p.dst {
                prop_assert_eq!(lat, config.cycle(), "{} loopback", kind);
            } else {
                // The token ring's data follows the serpentine ring, whose
                // wrap edge can undercut the row-column Manhattan route;
                // its floor is the ring flight. Everyone else routes
                // row-then-column.
                let flight = if kind == NetworkKind::TokenRing {
                    config
                        .layout
                        .ring_prop_delay(config.grid.coord(p.src), config.grid.coord(p.dst))
                } else {
                    config
                        .layout
                        .prop_delay(config.grid.coord(p.src), config.grid.coord(p.dst))
                };
                prop_assert!(
                    lat >= flight,
                    "{kind}: {lat} beats flight {flight} for {} -> {}",
                    p.src,
                    p.dst
                );
                prop_assert!(lat >= desim::Span::from_ps(200), "{} serialization", kind);
            }
        }
    }
}
