//! Property tests for the parallel campaign engine: merge-order
//! invariance under worker count and input permutation, bit-exact cache
//! round-trips for arbitrary float payloads (including NaN and infinity
//! bit patterns), and latency monotonicity of sweep curves below
//! saturation.

use desim::Span;
use macrochip::campaign::{
    run_indexed, run_point, CampaignPoint, FaultSummary, PointResult, ResultCache,
};
use macrochip::prelude::*;
use macrochip::sweep::LoadPoint;
use netcore::MacrochipConfig;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use workloads::Pattern;

static CACHE_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_cache() -> ResultCache {
    let dir = std::env::temp_dir().join(format!(
        "macrochip-proptest-cache-{}-{}",
        std::process::id(),
        CACHE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    ResultCache::new(dir).expect("temp cache dir")
}

/// Seeded Fisher-Yates permutation of `0..n` (proptest owns the seed, so
/// failures replay deterministically).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut s = seed | 1;
    for i in (1..n).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        perm.swap(i, (s >> 33) as usize % (i + 1));
    }
    perm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `run_indexed` returns outputs in input order for every worker
    /// count, and permuting the inputs permutes the outputs identically —
    /// scheduling never leaks into the merge.
    #[test]
    fn run_indexed_order_invariant_under_jobs_and_permutation(
        items in proptest::collection::vec(0u64..1_000_000, 1..64),
        jobs in 0usize..9,
        seed in 0u64..u64::MAX,
    ) {
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let serial: Vec<u64> = items.iter().map(|x| f(0, x)).collect();
        prop_assert_eq!(&run_indexed(&items, jobs, f), &serial);

        let perm = permutation(items.len(), seed);
        let shuffled: Vec<u64> = perm.iter().map(|&i| items[i]).collect();
        let expected: Vec<u64> = perm.iter().map(|&i| serial[i]).collect();
        prop_assert_eq!(run_indexed(&shuffled, jobs, f), expected);
    }

    /// A cache hit reproduces the stored value's serialization
    /// byte-for-byte, whatever the float bit patterns are.
    #[test]
    fn sweep_cache_entries_round_trip_bit_exactly(
        bits in proptest::collection::vec(0u64..u64::MAX, 4..5),
        saturated in proptest::bool::ANY,
        key in 0u64..u64::MAX,
    ) {
        let result = PointResult::Sweep(LoadPoint {
            offered: f64::from_bits(bits[0]),
            mean_latency_ns: f64::from_bits(bits[1]),
            p99_latency_ns: f64::from_bits(bits[2]),
            delivered_bytes_per_ns_per_site: f64::from_bits(bits[3]),
            saturated,
        });
        let bytes = result.to_cache_bytes();
        let reparsed = PointResult::from_cache_bytes(&bytes).expect("well-formed bytes parse");
        prop_assert_eq!(reparsed.to_cache_bytes(), bytes.clone());

        let cache = temp_cache();
        cache.store(key, &result).expect("store succeeds");
        let hit = cache.load(key).expect("stored key hits");
        prop_assert_eq!(hit.to_cache_bytes(), bytes);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    /// Same bit-exactness for the fault-campaign value encoding.
    #[test]
    fn fault_cache_entries_round_trip_bit_exactly(
        counters in proptest::collection::vec(0u64..u64::MAX, 4..5),
        bits in proptest::collection::vec(0u64..u64::MAX, 3..4),
        saturated in proptest::bool::ANY,
        key in 0u64..u64::MAX,
    ) {
        let result = PointResult::Fault(FaultSummary {
            clean_delivered: counters[0],
            lost: counters[1],
            retries: counters[2],
            availability: f64::from_bits(bits[0]),
            clean_bytes: counters[3],
            degraded_ns: f64::from_bits(bits[1]),
            end_ns: f64::from_bits(bits[2]),
            saturated,
        });
        let bytes = result.to_cache_bytes();
        let reparsed = PointResult::from_cache_bytes(&bytes).expect("well-formed bytes parse");
        prop_assert_eq!(reparsed.to_cache_bytes(), bytes.clone());

        let cache = temp_cache();
        cache.store(key, &result).expect("store succeeds");
        let hit = cache.load(key).expect("stored key hits");
        prop_assert_eq!(hit.to_cache_bytes(), bytes);
        std::fs::remove_dir_all(cache.dir()).ok();
    }
}

proptest! {
    // Simulation-backed property: few cases, short windows.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// On the point-to-point network under uniform traffic, mean latency
    /// is (within a small simulation-noise allowance) non-decreasing in
    /// offered load until the first saturated point — queueing only ever
    /// adds delay. Computed through the parallel engine, so the property
    /// also covers the sharded path.
    #[test]
    fn sweep_latency_non_decreasing_until_saturation(seed in 1u64..1_000) {
        let config = MacrochipConfig::scaled();
        let options = SweepOptions {
            sim: Span::from_us(1),
            drain: Span::from_us(5),
            max_stalled: 5_000,
            seed,
        };
        let loads = [0.1, 0.4, 0.8];
        let points: Vec<CampaignPoint> = loads
            .iter()
            .map(|&offered| CampaignPoint::Sweep {
                kind: NetworkKind::PointToPoint,
                pattern: Pattern::Uniform,
                offered,
                options,
            })
            .collect();
        let results = run_indexed(&points, 4, |_, p| run_point(p, &config));
        let mut prev = 0.0f64;
        for (load, r) in loads.iter().zip(&results) {
            let PointResult::Sweep(p) = r else { unreachable!("sweep point") };
            if p.saturated {
                break;
            }
            prop_assert!(
                p.mean_latency_ns >= prev * 0.98,
                "latency fell from {prev} to {} at load {load} (seed {seed})",
                p.mean_latency_ns
            );
            prev = p.mean_latency_ns;
        }
    }
}
