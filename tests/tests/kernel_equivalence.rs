//! Differential kernel-equivalence harness: every scenario runs twice on
//! the same thread — once on the *reference* kernel (binary-heap event
//! queue + append-only packet slab, i.e. the pre-overhaul allocation
//! discipline) and once on the *optimized* kernel (calendar queue +
//! recycling slab) — and the results must be **byte-identical**.
//!
//! The calendar queue and the slab are pure mechanism: they may change
//! how fast the simulator runs, never what it computes. This harness is
//! the proof. It covers all five Figure-6 networks across the full
//! surface area of the repo's run harnesses:
//!
//! - open-loop sweep points (`net.*` metrics + [`LoadPoint`]),
//! - fault-campaign points (`fault.*` metrics under a transient plan),
//! - closed-loop coherent runs (Figure 7/8 fingerprints),
//! - `.mtrc` capture → replay round trips ([`ReplaySummary`] equality),
//! - audited runs (`audit.*` metrics and violation lists),
//! - the golden Figure-6 sustained-bandwidth bands themselves.
//!
//! Kernel selection rides the thread-local overrides
//! ([`desim::set_thread_backend`], [`netcore::slab::set_thread_mode`]) so
//! both legs share one process and one test thread; nothing about the
//! comparison depends on env vars or run ordering.

use desim::{Backend, Span, Time, Tracer};
use faults::{FaultPlan, ResilientNetwork};
use macrochip::prelude::*;
use macrochip::runner::{drive, DriveLimits};
use macrochip::sweep::run_load_point_observed;
use netcore::slab::set_thread_mode;
use netcore::{MetricsRegistry, SlabMode};
use replay::{TraceMeta, TraceWriter};
use std::io::Cursor;
use std::path::PathBuf;
use workloads::OpenLoopTraffic;

const SIM: Span = Span::from_us(1);
const DRAIN: Span = Span::from_us(10);

/// Runs `f` under an explicit kernel selection, restoring the defaults
/// afterwards even if `f` panics (the guard keeps a poisoned test from
/// leaking its kernel into later tests on a reused thread).
fn with_kernel<T>(backend: Backend, mode: SlabMode, f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            desim::set_thread_backend(None);
            set_thread_mode(None);
        }
    }
    let _restore = Restore;
    desim::set_thread_backend(Some(backend));
    set_thread_mode(Some(mode));
    f()
}

/// Runs `f` on both kernels and returns `(reference, optimized)`.
fn both<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let reference = with_kernel(Backend::Heap, SlabMode::Append, &mut f);
    let optimized = with_kernel(Backend::Calendar, SlabMode::Recycle, &mut f);
    (reference, optimized)
}

fn options(seed: u64) -> SweepOptions {
    SweepOptions {
        sim: SIM,
        drain: DRAIN,
        max_stalled: 5_000,
        seed,
    }
}

/// Canonical-JSON metrics snapshot of one driven network.
fn snapshot_json(net: &dyn Network) -> String {
    let mut reg = MetricsRegistry::new();
    reg.record_net_stats(net.stats());
    reg.snapshot().to_json()
}

/// Open-loop sweep points: the `net.*` family and the derived
/// [`LoadPoint`] must match byte-for-byte on every network at a light
/// and a heavy load.
#[test]
fn sweep_points_are_kernel_invariant() {
    let config = MacrochipConfig::scaled();
    for kind in NetworkKind::FIGURE6 {
        for load in [0.05, 0.60] {
            let (reference, optimized) = both(|| {
                let (point, net) = macrochip::sweep::run_load_point_traced(
                    networks::build(kind, config),
                    Pattern::Uniform,
                    load,
                    &config,
                    options(0xC0FFEE),
                    Tracer::disabled(),
                );
                (point, snapshot_json(net.as_ref()))
            });
            assert_eq!(
                reference.0, optimized.0,
                "{kind} @ {load}: LoadPoint diverged between kernels"
            );
            assert_eq!(
                reference.1, optimized.1,
                "{kind} @ {load}: net.* metrics diverged between kernels"
            );
        }
    }
}

/// Fault-campaign points: a transient-corruption plan with link kills
/// exercises retry scheduling, NACK timing, and the wrapper's own event
/// interleaving; `net.*` + `fault.*` must agree exactly.
#[test]
fn fault_campaign_points_are_kernel_invariant() {
    let plan = FaultPlan::parse("transient=0.01; rand-links=2; repair=5us").unwrap();
    let config = MacrochipConfig::scaled();
    for kind in NetworkKind::FIGURE6 {
        let (reference, optimized) = both(|| {
            let mut net =
                ResilientNetwork::new(networks::build(kind, config), &plan, 7, Time::ZERO + SIM);
            let mut t = OpenLoopTraffic::new(
                &config.grid,
                Pattern::Uniform,
                0.02,
                config.site_bandwidth_bytes_per_ns(),
                config.data_bytes,
                7,
            );
            t.set_horizon(Time::ZERO + SIM);
            let outcome = drive(
                &mut net,
                &mut t,
                DriveLimits {
                    deadline: Time::ZERO + SIM + DRAIN,
                    max_stalled: 5_000,
                },
            );
            let mut reg = MetricsRegistry::new();
            reg.record_net_stats(net.stats());
            net.record_metrics(&mut reg, Time::ZERO + SIM + DRAIN);
            (reg.snapshot().to_json(), outcome.saturated, t.emitted())
        });
        assert_eq!(
            reference, optimized,
            "{kind}: faulted run diverged between kernels"
        );
    }
}

/// Closed-loop coherent runs: the Figure 7/8 fingerprints — makespan,
/// op latency, op and byte counts — must match to the picosecond.
#[test]
fn coherent_runs_are_kernel_invariant() {
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::MoreSharing,
        ops_per_core: 10,
    };
    let config = MacrochipConfig::scaled();
    for kind in NetworkKind::FIGURE6 {
        let (reference, optimized) = both(|| {
            let run = run_coherent(kind, &spec, &config, 0xFEED);
            (
                run.ops_completed,
                run.makespan.as_ps(),
                run.mean_op_latency.as_ps(),
                run.delivered_bytes,
            )
        });
        assert_eq!(
            reference, optimized,
            "{kind}: coherent run diverged between kernels"
        );
    }
}

/// `.mtrc` round trip: one trace captured per network, replayed under
/// both kernels. [`ReplaySummary`] derives `PartialEq` over every field
/// including the content hash, so this is a byte-level check of the
/// replayed run.
#[test]
fn mtrc_replays_are_kernel_invariant() {
    let config = MacrochipConfig::scaled();
    let dir = std::env::temp_dir().join(format!("mtrc-kernel-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for kind in NetworkKind::FIGURE6 {
        // Capture once, on the default kernel: the trace on disk is the
        // shared input to both replay legs.
        let path = capture_trace(kind, &config, &dir);
        let (reference, optimized) = both(|| {
            let (summary, net) = run_replay(
                kind,
                &path,
                &config,
                ReplayOptions::default(),
                Tracer::disabled(),
            )
            .expect("replayable");
            (summary, snapshot_json(net.as_ref()))
        });
        std::fs::remove_file(&path).ok();
        assert_eq!(
            reference.0, optimized.0,
            "{kind}: ReplaySummary diverged between kernels"
        );
        assert_eq!(
            reference.1, optimized.1,
            "{kind}: replay net.* metrics diverged between kernels"
        );
    }
    std::fs::remove_dir(&dir).ok();
}

fn capture_trace(kind: NetworkKind, config: &MacrochipConfig, dir: &std::path::Path) -> PathBuf {
    let meta = TraceMeta {
        grid_side: config.grid.side() as u16,
        seed: 0xC0FFEE,
        description: format!("kernel-equivalence capture: {kind}"),
    };
    let mut writer = Some(TraceWriter::create(Cursor::new(Vec::new()), &meta).expect("writer"));
    run_load_point_observed(
        networks::build(kind, *config),
        Pattern::Uniform,
        0.03,
        config,
        options(0xC0FFEE),
        Tracer::disabled(),
        |p| writer.as_mut().expect("live").record(p).expect("record"),
    );
    let bytes = writer
        .take()
        .expect("writer")
        .finish()
        .expect("finish")
        .0
        .into_inner();
    let path = dir.join(format!("{}.mtrc", kind.name()));
    std::fs::write(&path, &bytes).expect("trace written");
    path
}

/// Audited runs: the invariant auditor consumes the flight-recorder
/// stream event by event, so its `audit.*` counters and violation list
/// are a fine-grained probe of event *ordering*, not just totals. Both
/// kernels must produce a clean, identical audit.
#[test]
fn audited_runs_are_kernel_invariant() {
    let config = MacrochipConfig::scaled();
    for kind in NetworkKind::FIGURE6 {
        let (reference, optimized) = both(|| {
            let (point, report) =
                run_load_point_audited(kind, Pattern::Uniform, 0.05, &config, options(11));
            let mut reg = MetricsRegistry::new();
            report.record_metrics(&mut reg);
            (
                point,
                reg.snapshot().to_json(),
                report.violation_lines(),
                report.is_clean(),
            )
        });
        assert!(
            reference.3,
            "{kind}: reference-kernel audit found violations: {:?}",
            reference.2
        );
        assert_eq!(
            reference, optimized,
            "{kind}: audited run diverged between kernels"
        );
    }
}

/// The hierarchical network through the same differential harness — and
/// at *two* geometries, because it is the one network whose topology
/// (cluster rings + bridge backbone) reshapes itself with the grid side.
/// Sweep points and audited runs must be kernel-invariant at 8×8 and
/// 16×16, and the audits must come back clean at both scales.
#[test]
fn hierarchical_is_kernel_invariant_at_both_scales() {
    for side in [8usize, 16] {
        let config = MacrochipConfig::with_side(side);
        for load in [0.05, 0.60] {
            let (reference, optimized) = both(|| {
                let (point, net) = macrochip::sweep::run_load_point_traced(
                    networks::build(NetworkKind::Hierarchical, config),
                    Pattern::Uniform,
                    load,
                    &config,
                    options(0xC0FFEE),
                    Tracer::disabled(),
                );
                (point, snapshot_json(net.as_ref()))
            });
            assert_eq!(
                reference, optimized,
                "hierarchical {side}x{side} @ {load}: sweep diverged between kernels"
            );
        }
        let (reference, optimized) = both(|| {
            let (point, report) = run_load_point_audited(
                NetworkKind::Hierarchical,
                Pattern::Uniform,
                0.05,
                &config,
                options(11),
            );
            (point, report.violation_lines(), report.is_clean())
        });
        assert!(
            reference.2,
            "hierarchical {side}x{side}: audit found violations: {:?}",
            reference.1
        );
        assert_eq!(
            reference, optimized,
            "hierarchical {side}x{side}: audited run diverged between kernels"
        );
    }
}

/// The golden Figure-6 bands hold on *both* kernels, and the sustained
/// fraction itself is bit-identical — the headline reproduction result
/// does not depend on which kernel computed it.
#[test]
fn figure6_bands_hold_on_both_kernels() {
    let config = MacrochipConfig::scaled();
    let bands = [
        (NetworkKind::PointToPoint, 0.90, 1.00),
        (NetworkKind::LimitedPointToPoint, 0.40, 0.56),
        (NetworkKind::TokenRing, 0.33, 0.48),
        (NetworkKind::TwoPhase, 0.05, 0.13),
        (NetworkKind::CircuitSwitched, 0.008, 0.035),
    ];
    let sweep = SweepOptions {
        sim: Span::from_us(2),
        drain: DRAIN,
        max_stalled: 4_000,
        seed: 1,
    };
    for (kind, lo, hi) in bands {
        let (reference, optimized) =
            both(|| sustained_bandwidth(kind, Pattern::Uniform, &config, sweep, 0.02));
        assert_eq!(
            reference.to_bits(),
            optimized.to_bits(),
            "{kind}: sustained-bandwidth fraction diverged between kernels"
        );
        assert!(
            (lo..=hi).contains(&optimized),
            "{kind}: sustained {:.1}% outside golden band [{:.1}%, {:.1}%]",
            optimized * 100.0,
            lo * 100.0,
            hi * 100.0
        );
    }
}
