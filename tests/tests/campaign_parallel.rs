//! Differential serial-vs-parallel campaign tests: the parallel campaign
//! engine must produce **byte-identical** results to the serial path for
//! every worker count, across all five Figure 6 networks, for both
//! open-loop sweeps and seeded fault campaigns — including the trace and
//! metrics side channels.

use desim::Span;
use faults::FaultPlan;
use macrochip::campaign::{
    run_indexed, run_point_full, Campaign, CampaignOutcome, CampaignPoint, PointExecOptions,
};
use macrochip::prelude::*;
use netcore::MacrochipConfig;
use workloads::Pattern;

fn config() -> MacrochipConfig {
    MacrochipConfig::scaled()
}

/// Short windows keep each point cheap; the determinism contract is
/// window-independent.
fn sweep_options() -> SweepOptions {
    SweepOptions {
        sim: Span::from_ns(500),
        drain: Span::from_us(2),
        max_stalled: 5_000,
        seed: 11,
    }
}

/// A 3-point sweep per network: all five Figure 6 architectures.
fn sweep_points() -> Vec<CampaignPoint> {
    let mut pts = Vec::new();
    for &kind in NetworkKind::FIGURE6.iter() {
        for &offered in &[0.01, 0.03, 0.05] {
            pts.push(CampaignPoint::Sweep {
                kind,
                pattern: Pattern::Uniform,
                offered,
                options: sweep_options(),
            });
        }
    }
    pts
}

/// A seeded fault campaign (structural + transient faults with repair)
/// over all five Figure 6 architectures.
fn fault_points() -> Vec<CampaignPoint> {
    let plan = FaultPlan::parse("rand-links=2; transient=0.01; repair=10us").expect("plan parses");
    NetworkKind::FIGURE6
        .iter()
        .map(|&kind| CampaignPoint::Fault {
            kind,
            pattern: Pattern::Uniform,
            load: 0.02,
            plan: plan.clone(),
            seed: 77,
            sim: Span::from_ns(500),
            drain: Span::from_us(2),
            max_stalled: 5_000,
        })
        .collect()
}

/// The canonical serialization of a whole campaign: each point's cache
/// encoding (IEEE-754 bits for floats), concatenated in input order.
fn serialize(outcomes: &[CampaignOutcome]) -> String {
    outcomes.iter().map(|o| o.result.to_cache_bytes()).collect()
}

#[test]
fn sweep_campaign_bytes_identical_across_worker_counts() {
    let points = sweep_points();
    let serial = Campaign::serial(config()).run(&points);
    assert_eq!(serial.len(), points.len());
    for jobs in [2, 4] {
        let parallel = Campaign {
            jobs,
            cache: None,
            config: config(),
        }
        .run(&points);
        assert_eq!(serialize(&parallel), serialize(&serial), "jobs={jobs}");
    }
}

#[test]
fn fault_campaign_bytes_identical_across_worker_counts() {
    let points = fault_points();
    let serial = Campaign::serial(config()).run(&points);
    for jobs in [2, 4] {
        let parallel = Campaign {
            jobs,
            cache: None,
            config: config(),
        }
        .run(&points);
        assert_eq!(serialize(&parallel), serialize(&serial), "jobs={jobs}");
    }
}

#[test]
fn mixed_campaign_with_coherent_points_is_worker_count_invariant() {
    let mut points = sweep_points();
    points.extend(fault_points());
    points.push(CampaignPoint::Coherent {
        kind: NetworkKind::PointToPoint,
        spec: WorkloadSpec::Synthetic {
            pattern: Pattern::Neighbor,
            mix: SharingMix::LessSharing,
            ops_per_core: 2,
        },
        seed: 5,
    });
    let serial = Campaign::serial(config()).run(&points);
    let parallel = Campaign {
        jobs: 4,
        cache: None,
        config: config(),
    }
    .run(&points);
    assert_eq!(serialize(&parallel), serialize(&serial));
}

/// The fault.* / latency metrics registries each worker snapshots must
/// merge (in canonical shard order) to exactly the serial registries —
/// compared here on their JSON serialization, field for field.
#[test]
fn fault_metrics_side_channel_identical_serial_vs_parallel() {
    let points = fault_points();
    let exec = PointExecOptions {
        trace: false,
        metrics: true,
        audit: false,
        trace_capacity: 1,
    };
    let cfg = config();
    let snapshots = |jobs: usize| -> Vec<String> {
        run_indexed(&points, jobs, |_, p| run_point_full(p, &cfg, exec))
            .into_iter()
            .map(|cell| {
                let json = cell.metrics.expect("metrics requested").to_json();
                assert!(json.contains("fault."), "fault metrics present");
                json
            })
            .collect()
    };
    let serial = snapshots(1);
    let parallel = snapshots(4);
    assert_eq!(serial, parallel);
}

/// Per-point flight recordings cross the shard boundary as snapshots and
/// must be event-for-event identical to a serial run's.
#[test]
fn trace_side_channel_identical_serial_vs_parallel() {
    let points = sweep_points();
    let exec = PointExecOptions {
        trace: true,
        metrics: false,
        audit: false,
        trace_capacity: 1 << 14,
    };
    let cfg = config();
    let serial = run_indexed(&points, 1, |_, p| run_point_full(p, &cfg, exec));
    let parallel = run_indexed(&points, 4, |_, p| run_point_full(p, &cfg, exec));
    for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
        assert!(!a.trace.is_empty(), "point {i} recorded no events");
        assert_eq!(a.trace, b.trace, "point {i} trace diverged");
    }
}
