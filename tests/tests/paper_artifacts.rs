//! The paper's analytic artifacts, checked end to end: Tables 1, 5 and 6
//! must reproduce exactly, and the link budgets must close.

use photonics::components::{Component, RECEIVER_SENSITIVITY_DBM};
use photonics::geometry::Layout;
use photonics::inventory::{ComponentCounts, NetworkId};
use photonics::link::LinkBudget;
use photonics::power::NetworkPower;
use photonics::units::{Db, Dbm};

#[test]
fn table1_component_losses() {
    let cases = [
        (Component::Modulator, 4.0),
        (Component::Opxc, 1.2),
        (Component::DropFilterPass, 0.1),
        (Component::DropFilterDrop, 1.5),
        (Component::Switch, 1.0),
        (Component::WaveguidePerCm, 0.5),
    ];
    for (c, loss) in cases {
        assert_eq!(c.props().insertion_loss, Db::new(loss), "{}", c.name());
    }
}

#[test]
fn unswitched_link_closes_with_4db_margin() {
    let link = LinkBudget::unswitched_site_to_site();
    assert!((link.total_loss().value() - 17.0).abs() < 0.2);
    assert!((link.margin(Dbm::new(0.0)).value() - 4.0).abs() < 0.2);
    assert_eq!(RECEIVER_SENSITIVITY_DBM, -21.0);
}

#[test]
fn table5_reproduces_exactly() {
    let layout = Layout::macrochip();
    let expect = [
        (NetworkId::TokenRing, 19.0, 155.0, 1.0),
        (NetworkId::PointToPoint, 1.0, 8.0, 0.5),
        (NetworkId::CircuitSwitched, 30.0, 245.0, 1.0),
        (NetworkId::LimitedPointToPoint, 1.0, 8.0, 0.5),
        (NetworkId::TwoPhaseData, 5.0, 41.0, 0.5),
        (NetworkId::TwoPhaseDataAlt, 4.0, 65.5, 0.5),
        (NetworkId::TwoPhaseArbitration, 8.0, 1.0, 0.1),
    ];
    for (id, factor, watts, tol) in expect {
        let row = NetworkPower::for_network(id, &layout);
        assert_eq!(row.loss_factor, factor, "{id} factor");
        assert!(
            (row.laser.watts() - watts).abs() <= tol,
            "{id}: {} W vs paper {watts} W",
            row.laser.watts()
        );
    }
}

#[test]
fn table6_reproduces_exactly() {
    let layout = Layout::macrochip();
    let expect: [(NetworkId, u64, u64, u64, u64); 7] = [
        (NetworkId::TokenRing, 524_288, 8_192, 32_768, 0),
        (NetworkId::PointToPoint, 8_192, 8_192, 3_072, 0),
        (NetworkId::CircuitSwitched, 8_192, 8_192, 2_048, 1_024),
        (NetworkId::LimitedPointToPoint, 8_192, 8_192, 3_072, 128),
        (NetworkId::TwoPhaseData, 8_192, 8_192, 4_096, 16_384),
        (NetworkId::TwoPhaseDataAlt, 16_384, 8_192, 4_096, 15_360),
        (NetworkId::TwoPhaseArbitration, 128, 1_024, 24, 0),
    ];
    for (id, tx, rx, wgs, switches) in expect {
        let c = ComponentCounts::for_network(id, &layout);
        let wg_reported = if id == NetworkId::TokenRing {
            c.waveguide_area_equivalent
        } else {
            c.waveguides
        };
        assert_eq!(
            (c.transmitters, c.receivers, wg_reported, c.switches),
            (tx, rx, wgs, switches),
            "{id}"
        );
    }
}

#[test]
fn power_efficiency_headline() {
    // Abstract: "the point-to-point is over 10x more power-efficient".
    let layout = Layout::macrochip();
    let p2p = NetworkPower::for_network(NetworkId::PointToPoint, &layout).laser;
    for id in [NetworkId::TokenRing, NetworkId::CircuitSwitched] {
        let other = NetworkPower::for_network(id, &layout).laser;
        assert!(other.value() / p2p.value() > 10.0, "{id}");
    }
}

#[test]
fn complexity_headline() {
    // §6.4: contrary to electronic networks, the photonic point-to-point
    // has the lowest design complexity.
    let layout = Layout::macrochip();
    let p2p = ComponentCounts::for_network(NetworkId::PointToPoint, &layout);
    assert_eq!(p2p.switches, 0);
    for id in [
        NetworkId::TokenRing,
        NetworkId::CircuitSwitched,
        NetworkId::TwoPhaseData,
    ] {
        let other = ComponentCounts::for_network(id, &layout);
        assert!(
            other.transmitters + other.switches > p2p.transmitters + p2p.switches,
            "{id}"
        );
    }
}
