//! Multi-chip fabric differential harness: a 2x2 board of side-4
//! macrochips runs the same campaign points on both simulation kernels
//! (reference binary-heap queue + append-only slab vs. optimized
//! calendar queue + recycling slab) and under every job count — results
//! must be **byte-identical** and every audited leg must come back
//! clean, including the fabric-only `fabric.inter-chip-bytes`
//! reconciliation invariant.
//!
//! The fourth test pins the compatibility contract: a one-chip
//! [`FabricConfig`] is not "almost" the plain single-chip path, it *is*
//! that path — same [`PointResult`], same metrics snapshot, byte for
//! byte.

use desim::{Backend, Span};
use faults::FaultPlan;
use macrochip::campaign::{
    run_indexed, run_point_fabric, run_point_full, run_point_full_fabric, CampaignPoint,
    PointExecOptions, PointRun,
};
use macrochip::sweep::SweepOptions;
use netcore::slab::set_thread_mode;
use netcore::{FabricConfig, MacrochipConfig, NetworkKind, SlabMode};
use workloads::Pattern;

const SIM: Span = Span::from_ns(500);
const DRAIN: Span = Span::from_us(5);

/// The two fabric-bearing architectures this harness sweeps: the paper's
/// token-ring crossbar and the post-paper hierarchical network. Between
/// them they cover both gateway protocols (broadcast-arbitrated and
/// cluster-routed) over the board links.
const FABRIC_KINDS: [NetworkKind; 2] = [NetworkKind::TokenRing, NetworkKind::Hierarchical];

/// A 2x2 board of side-4 chips: 16 chips' worth of machinery in
/// miniature — 4 inner networks, 2 board links in each direction, and an
/// 8x8 global address space.
fn fabric() -> FabricConfig {
    FabricConfig::grid(2, MacrochipConfig::with_side(4))
}

fn options(seed: u64) -> SweepOptions {
    SweepOptions {
        sim: SIM,
        drain: DRAIN,
        max_stalled: 5_000,
        seed,
    }
}

fn sweep_point(kind: NetworkKind, offered: f64) -> CampaignPoint {
    CampaignPoint::Sweep {
        kind,
        pattern: Pattern::Uniform,
        offered,
        options: options(0xFAB),
    }
}

/// A fault point whose plan kills the chip(0,0) -> chip(0,1) board link
/// (global gateway indices 0 and 4 on the 8-wide global grid), so the
/// resilience wrapper's retry machinery runs *through* the fabric layer.
fn fault_point(kind: NetworkKind) -> CampaignPoint {
    CampaignPoint::Fault {
        kind,
        pattern: Pattern::Uniform,
        load: 0.02,
        plan: FaultPlan::parse("link:0->4@500ns; repair=2us").unwrap(),
        seed: 77,
        sim: SIM,
        drain: DRAIN,
        max_stalled: 5_000,
    }
}

/// Runs `f` under an explicit kernel selection, restoring the defaults
/// afterwards even if `f` panics.
fn with_kernel<T>(backend: Backend, mode: SlabMode, f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            desim::set_thread_backend(None);
            set_thread_mode(None);
        }
    }
    let _restore = Restore;
    desim::set_thread_backend(Some(backend));
    set_thread_mode(Some(mode));
    f()
}

/// Runs `f` on both kernels and returns `(reference, optimized)`.
fn both<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let reference = with_kernel(Backend::Heap, SlabMode::Append, &mut f);
    let optimized = with_kernel(Backend::Calendar, SlabMode::Recycle, &mut f);
    (reference, optimized)
}

/// Full-fat execution: metrics + audit, so one run yields everything the
/// differential needs.
fn audited(point: &CampaignPoint) -> PointRun {
    run_point_full_fabric(
        point,
        &fabric(),
        PointExecOptions {
            metrics: true,
            audit: true,
            ..PointExecOptions::default()
        },
    )
}

fn assert_clean(run: &PointRun, label: &str) {
    let report = run.audit.as_ref().expect("audit was requested");
    assert!(
        report.is_clean(),
        "{label}: fabric audit found violations: {:?}",
        report.violations
    );
}

/// Open-loop sweep points on the 2x2 board: [`PointResult`] and the full
/// metrics snapshot (`net.*`, `audit.*`, `fabric.*` counters) must match
/// between kernels at a light and a moderate load, and both legs must
/// audit clean.
#[test]
fn fabric_sweep_points_are_kernel_invariant_and_audit_clean() {
    for kind in FABRIC_KINDS {
        for offered in [0.01, 0.03] {
            let point = sweep_point(kind, offered);
            let (reference, optimized) = both(|| audited(&point));
            assert_clean(&reference, "reference kernel");
            assert_clean(&optimized, "optimized kernel");
            assert_eq!(
                reference.result, optimized.result,
                "{kind} @ {offered}: fabric PointResult diverged between kernels"
            );
            assert_eq!(
                reference.metrics.as_ref().map(|m| m.to_json()),
                optimized.metrics.as_ref().map(|m| m.to_json()),
                "{kind} @ {offered}: fabric metrics diverged between kernels"
            );
        }
    }
}

/// Fault points with an inter-chip link kill: the board-link
/// half-bandwidth degradation, repair scheduling, and the wrapper's
/// retry timing must agree exactly between kernels, and the fabric
/// byte-reconciliation must still close with retransmissions in flight.
#[test]
fn fabric_fault_points_are_kernel_invariant_and_audit_clean() {
    for kind in FABRIC_KINDS {
        let point = fault_point(kind);
        let (reference, optimized) = both(|| audited(&point));
        assert_clean(&reference, "reference kernel");
        assert_clean(&optimized, "optimized kernel");
        assert_eq!(
            reference.result, optimized.result,
            "{kind}: fabric fault PointResult diverged between kernels"
        );
        assert_eq!(
            reference.metrics.as_ref().map(|m| m.to_json()),
            optimized.metrics.as_ref().map(|m| m.to_json()),
            "{kind}: fabric fault metrics diverged between kernels"
        );
    }
}

/// A mixed 2x2-board campaign (sweep grid + fault points on both
/// networks) must produce identical result vectors serially and at every
/// parallel job count — fabric points are as shard-order-independent as
/// single-chip ones.
#[test]
fn fabric_campaign_is_job_count_invariant() {
    let board = fabric();
    let mut points: Vec<CampaignPoint> = Vec::new();
    for kind in FABRIC_KINDS {
        for offered in [0.01, 0.03] {
            points.push(sweep_point(kind, offered));
        }
        points.push(fault_point(kind));
    }
    let serial = run_indexed(&points, 1, |_, p| run_point_fabric(p, &board));
    for jobs in [2, 4, 0] {
        let parallel = run_indexed(&points, jobs, |_, p| run_point_fabric(p, &board));
        assert_eq!(
            serial, parallel,
            "fabric campaign diverged between 1 job and {jobs} jobs"
        );
    }
}

/// The compatibility contract: a single-chip fabric IS the plain
/// single-chip path. Same results, same metrics bytes, same audit
/// verdict — so `--chips 1` (and every pre-fabric caller) is provably
/// unchanged.
#[test]
fn single_chip_fabric_points_match_plain_points() {
    let chip = MacrochipConfig::with_side(4);
    let single = FabricConfig::single(chip);
    let exec = || PointExecOptions {
        metrics: true,
        audit: true,
        ..PointExecOptions::default()
    };
    for kind in FABRIC_KINDS {
        for point in [sweep_point(kind, 0.03), fault_point(kind)] {
            let plain = run_point_full(&point, &chip, exec());
            let via_fabric = run_point_full_fabric(&point, &single, exec());
            assert_eq!(
                plain.result, via_fabric.result,
                "{kind}: single-chip fabric result differs from the plain path"
            );
            assert_eq!(
                plain.metrics.as_ref().map(|m| m.to_json()),
                via_fabric.metrics.as_ref().map(|m| m.to_json()),
                "{kind}: single-chip fabric metrics differ from the plain path"
            );
            assert_eq!(
                plain.audit.as_ref().map(|a| a.is_clean()),
                via_fabric.audit.as_ref().map(|a| a.is_clean()),
                "{kind}: single-chip fabric audit verdict differs from the plain path"
            );
        }
    }
}
