//! Shared helpers for the cross-crate integration test suite (see the
//! sibling `tests/` directory for the test files themselves).
