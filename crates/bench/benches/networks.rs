//! Simulation-throughput benchmarks: wall-clock cost of pushing a fixed
//! uniform-random workload through each network architecture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use desim::Time;
use macrochip::runner::{drive, DriveLimits};
use netcore::{MacrochipConfig, NetworkKind};
use workloads::{OpenLoopTraffic, Pattern};

fn bench_networks(c: &mut Criterion) {
    let config = MacrochipConfig::scaled();
    let mut group = c.benchmark_group("uniform_5pct_500ns");
    group.sample_size(10);
    for kind in NetworkKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut net = networks::build(kind, config);
                    let mut traffic =
                        OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.05, 320.0, 64, 7);
                    traffic.set_horizon(Time::from_ns(500));
                    drive(net.as_mut(), &mut traffic, DriveLimits::default());
                    net.stats().delivered_packets()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_networks);
criterion_main!(benches);
