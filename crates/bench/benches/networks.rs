//! Simulation-throughput benchmarks: wall-clock cost of pushing a fixed
//! uniform-random workload through each network architecture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use desim::trace::RingSink;
use desim::{Time, Tracer};
use macrochip::runner::{drive, drive_traced, DriveLimits};
use netcore::{MacrochipConfig, NetworkKind};
use std::cell::RefCell;
use std::rc::Rc;
use workloads::{OpenLoopTraffic, Pattern};

fn bench_networks(c: &mut Criterion) {
    let config = MacrochipConfig::scaled();
    let mut group = c.benchmark_group("uniform_5pct_500ns");
    group.sample_size(10);
    for kind in NetworkKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut net = networks::build(kind, config);
                    let mut traffic =
                        OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.05, 320.0, 64, 7);
                    traffic.set_horizon(Time::from_ns(500));
                    drive(net.as_mut(), &mut traffic, DriveLimits::default());
                    net.stats().delivered_packets()
                })
            },
        );
    }
    group.finish();
}

/// Flight-recorder overhead on the most heavily instrumented network:
/// disabled tracing must cost no more than one branch per event, and
/// recording into the bounded ring shows the enabled-path price.
fn bench_tracing_overhead(c: &mut Criterion) {
    let config = MacrochipConfig::scaled();
    let mut group = c.benchmark_group("tracing_two_phase_5pct_500ns");
    group.sample_size(10);
    let run = |tracer: Tracer| {
        let mut net = networks::build(NetworkKind::TwoPhase, config);
        net.set_tracer(tracer.clone());
        let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.05, 320.0, 64, 7);
        traffic.set_horizon(Time::from_ns(500));
        drive_traced(net.as_mut(), &mut traffic, DriveLimits::default(), tracer);
        net.stats().delivered_packets()
    };
    group.bench_function("disabled", |b| b.iter(|| run(Tracer::disabled())));
    group.bench_function("ring_sink", |b| {
        b.iter(|| {
            let sink = Rc::new(RefCell::new(RingSink::new(1 << 16)));
            run(Tracer::shared(&sink))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_networks, bench_tracing_overhead);
criterion_main!(benches);
