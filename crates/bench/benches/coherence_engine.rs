//! Coherence-engine throughput: a small synthetic workload over the
//! point-to-point network.

use criterion::{criterion_group, criterion_main, Criterion};
use macrochip::experiment::{run_coherent, WorkloadSpec};
use netcore::{MacrochipConfig, NetworkKind};
use workloads::{Pattern, SharingMix};

fn bench_engine(c: &mut Criterion) {
    let config = MacrochipConfig::scaled();
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::LessSharing,
        ops_per_core: 5,
    };
    let mut group = c.benchmark_group("coherent_run");
    group.sample_size(10);
    group.bench_function("p2p_uniform_ls_5ops", |b| {
        b.iter(|| run_coherent(NetworkKind::PointToPoint, &spec, &config, 3).ops_completed)
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
