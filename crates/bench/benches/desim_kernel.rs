//! Micro-benchmarks of the discrete-event simulation kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use desim::stats::LatencyHistogram;
use desim::{EventQueue, SimRng, Span, Time};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::new(1);
            for i in 0..10_000u64 {
                q.push(Time::from_ps(rng.next_u64() % 1_000_000), i);
            }
            let mut last = Time::ZERO;
            while let Some((t, _)) = q.pop() {
                assert!(t >= last);
                last = t;
            }
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("latency_histogram_record_10k", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| {
            let mut h = LatencyHistogram::new();
            for _ in 0..10_000 {
                h.record(Span::from_ps(rng.next_u64() % 1_000_000));
            }
            h.percentile(0.99)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("exp_span_10k", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| {
            let mut acc = Span::ZERO;
            for _ in 0..10_000 {
                acc += rng.exp_span(Span::from_ns(5));
            }
            acc
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_histogram, bench_rng);
criterion_main!(benches);
