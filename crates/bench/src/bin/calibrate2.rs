//! Secondary calibration: ALT vs base two-phase; nearest-neighbor and
//! transpose saturation points.

use desim::Span;
use macrochip::prelude::*;

fn main() {
    let config = MacrochipConfig::scaled();
    let options = SweepOptions {
        sim: Span::from_us(2),
        drain: Span::from_us(10),
        max_stalled: 4_000,
        seed: 1,
    };
    let f = |kind, pattern| {
        macrochip::sweep::sustained_bandwidth(kind, pattern, &config, options, 0.01)
    };
    println!(
        "2-Phase ALT uniform:   {:>5.1}% (base was ~9%)",
        f(NetworkKind::TwoPhaseAlt, Pattern::Uniform) * 100.0
    );
    println!(
        "Limited neighbor:      {:>5.1}% (paper ~25%)",
        f(NetworkKind::LimitedPointToPoint, Pattern::Neighbor) * 100.0
    );
    println!(
        "P2P transpose:         {:>5.1}% (paper ~1.6% = 5 GB/s)",
        f(NetworkKind::PointToPoint, Pattern::Transpose) * 100.0
    );
    println!(
        "Token transpose:       {:>5.1}% (paper <1%)",
        f(NetworkKind::TokenRing, Pattern::Transpose) * 100.0
    );
}
