//! Regenerates **Figure 10: Energy-Delay Product, Normalized to the
//! Point-to-Point Network** (paper §6.3, log plot).
//!
//! The coherent grid behind it shards across `--jobs <N>` /
//! `MACROCHIP_JOBS=N` workers (byte-identical output) and is cached as
//! CSV under `results/`; `--no-cache` forces a resimulation.

use macrochip::prelude::*;
use macrochip::report::{fmt, Table};
use macrochip_bench::{coherent_grid, find_run, workload_order};

fn main() {
    let runs = coherent_grid();
    let workloads = workload_order(&runs);
    let model = NetworkEnergyModel::default();

    let mut header = vec!["Workload".to_string()];
    header.extend(NetworkKind::ALL.iter().map(|k| k.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut arb_over_100x = 0;
    let mut app_count = 0;
    let apps = [
        "Radix",
        "Barnes",
        "Blackscholes",
        "Densities",
        "Forces",
        "Swaptions",
    ];

    for w in &workloads {
        let p2p = find_run(&runs, w, NetworkKind::PointToPoint).expect("grid complete");
        let p2p_edp = model.edp(p2p);
        let mut row = vec![w.clone()];
        for kind in NetworkKind::ALL {
            let run = find_run(&runs, w, kind).expect("grid complete");
            let rel = model.edp(run) / p2p_edp;
            if apps.contains(&w.as_str())
                && matches!(
                    kind,
                    NetworkKind::TokenRing | NetworkKind::CircuitSwitched | NetworkKind::TwoPhase
                )
            {
                app_count += 1;
                if rel > 100.0 {
                    arb_over_100x += 1;
                }
            }
            row.push(fmt(rel, 1));
        }
        table.row_owned(row);
    }

    println!("Figure 10: Energy-Delay Product normalized to Point-to-Point\n");
    println!("{}", table.to_text());
    println!(
        "arbitrated/circuit-switched EDP >100x p2p on {arb_over_100x}/{app_count} application \
         cells (paper: on all but one application benchmark)"
    );

    let path = macrochip_bench::results_dir().join("fig10_edp.csv");
    std::fs::write(&path, table.to_csv()).expect("write fig10 csv");
    println!("\nwrote {}", path.display());
}
