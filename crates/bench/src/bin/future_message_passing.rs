//! The paper's §8 future work, realized: message-passing collectives over
//! all six network architectures.
//!
//! Bulk-synchronous collectives chain dependent communication steps, so
//! per-message overheads (token reacquisition, circuit setup, arbitration
//! pipelines) compound at every barrier — a different stress than the
//! cache-coherence traffic of the paper's own evaluation.

use desim::Time;
use macrochip::prelude::*;
use macrochip::report::{fmt, Table};
use macrochip::runner::{drive, DriveLimits};
use workloads::{Collective, MessagePassingWorkload};

fn main() {
    let config = MacrochipConfig::scaled();
    let message_bytes = 1024; // 1 KB per transfer, 16 cache-line packets
    let rounds = 2;

    let mut header = vec!["Collective".to_string()];
    header.extend(NetworkKind::ALL.iter().map(|k| k.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for collective in Collective::ALL {
        let mut row = vec![collective.name().to_string()];
        for kind in NetworkKind::ALL {
            let mut net = networks::build(kind, config);
            let mut workload =
                MessagePassingWorkload::new(&config.grid, collective, message_bytes, rounds);
            let outcome = drive(
                net.as_mut(),
                &mut workload,
                DriveLimits {
                    deadline: Time::from_us(100_000),
                    max_stalled: usize::MAX,
                },
            );
            assert!(
                !outcome.timed_out,
                "{kind} timed out on {}",
                collective.name()
            );
            let us = workload
                .finished_at()
                .expect("collective completes")
                .as_us_f64();
            row.push(format!("{} us", fmt(us, 2)));
        }
        table.row_owned(row);
    }

    println!(
        "Future work (paper §8): message-passing collectives, {message_bytes} B per \
         transfer, {rounds} rounds\n"
    );
    println!("{}", table.to_text());
    println!(
        "Dependent steps compound per-message overheads: the circuit-switched torus \
         pays its setup round trip at every step, the token ring a reacquisition lap."
    );

    let path = macrochip_bench::results_dir().join("future_message_passing.csv");
    std::fs::write(&path, table.to_csv()).expect("write message passing csv");
    println!("\nwrote {}", path.display());
}
