//! Regenerates **Table 6: Total Optical Component Counts** (paper §6.4),
//! with the paper's published values alongside.

use macrochip::report::Table;
use photonics::geometry::Layout;
use photonics::inventory::{ComponentCounts, NetworkId, SwitchKind};

/// The paper's Table 6 rows: (network, tx, rx, waveguides, switches).
const PAPER: [(NetworkId, u64, u64, u64, u64); 7] = [
    (NetworkId::TokenRing, 524_288, 8_192, 32_768, 0),
    (NetworkId::PointToPoint, 8_192, 8_192, 3_072, 0),
    (NetworkId::CircuitSwitched, 8_192, 8_192, 2_048, 1_024),
    (NetworkId::LimitedPointToPoint, 8_192, 8_192, 3_072, 128),
    (NetworkId::TwoPhaseData, 8_192, 8_192, 4_096, 16_384),
    (NetworkId::TwoPhaseDataAlt, 16_384, 8_192, 4_096, 15_360),
    (NetworkId::TwoPhaseArbitration, 128, 1_024, 24, 0),
];

fn main() {
    let layout = Layout::macrochip();
    let mut table = Table::new(&[
        "Network Type",
        "Tx",
        "Rx",
        "Wgs",
        "Switches",
        "Switch kind",
        "Matches paper",
    ]);
    for (id, tx, rx, wgs, sw) in PAPER {
        let c = ComponentCounts::for_network(id, &layout);
        // The paper's waveguide column reports the token ring's
        // area-equivalent count (32 K), physical elsewhere.
        let wg_reported = if id == NetworkId::TokenRing {
            c.waveguide_area_equivalent
        } else {
            c.waveguides
        };
        let kind = match c.switch_kind {
            SwitchKind::None => "-",
            SwitchKind::Broadband1x2 => "1x2 broadband",
            SwitchKind::Optical4x4 => "4x4 optical",
            SwitchKind::Electronic7x7 => "7x7 electronic router",
        };
        let matches =
            c.transmitters == tx && c.receivers == rx && wg_reported == wgs && c.switches == sw;
        table.row_owned(vec![
            id.name().to_string(),
            c.transmitters.to_string(),
            c.receivers.to_string(),
            wg_reported.to_string(),
            c.switches.to_string(),
            kind.to_string(),
            if matches { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!(
        "Table 6: Total Optical Component Counts (reproduced; last column checks against paper)\n"
    );
    println!("{}", table.to_text());
    let path = macrochip_bench::results_dir().join("table6_counts.csv");
    std::fs::write(&path, table.to_csv()).expect("write table6_counts.csv");
    println!("wrote {}", path.display());
}
