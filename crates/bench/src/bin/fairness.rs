//! Fairness analysis (beyond the paper): do all sites see the same
//! latency? Jain's fairness index over per-source mean latencies, per
//! network, on uniform traffic.
//!
//! The token ring's serpentine geometry and the limited point-to-point's
//! forwarding asymmetry are the interesting cases; the point-to-point
//! network's dedicated channels should be nearly perfectly fair.

use desim::Time;
use macrochip::prelude::*;
use macrochip::report::{fmt, heatmap, Table};
use macrochip::runner::{drive, DriveLimits};
use workloads::OpenLoopTraffic;

fn main() {
    let config = MacrochipConfig::scaled();
    let mut table = Table::new(&[
        "Network",
        "Jain index",
        "Sources",
        "Best site mean (ns)",
        "Worst site mean (ns)",
    ]);

    for kind in NetworkKind::ALL {
        let mut net = networks::build(kind, config);
        let mut traffic =
            OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.05, 320.0, 64, 123);
        traffic.set_horizon(Time::from_us(3));
        drive(net.as_mut(), &mut traffic, DriveLimits::default());
        let stats = net.stats();
        let per: Vec<f64> = stats
            .per_source_mean_latency_ns()
            .into_iter()
            .filter(|&x| x > 0.0)
            .collect();
        let best = per.iter().copied().fold(f64::INFINITY, f64::min);
        let worst = per.iter().copied().fold(0.0, f64::max);
        table.row_owned(vec![
            kind.name().to_string(),
            fmt(stats.jain_fairness(), 4),
            format!("{}/{}", stats.participating_sources(), config.grid.sites()),
            fmt(best, 1),
            fmt(worst, 1),
        ]);
    }

    println!("Per-source fairness at 5% uniform load\n");
    println!("{}", table.to_text());

    // Spatial view of the least-fair architecture.
    let mut net = networks::build(NetworkKind::CircuitSwitched, config);
    let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.05, 320.0, 64, 123);
    traffic.set_horizon(Time::from_us(3));
    drive(net.as_mut(), &mut traffic, DriveLimits::default());
    let mut per = net.stats().per_source_mean_latency_ns();
    per.resize(config.grid.sites(), 0.0);
    println!("Circuit-switched per-source mean latency across the 8x8 grid:\n");
    println!("{}", heatmap(config.grid.side(), &per));
    println!(
        "The point-to-point network is nearly perfectly fair (dedicated channels); \
         position-dependent token travel and forwarding asymmetry show up as spread."
    );

    let path = macrochip_bench::results_dir().join("fairness.csv");
    std::fs::write(&path, table.to_csv()).expect("write fairness csv");
    println!("\nwrote {}", path.display());
}
