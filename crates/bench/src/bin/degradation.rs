//! Degraded-mode throughput: how each of the five networks holds up as
//! the transient link-fault rate climbs.
//!
//! Drives every Figure-6 network with uniform-random traffic at a light
//! load while sweeping the per-packet transient corruption rate (plus a
//! pair of seeded random link kills with auto-repair at the non-zero
//! rates), and reports goodput, availability, retries and
//! time-in-degraded-mode per point. The zero-fault column doubles as the
//! baseline: the resilience wrapper is a pure pass-through there, so its
//! numbers match an unwrapped run exactly (enforced by the regression
//! test in `tests/`).
//!
//! ```text
//! cargo run --release -p macrochip-bench --bin degradation
//! ```
//!
//! Set `MACROCHIP_FAST=1` for a shorter traffic window; `--jobs <N>` (or
//! `MACROCHIP_JOBS=N`) shards the (network × fault-rate) grid across N
//! workers without changing the table.

use desim::{Span, Time};
use faults::{FaultPlan, ResilientNetwork};
use macrochip::campaign::run_indexed;
use macrochip::report::{fmt, Table};
use macrochip::runner::{drive, DriveLimits};
use netcore::{MacrochipConfig, Network, NetworkKind};
use workloads::{OpenLoopTraffic, Pattern};

/// Transient per-packet corruption rates swept (0 = fault-free baseline).
const FAULT_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

/// Offered load, as a fraction of the 320 B/ns per-site peak. Light
/// enough that every architecture (including the circuit-switched torus,
/// sustainable only to ~2.5% on uniform traffic) holds it fault-free, so
/// the degradation visible in the table is attributable to the faults.
const LOAD: f64 = 0.02;

const SEED: u64 = 0xFA_0175;

fn plan_for(rate: f64) -> FaultPlan {
    if rate == 0.0 {
        return FaultPlan::none();
    }
    FaultPlan::parse(&format!("transient={rate}; rand-links=2; repair=10us"))
        .expect("static spec parses")
}

fn main() {
    let config = MacrochipConfig::scaled();
    let sim = if macrochip_bench::fast_mode() {
        Span::from_us(1)
    } else {
        Span::from_us(5)
    };
    let drain = Span::from_us(20);
    let horizon = Time::ZERO + sim;
    let mut table = Table::new(&[
        "Network",
        "Fault rate",
        "Goodput (B/ns/site)",
        "Availability",
        "Retries",
        "Dropped",
        "Degraded (us)",
        "Fairness",
        "Sources",
    ]);
    // Each (network, fault-rate) cell is an independent simulation with
    // its own wrapper, RNG and traffic source; shard the grid and merge
    // the rows back in table order.
    let cells: Vec<(NetworkKind, f64)> = NetworkKind::FIGURE6
        .iter()
        .flat_map(|&kind| FAULT_RATES.iter().map(move |&rate| (kind, rate)))
        .collect();
    let rows = run_indexed(
        &cells,
        macrochip_bench::CampaignEnv::detect().jobs,
        |_, &(kind, rate)| {
            let plan = plan_for(rate);
            let mut net =
                ResilientNetwork::new(networks::build(kind, config), &plan, SEED, horizon);
            let peak = config.site_bandwidth_bytes_per_ns();
            let mut traffic = OpenLoopTraffic::new(
                &config.grid,
                Pattern::Uniform,
                LOAD,
                peak,
                config.data_bytes,
                SEED,
            );
            traffic.set_horizon(horizon);
            let outcome = drive(
                &mut net,
                &mut traffic,
                DriveLimits {
                    deadline: horizon + drain,
                    max_stalled: 5_000,
                },
            );
            let s = net.fault_stats();
            // Goodput over the delivery window: retry tails extend it, the
            // trailing repair events of the fault schedule do not.
            let window = net
                .stats()
                .last_delivery()
                .unwrap_or(outcome.end)
                .as_ns_f64()
                .max(sim.as_ns_f64());
            let goodput = s.clean_bytes as f64 / window / config.grid.sites() as f64;
            // Jain's index only covers sources that delivered at least one
            // packet, so a fault plan that silences a site can *raise*
            // fairness. Reporting the participating-source count alongside
            // makes that shrinkage visible instead of silent.
            vec![
                kind.name().to_string(),
                fmt(rate, 3),
                fmt(goodput, 3),
                fmt(net.availability(), 4),
                s.retries.to_string(),
                net.lost_packets().to_string(),
                fmt(s.time_degraded(outcome.end).as_ns_f64() / 1e3, 2),
                fmt(net.stats().jain_fairness(), 4),
                format!(
                    "{}/{}",
                    net.stats().participating_sources(),
                    config.grid.sites()
                ),
            ]
        },
    );
    for row in rows {
        table.row_owned(row);
    }
    println!(
        "Degraded-mode throughput: uniform load at {:.0}% of peak, \
         transient fault-rate sweep\n",
        LOAD * 100.0
    );
    println!("{}", table.to_text());
}
