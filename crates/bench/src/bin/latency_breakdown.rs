//! Where does the latency go? Splits each network's mean packet latency
//! into *wait* (queueing, arbitration, token wait, path setup — set by
//! the network when the final transmission begins) and *wire*
//! (serialization + time of flight).
//!
//! This makes the paper's §6.1 argument quantitative: the five networks
//! have similar wire times, and the entire difference is overhead before
//! the first bit moves.

use desim::Time;
use macrochip::prelude::*;
use macrochip::report::{fmt, Table};
use macrochip::runner::{drive, DriveLimits};
use netcore::{Packet, PacketSource};
use workloads::OpenLoopTraffic;

/// Wraps the open-loop source, accumulating wait/wire statistics from the
/// delivered packets.
struct Breakdown<S> {
    inner: S,
    wait: desim::stats::Mean,
    wire: desim::stats::Mean,
}

impl<S: PacketSource> PacketSource for Breakdown<S> {
    fn next_emission(&self) -> Option<Time> {
        self.inner.next_emission()
    }
    fn emit_due(&mut self, now: Time, out: &mut Vec<Packet>) {
        self.inner.emit_due(now, out)
    }
    fn on_delivered(&mut self, packet: &Packet, now: Time) {
        if packet.src != packet.dst {
            if let (Some(w), Some(x)) = (packet.wait_time(), packet.wire_time()) {
                self.wait.record(w.as_ns_f64());
                self.wire.record(x.as_ns_f64());
            }
        }
        self.inner.on_delivered(packet, now)
    }
    fn is_exhausted(&self) -> bool {
        self.inner.is_exhausted()
    }
}

fn main() {
    let config = MacrochipConfig::scaled();
    let load = 0.05; // a light uniform load: overheads, not congestion
    let mut table = Table::new(&["Network", "Mean wait (ns)", "Mean wire (ns)", "Wait share"]);

    for kind in NetworkKind::ALL {
        let mut net = networks::build(kind, config);
        let inner = OpenLoopTraffic::new(&config.grid, Pattern::Uniform, load, 320.0, 64, 99);
        let mut src = Breakdown {
            inner,
            wait: desim::stats::Mean::new(),
            wire: desim::stats::Mean::new(),
        };
        src.inner.set_horizon(Time::from_us(2));
        drive(net.as_mut(), &mut src, DriveLimits::default());
        let wait = src.wait.mean();
        let wire = src.wire.mean();
        table.row_owned(vec![
            kind.name().to_string(),
            fmt(wait, 1),
            fmt(wire, 1),
            format!("{}%", fmt(100.0 * wait / (wait + wire), 0)),
        ]);
    }

    println!("Latency breakdown at 5% uniform load (wait = arbitration/setup/queueing)\n");
    println!("{}", table.to_text());
    println!(
        "Wire times differ only by channel width; the architectures are separated \
         almost entirely by what happens before the first bit moves (§6.1)."
    );

    let path = macrochip_bench::results_dir().join("latency_breakdown.csv");
    std::fs::write(&path, table.to_csv()).expect("write breakdown csv");
    println!("\nwrote {}", path.display());
}
