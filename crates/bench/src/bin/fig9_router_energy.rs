//! Regenerates **Figure 9: Energy Used by Routers in the Limited
//! Point-to-Point Network as a Percentage of Total** (paper §6.3).

use macrochip::prelude::*;
use macrochip::report::{fmt, Table};
use macrochip_bench::{coherent_grid, find_run, workload_order};

fn main() {
    let runs = coherent_grid();
    let workloads = workload_order(&runs);
    let model = NetworkEnergyModel::default();

    let mut table = Table::new(&["Workload", "Router energy (%)", "Router J", "Total J"]);
    let mut app_max: f64 = 0.0;
    let mut synth_max: f64 = 0.0;
    let apps = [
        "Radix",
        "Barnes",
        "Blackscholes",
        "Densities",
        "Forces",
        "Swaptions",
    ];

    for w in &workloads {
        let run = find_run(&runs, w, NetworkKind::LimitedPointToPoint).expect("grid complete");
        let e = model.energy(run);
        let pct = e.router_fraction() * 100.0;
        if apps.contains(&w.as_str()) {
            app_max = app_max.max(pct);
        } else {
            synth_max = synth_max.max(pct);
        }
        table.row_owned(vec![
            w.clone(),
            fmt(pct, 1),
            format!("{:.3e}", e.router_j),
            format!("{:.3e}", e.total_j()),
        ]);
    }

    println!("Figure 9: Router Energy Share in the Limited Point-to-Point Network\n");
    println!("{}", table.to_text());
    println!("max on applications: {app_max:.1}% (paper: 10.4%)");
    println!("max on synthetics:   {synth_max:.1}% (paper: 17%)");

    let path = macrochip_bench::results_dir().join("fig9_router_energy.csv");
    std::fs::write(&path, table.to_csv()).expect("write fig9 csv");
    println!("\nwrote {}", path.display());
}
