//! Regenerates every table and figure in sequence and writes a summary
//! to `results/`. See DESIGN.md §5 for the experiment index.
//!
//! This is a convenience wrapper: each artifact also has its own binary
//! (`table1`, `table4`, `table5_power`, `table6_counts`,
//! `fig6_latency_load`, `fig7_speedup`, `fig8_latency`,
//! `fig9_router_energy`, `fig10_edp`).
//!
//! `--jobs <N>` (or `MACROCHIP_JOBS=N`) shards each child's simulation
//! grid across N worker threads — artifacts stay byte-identical to a
//! serial run. `--no-cache` (or `MACROCHIP_NO_CACHE=1`) forces grids to
//! resimulate instead of loading cached results.

use macrochip_bench::CampaignEnv;
use std::process::Command;

fn run(bin: &str, env: &CampaignEnv) {
    println!("\n=== {bin} ===\n");
    let mut cmd = Command::new(
        std::env::current_exe()
            .expect("self path")
            .parent()
            .expect("bin dir")
            .join(bin),
    );
    // Forward the resolved campaign-engine knobs (`--jobs`, `--no-cache`,
    // cache location) to the child binaries as their environment
    // equivalents, so every child sees the same configuration.
    cmd.env("MACROCHIP_JOBS", env.jobs.to_string());
    if env.no_cache {
        cmd.env("MACROCHIP_NO_CACHE", "1");
    }
    cmd.env("MACROCHIP_CACHE_DIR", &env.cache_dir);
    let status = cmd.status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => eprintln!("{bin} exited with {s}"),
        Err(e) => eprintln!(
            "could not run {bin}: {e} (try `cargo build --release -p macrochip-bench` first)"
        ),
    }
}

fn main() {
    let env = CampaignEnv::detect();
    for bin in [
        "table1",
        "table4",
        "table5_power",
        "table6_counts",
        "fig6_latency_load",
        "fig7_speedup",
        "fig8_latency",
        "fig9_router_energy",
        "fig10_edp",
        "macrochip_2015",
        "ablations",
        "sensitivity",
        "future_message_passing",
        "latency_breakdown",
        "fairness",
    ] {
        run(bin, &env);
    }
    println!(
        "\nAll artifacts regenerated under {}",
        macrochip_bench::results_dir().display()
    );
}
