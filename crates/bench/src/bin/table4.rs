//! Regenerates **Table 4: Simulated Macrochip Configuration** (paper §5).

use macrochip::prelude::*;
use macrochip::report::Table;

fn main() {
    let c = MacrochipConfig::scaled();
    let mut table = Table::new(&["Parameter", "Value"]);
    table
        .row(&["Number of sites", &c.grid.sites().to_string()])
        .row(&["Shared L2 Cache per site", &format!("{} KB", c.l2_kb)])
        .row(&[
            "Bandwidth per site",
            &format!("{} GB/sec", c.site_bandwidth_bytes_per_ns()),
        ])
        .row(&[
            "Total peak bandwidth",
            &format!("{} TB/sec", c.total_peak_bytes_per_ns() / 1024.0),
        ])
        .row(&["Cores per site", &c.cores_per_site.to_string()])
        .row(&["Threads per core", &c.threads_per_core.to_string()])
        .row(&["FPU per core", "1"]);
    println!("Table 4: Simulated Macrochip Configuration\n");
    println!("{}", table.to_text());
    let path = macrochip_bench::results_dir().join("table4.csv");
    std::fs::write(&path, table.to_csv()).expect("write table4.csv");
    println!("wrote {}", path.display());
}
