//! The full 2015-target macrochip of §3, through the analytic models:
//! bandwidth provisioning, component counts, laser budget, and the fiber
//! feed — the numbers the paper quotes in prose.

use macrochip::report::{fmt, Table};
use netcore::MacrochipConfig;
use photonics::geometry::Layout;
use photonics::inventory::{ComponentCounts, NetworkId};
use photonics::power::{NetworkPower, BASE_LASER_MW};

fn main() {
    let full = MacrochipConfig::full_2015();
    let layout = Layout::macrochip();

    println!("The full 2015 macrochip (paper §3)\n");
    let mut t = Table::new(&["Quantity", "Ours", "Paper §3"]);
    t.row_owned(vec![
        "Bandwidth into/out of a site".into(),
        format!(
            "{} TB/s",
            fmt(full.site_bandwidth_bytes_per_ns() / 1000.0, 2)
        ),
        "2.56 TB/s".into(),
    ]);
    t.row_owned(vec![
        "Total peak aggregate bandwidth".into(),
        format!("{} TB/s", fmt(full.total_peak_bytes_per_ns() / 1000.0, 1)),
        "160 TB/s (rounded)".into(),
    ]);
    t.row_owned(vec![
        "Transmitters (receivers) per site".into(),
        full.tx_per_site.to_string(),
        "1024".into(),
    ]);
    t.row_owned(vec![
        "Wavelengths per waveguide".into(),
        full.wavelengths_per_waveguide.to_string(),
        "16".into(),
    ]);
    t.row_owned(vec![
        "Cores per site (5 GHz, 1 W each)".into(),
        full.cores_per_site.to_string(),
        "64".into(),
    ]);
    t.row_owned(vec![
        "Site power".into(),
        format!("{} W", full.cores_per_site),
        "64 W".into(),
    ]);
    t.row_owned(vec![
        "Macrochip power".into(),
        format!("{} kW", fmt(full.cores_per_site as f64 * 64.0 / 1000.0, 1)),
        "~4 kW".into(),
    ]);

    // Lasers: each laser sources 8 wavelengths, each split 8 ways (§3),
    // so one laser drives 64 wavelength channels.
    let p2p_full = ComponentCounts::for_network_in(NetworkId::PointToPoint, &layout, 16, 16);
    let lasers = p2p_full.transmitters / 64;
    t.row_owned(vec![
        "Lasers (8 wavelengths x 8-way power sharing)".into(),
        lasers.to_string(),
        "1024".into(),
    ]);
    println!("{}", t.to_text());

    println!("Point-to-point network at full scale (analytic):");
    let scaled = ComponentCounts::for_network(NetworkId::PointToPoint, &layout);
    println!(
        "  transmitters {} -> {} (8x the simulated system)",
        scaled.transmitters, p2p_full.transmitters
    );
    println!(
        "  waveguides   {} -> {}",
        scaled.waveguides, p2p_full.waveguides
    );
    let power = NetworkPower::for_network(NetworkId::PointToPoint, &layout);
    let full_laser_w = p2p_full.transmitters as f64 * BASE_LASER_MW * power.loss_factor / 1000.0;
    println!(
        "  laser power  {} W -> {} W",
        fmt(power.laser.watts(), 1),
        fmt(full_laser_w, 1)
    );

    let path = macrochip_bench::results_dir().join("macrochip_2015.csv");
    std::fs::write(&path, t.to_csv()).expect("write macrochip_2015.csv");
    println!("\nwrote {}", path.display());
}
