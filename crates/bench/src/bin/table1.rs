//! Regenerates **Table 1: Optical Component Properties** (paper §2).

use macrochip::report::Table;
use photonics::components::{Component, EnergyCost};

fn main() {
    let mut table = Table::new(&["Component", "Energy", "Signal Loss"]);
    for c in Component::ALL {
        let p = c.props();
        let energy = match p.energy {
            EnergyCost::Dynamic(e) => format!("{e} (dynamic)"),
            EnergyCost::Static(e) => format!("{e} (static)"),
            EnergyCost::Standing(p) => format!("{p} (standing)"),
            EnergyCost::Negligible => "negligible".to_string(),
        };
        table.row(&[c.name(), &energy, &p.insertion_loss.to_string()]);
    }
    println!("Table 1: Optical Component Properties\n");
    println!("{}", table.to_text());
    let path = macrochip_bench::results_dir().join("table1.csv");
    std::fs::write(&path, table.to_csv()).expect("write table1.csv");
    println!("wrote {}", path.display());
}
