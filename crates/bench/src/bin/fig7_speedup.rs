//! Regenerates **Figure 7: Speedup for Benchmarks and Synthetic Message
//! Patterns, Normalized to the Circuit-Switched Network** (paper §6.2).
//!
//! The coherent grid behind it shards across `--jobs <N>` /
//! `MACROCHIP_JOBS=N` workers (byte-identical output) and is cached as
//! CSV under `results/`; `--no-cache` forces a resimulation.

use macrochip::prelude::*;
use macrochip::report::{fmt, Table};
use macrochip_bench::{coherent_grid, find_run, workload_order};

fn main() {
    let runs = coherent_grid();
    let workloads = workload_order(&runs);

    let mut header = vec!["Workload".to_string()];
    header.extend(NetworkKind::ALL.iter().map(|k| k.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for w in &workloads {
        let baseline = find_run(&runs, w, NetworkKind::CircuitSwitched)
            .expect("circuit-switched baseline present");
        let mut row = vec![w.clone()];
        for kind in NetworkKind::ALL {
            let run = find_run(&runs, w, kind).expect("grid is complete");
            row.push(fmt(run.speedup_over(baseline), 2));
        }
        table.row_owned(row);
    }

    println!("Figure 7: Speedup vs. Circuit-Switched network\n");
    println!("{}", table.to_text());

    // Headline check: abstract claims p2p beats token ring ~3.3x and the
    // circuit-switched torus ~3.9x overall.
    let gmean = |a: NetworkKind, b: NetworkKind| -> f64 {
        let mut log_sum = 0.0;
        for w in &workloads {
            let x = find_run(&runs, w, a).expect("run");
            let y = find_run(&runs, w, b).expect("run");
            log_sum += x.speedup_over(y).ln();
        }
        (log_sum / workloads.len() as f64).exp()
    };
    println!(
        "geomean speedup P2P over Token Ring:        {:.2}x (paper: 3.3x)",
        gmean(NetworkKind::PointToPoint, NetworkKind::TokenRing)
    );
    println!(
        "geomean speedup P2P over Circuit-Switched:  {:.2}x (paper: 3.9x)",
        gmean(NetworkKind::PointToPoint, NetworkKind::CircuitSwitched)
    );

    let path = macrochip_bench::results_dir().join("fig7_speedup.csv");
    std::fs::write(&path, table.to_csv()).expect("write fig7 csv");
    println!("\nwrote {}", path.display());
}
