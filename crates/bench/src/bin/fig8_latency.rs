//! Regenerates **Figure 8: Latency per Coherence Operation** (paper §6.2),
//! in nanoseconds, per workload and network.

use macrochip::prelude::*;
use macrochip::report::{fmt, Table};
use macrochip_bench::{coherent_grid, find_run, workload_order};

fn main() {
    let runs = coherent_grid();
    let workloads = workload_order(&runs);

    let mut header = vec!["Workload".to_string()];
    header.extend(NetworkKind::ALL.iter().map(|k| k.name().to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for w in &workloads {
        let mut row = vec![w.clone()];
        for kind in NetworkKind::ALL {
            let run = find_run(&runs, w, kind).expect("grid is complete");
            row.push(fmt(run.mean_op_latency.as_ns_f64(), 1));
        }
        table.row_owned(row);
    }

    println!("Figure 8: Latency per Coherence Operation (ns)\n");
    println!("{}", table.to_text());

    // Paper: the p2p network stays below ~54 ns on applications and
    // ~100 ns on synthetics.
    let apps = [
        "Radix",
        "Barnes",
        "Blackscholes",
        "Densities",
        "Forces",
        "Swaptions",
    ];
    let mut p2p_app_max: f64 = 0.0;
    let mut p2p_synth_max: f64 = 0.0;
    for w in &workloads {
        let run = find_run(&runs, w, NetworkKind::PointToPoint).expect("run");
        let lat = run.mean_op_latency.as_ns_f64();
        if apps.contains(&w.as_str()) {
            p2p_app_max = p2p_app_max.max(lat);
        } else {
            p2p_synth_max = p2p_synth_max.max(lat);
        }
    }
    println!("P2P max latency on applications: {p2p_app_max:.1} ns (paper: 54 ns)");
    println!("P2P max latency on synthetics:   {p2p_synth_max:.1} ns (paper: 100 ns)");

    let path = macrochip_bench::results_dir().join("fig8_latency.csv");
    std::fs::write(&path, table.to_csv()).expect("write fig8 csv");
    println!("\nwrote {}", path.display());
}
