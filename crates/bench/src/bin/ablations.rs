//! Ablation studies of the design choices DESIGN.md §6 calls out —
//! beyond the paper's own evaluation.
//!
//! 1. Two-phase switch-tree count (the ALT fix, generalized).
//! 2. Token-ring burst limit (packets per token grab).
//! 3. Circuit-switched gateway concurrency.
//! 4. Memory latency (the paper's named future work).
//! 5. Blocking vs. trace-rate cores.
//! 6. Circuit batching (packets per circuit).
//! 7. Limited point-to-point forwarding policy (incl. adaptive).
//! 8. Token-ring WDM factor (why Corona's 64-way WDM cannot scale).
//! 9. Grid-size scaling of the analytic power/complexity models.

use coherence::EngineConfig;
use desim::Span;
use macrochip::experiment::run_coherent_with;
use macrochip::prelude::*;
use macrochip::report::{fmt, Table};
use macrochip::sweep::sustained_bandwidth_on;
use networks::{
    CircuitSwitchedNetwork, LimitedP2pNetwork, RoutingPolicy, TokenRingNetwork, TwoPhaseNetwork,
};

fn sweep_options() -> SweepOptions {
    SweepOptions {
        sim: Span::from_us(2),
        drain: Span::from_us(10),
        max_stalled: 4_000,
        seed: 5,
    }
}

fn two_phase_trees(config: &MacrochipConfig) -> Table {
    let mut t = Table::new(&["Switch trees per column", "Uniform sustained (% of peak)"]);
    for trees in 1..=4usize {
        let f = sustained_bandwidth_on(
            || {
                Box::new(TwoPhaseNetwork::with_trees(
                    MacrochipConfig::scaled(),
                    trees,
                ))
            },
            Pattern::Uniform,
            config,
            sweep_options(),
            0.01,
        );
        t.row_owned(vec![trees.to_string(), fmt(f * 100.0, 1)]);
    }
    t
}

fn token_burst(config: &MacrochipConfig) -> Table {
    let mut t = Table::new(&["Token burst limit", "Uniform sustained (% of peak)"]);
    for burst in [1usize, 2, 4, 8, 16] {
        let f = sustained_bandwidth_on(
            || {
                Box::new(TokenRingNetwork::with_burst(
                    MacrochipConfig::scaled(),
                    burst,
                ))
            },
            Pattern::Uniform,
            config,
            sweep_options(),
            0.01,
        );
        t.row_owned(vec![burst.to_string(), fmt(f * 100.0, 1)]);
    }
    t
}

fn circuit_gateways(config: &MacrochipConfig) -> Table {
    let mut t = Table::new(&["Gateway circuits", "Uniform sustained (% of peak)"]);
    for limit in [4usize, 8, 16, 32] {
        let f = sustained_bandwidth_on(
            || {
                Box::new(CircuitSwitchedNetwork::with_gateway_limit(
                    MacrochipConfig::scaled(),
                    limit,
                ))
            },
            Pattern::Uniform,
            config,
            sweep_options(),
            0.005,
        );
        t.row_owned(vec![limit.to_string(), fmt(f * 100.0, 2)]);
    }
    t
}

fn memory_latency(config: &MacrochipConfig) -> Table {
    // The paper's future work: "the performance impacts of different
    // memory technologies". Slower memory hides network differences.
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::LessSharing,
        ops_per_core: 25,
    };
    let mut t = Table::new(&[
        "Memory latency (ns)",
        "P2P op latency (ns)",
        "Circuit op latency (ns)",
        "P2P advantage",
    ]);
    for mem_ns in [15u64, 30, 60, 120] {
        let eng = EngineConfig {
            mem_latency: Span::from_ns(mem_ns),
            ..EngineConfig::default()
        };
        let p2p = run_coherent_with(NetworkKind::PointToPoint, &spec, config, eng, 3);
        let circ = run_coherent_with(NetworkKind::CircuitSwitched, &spec, config, eng, 3);
        t.row_owned(vec![
            mem_ns.to_string(),
            fmt(p2p.mean_op_latency.as_ns_f64(), 1),
            fmt(circ.mean_op_latency.as_ns_f64(), 1),
            format!(
                "{}x",
                fmt(circ.makespan.as_ns_f64() / p2p.makespan.as_ns_f64(), 2)
            ),
        ]);
    }
    t
}

fn core_model(config: &MacrochipConfig) -> Table {
    let spec = WorkloadSpec::Synthetic {
        pattern: Pattern::Uniform,
        mix: SharingMix::LessSharing,
        ops_per_core: 25,
    };
    let mut t = Table::new(&["Core model", "Network", "Makespan (us)", "Op latency (ns)"]);
    for (label, blocking) in [("blocking (paper)", true), ("trace-rate + MSHRs", false)] {
        for kind in [NetworkKind::PointToPoint, NetworkKind::CircuitSwitched] {
            let eng = EngineConfig {
                blocking_cores: blocking,
                ..EngineConfig::default()
            };
            let run = run_coherent_with(kind, &spec, config, eng, 3);
            t.row_owned(vec![
                label.to_string(),
                kind.name().to_string(),
                fmt(run.makespan.as_ns_f64() / 1e3, 2),
                fmt(run.mean_op_latency.as_ns_f64(), 1),
            ]);
        }
    }
    t
}

fn circuit_batching(config: &MacrochipConfig) -> Table {
    // DESIGN.md §6: batching several cache lines per circuit amortizes
    // the setup round trip — the fix the paper's §4.5 design lacks.
    let mut t = Table::new(&["Packets per circuit", "Uniform sustained (% of peak)"]);
    for batch in [1usize, 2, 4, 8] {
        let f = sustained_bandwidth_on(
            || {
                Box::new(CircuitSwitchedNetwork::with_batching(
                    MacrochipConfig::scaled(),
                    16,
                    batch,
                ))
            },
            Pattern::Uniform,
            config,
            sweep_options(),
            0.005,
        );
        t.row_owned(vec![batch.to_string(), fmt(f * 100.0, 2)]);
    }
    t
}

fn routing_policy(config: &MacrochipConfig) -> Table {
    let mut t = Table::new(&["Forwarding policy", "Uniform sustained (% of peak)"]);
    for (name, policy) in [
        ("row-first (paper)", RoutingPolicy::RowFirst),
        ("column-first", RoutingPolicy::ColumnFirst),
        ("adaptive", RoutingPolicy::Adaptive),
    ] {
        let f = sustained_bandwidth_on(
            || {
                Box::new(LimitedP2pNetwork::with_policy(
                    MacrochipConfig::scaled(),
                    policy,
                ))
            },
            Pattern::Uniform,
            config,
            sweep_options(),
            0.01,
        );
        t.row_owned(vec![name.to_string(), fmt(f * 100.0, 1)]);
    }
    t
}

fn token_wdm() -> Table {
    // §4.4: the Corona adaptation reduced the WDM factor from 64 to 2 to
    // bound off-resonance modulator loss. Sweep the factor analytically.
    use photonics::units::Db;
    let mut t = Table::new(&[
        "WDM factor",
        "Ring pass-bys per wavelength",
        "Extra loss (dB)",
        "Laser power factor",
        "Laser power (W)",
    ]);
    for wdm in [2u64, 4, 8, 16, 64] {
        // A wavelength passes every site's modulator bank for its bundle:
        // 64 sites x wdm rings per waveguide.
        let passes = 64 * wdm;
        let loss = Db::new(0.1) * passes as f64;
        let factor = loss.linear_factor();
        let watts = 8_192.0 * factor / 1000.0;
        let show = |v: f64, digits: usize| {
            if v > 1e4 {
                format!("{v:.2e}")
            } else {
                fmt(v, digits)
            }
        };
        t.row_owned(vec![
            wdm.to_string(),
            passes.to_string(),
            fmt(loss.value(), 1),
            format!("{}x", show(factor, 1)),
            show(watts, 1),
        ]);
    }
    t
}

fn grid_scaling() -> Table {
    // Analytic Tables 5/6 scaling with macrochip size.
    use photonics::geometry::Layout;
    use photonics::inventory::{ComponentCounts, NetworkId};
    use photonics::power::NetworkPower;
    let mut t = Table::new(&[
        "Grid",
        "P2P Tx",
        "P2P Wgs",
        "P2P laser (W)",
        "Token laser (W)",
    ]);
    for side in [4usize, 8, 16] {
        let layout = Layout::new(side, 2.5, 0.1);
        let p2p = ComponentCounts::for_network(NetworkId::PointToPoint, &layout);
        let p2p_w = NetworkPower::for_network(NetworkId::PointToPoint, &layout);
        let tok_w = NetworkPower::for_network(NetworkId::TokenRing, &layout);
        t.row_owned(vec![
            format!("{side}x{side}"),
            p2p.transmitters.to_string(),
            p2p.waveguides.to_string(),
            fmt(p2p_w.laser.watts(), 1),
            fmt(tok_w.laser.watts(), 1),
        ]);
    }
    t
}

fn main() {
    let config = MacrochipConfig::scaled();
    let dir = macrochip_bench::results_dir();

    let sections: Vec<(&str, Table)> = vec![
        (
            "Ablation 1: two-phase switch trees per column",
            two_phase_trees(&config),
        ),
        ("Ablation 2: token-ring burst limit", token_burst(&config)),
        (
            "Ablation 3: circuit-switched gateway concurrency",
            circuit_gateways(&config),
        ),
        (
            "Ablation 4: memory latency (paper future work)",
            memory_latency(&config),
        ),
        (
            "Ablation 5: blocking vs trace-rate cores",
            core_model(&config),
        ),
        (
            "Ablation 6: circuit batching (packets per circuit)",
            circuit_batching(&config),
        ),
        (
            "Ablation 7: limited p2p forwarding policy",
            routing_policy(&config),
        ),
        (
            "Ablation 8: token-ring WDM factor (analytic, paper's 64 -> 2 reduction)",
            token_wdm(),
        ),
        ("Ablation 9: grid scaling (analytic)", grid_scaling()),
    ];
    let mut all_csv = String::new();
    for (title, table) in &sections {
        println!("{title}\n\n{}", table.to_text());
        all_csv.push_str(&format!("# {title}\n{}\n", table.to_csv()));
    }
    std::fs::write(dir.join("ablations.csv"), all_csv).expect("write ablations.csv");
    println!("wrote {}", dir.join("ablations.csv").display());
}
