//! Regenerates **Figure 6: Latency vs. Offered Load for Four Message
//! Patterns** (paper §6.1): five networks × four synthetic patterns, a
//! series of (offered load, mean latency) points each.
//!
//! The paper reads the maximum sustainable bandwidth off each curve's
//! vertical asymptote; this binary prints the measured saturation point
//! next to the paper's observation.
//!
//! Environment: `MACROCHIP_FAST=1` shrinks the simulation window;
//! `--jobs <N>` (or `MACROCHIP_JOBS=N`) shards the (pattern × network)
//! curves across N workers — the printed curves and the CSV are
//! byte-identical to a serial run.

use desim::Span;
use macrochip::campaign::run_indexed;
use macrochip::prelude::*;
use macrochip::report::fmt;
use macrochip::sweep::{figure6_loads, latency_vs_load, sustained_bandwidth};
use std::fmt::Write as _;

/// The paper's §6.1 sustained-bandwidth observations on uniform random.
fn paper_uniform_sustained(kind: NetworkKind) -> Option<f64> {
    match kind {
        NetworkKind::PointToPoint => Some(0.95),
        NetworkKind::TokenRing => Some(0.40),
        NetworkKind::LimitedPointToPoint => Some(0.47),
        NetworkKind::CircuitSwitched => Some(0.025),
        NetworkKind::TwoPhase => Some(0.075),
        NetworkKind::TwoPhaseAlt | NetworkKind::Hierarchical => None,
    }
}

fn main() {
    let config = MacrochipConfig::scaled();
    let options = if macrochip_bench::fast_mode() {
        SweepOptions {
            sim: Span::from_us(1),
            drain: Span::from_us(5),
            ..SweepOptions::default()
        }
    } else {
        SweepOptions {
            sim: Span::from_us(3),
            drain: Span::from_us(15),
            ..SweepOptions::default()
        }
    };

    let mut csv = String::from("pattern,network,offered_pct,mean_latency_ns,p99_latency_ns,delivered_bytes_per_ns_per_site,saturated\n");

    // One curve per (pattern, network): shard the curves across workers,
    // then print and serialize them in figure order.
    let curves: Vec<(Pattern, NetworkKind)> = Pattern::FIGURE6
        .iter()
        .flat_map(|&pattern| {
            NetworkKind::FIGURE6
                .iter()
                .map(move |&kind| (pattern, kind))
        })
        .collect();
    let jobs = macrochip_bench::CampaignEnv::detect().jobs;
    let measured = run_indexed(&curves, jobs, |_, &(pattern, kind)| {
        latency_vs_load(kind, pattern, &figure6_loads(pattern), &config, options)
    });

    let mut last_pattern = None;
    for (&(pattern, kind), points) in curves.iter().zip(&measured) {
        if last_pattern != Some(pattern) {
            println!("== {pattern} ==");
            last_pattern = Some(pattern);
        }
        {
            print!("  {:<24}", kind.name());
            for p in points {
                if p.saturated {
                    print!(" {:>5.1}%:SAT", p.offered * 100.0);
                } else {
                    print!(" {:>5.1}%:{:<6.1}", p.offered * 100.0, p.mean_latency_ns);
                }
                let _ = writeln!(
                    csv,
                    "{},{},{},{},{},{},{}",
                    pattern.name(),
                    kind.name(),
                    fmt(p.offered * 100.0, 1),
                    fmt(p.mean_latency_ns, 2),
                    fmt(p.p99_latency_ns, 2),
                    fmt(p.delivered_bytes_per_ns_per_site, 2),
                    p.saturated,
                );
            }
            println!();
        }
    }

    println!("\nMaximum sustainable bandwidth on Uniform (measured vs. paper):");
    let sustained = run_indexed(&NetworkKind::FIGURE6, jobs, |_, &kind| {
        sustained_bandwidth(kind, Pattern::Uniform, &config, options, 0.01)
    });
    for (&kind, &measured) in NetworkKind::FIGURE6.iter().zip(&sustained) {
        let paper = paper_uniform_sustained(kind)
            .map(|f| format!("{:.1}%", f * 100.0))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "  {:<24} measured {:>5.1}%   paper {}",
            kind.name(),
            measured * 100.0,
            paper
        );
    }

    let path = macrochip_bench::results_dir().join("fig6_latency_load.csv");
    std::fs::write(&path, csv).expect("write fig6 csv");
    println!("\nwrote {}", path.display());
}
