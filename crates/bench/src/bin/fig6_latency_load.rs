//! Regenerates **Figure 6: Latency vs. Offered Load for Four Message
//! Patterns** (paper §6.1): five networks × four synthetic patterns, a
//! series of (offered load, mean latency) points each.
//!
//! The paper reads the maximum sustainable bandwidth off each curve's
//! vertical asymptote; this binary prints the measured saturation point
//! next to the paper's observation.
//!
//! Environment: `MACROCHIP_FAST=1` shrinks the simulation window.

use desim::Span;
use macrochip::prelude::*;
use macrochip::report::fmt;
use macrochip::sweep::{figure6_loads, latency_vs_load, sustained_bandwidth};
use std::fmt::Write as _;

/// The paper's §6.1 sustained-bandwidth observations on uniform random.
fn paper_uniform_sustained(kind: NetworkKind) -> Option<f64> {
    match kind {
        NetworkKind::PointToPoint => Some(0.95),
        NetworkKind::TokenRing => Some(0.40),
        NetworkKind::LimitedPointToPoint => Some(0.47),
        NetworkKind::CircuitSwitched => Some(0.025),
        NetworkKind::TwoPhase => Some(0.075),
        NetworkKind::TwoPhaseAlt => None,
    }
}

fn main() {
    let config = MacrochipConfig::scaled();
    let options = if macrochip_bench::fast_mode() {
        SweepOptions {
            sim: Span::from_us(1),
            drain: Span::from_us(5),
            ..SweepOptions::default()
        }
    } else {
        SweepOptions {
            sim: Span::from_us(3),
            drain: Span::from_us(15),
            ..SweepOptions::default()
        }
    };

    let mut csv = String::from("pattern,network,offered_pct,mean_latency_ns,p99_latency_ns,delivered_bytes_per_ns_per_site,saturated\n");

    for pattern in Pattern::FIGURE6 {
        println!("== {pattern} ==");
        for kind in NetworkKind::FIGURE6 {
            let loads = figure6_loads(pattern);
            let points = latency_vs_load(kind, pattern, &loads, &config, options);
            print!("  {:<24}", kind.name());
            for p in &points {
                if p.saturated {
                    print!(" {:>5.1}%:SAT", p.offered * 100.0);
                } else {
                    print!(" {:>5.1}%:{:<6.1}", p.offered * 100.0, p.mean_latency_ns);
                }
                let _ = writeln!(
                    csv,
                    "{},{},{},{},{},{},{}",
                    pattern.name(),
                    kind.name(),
                    fmt(p.offered * 100.0, 1),
                    fmt(p.mean_latency_ns, 2),
                    fmt(p.p99_latency_ns, 2),
                    fmt(p.delivered_bytes_per_ns_per_site, 2),
                    p.saturated,
                );
            }
            println!();
        }
    }

    println!("\nMaximum sustainable bandwidth on Uniform (measured vs. paper):");
    for kind in NetworkKind::FIGURE6 {
        let measured = sustained_bandwidth(kind, Pattern::Uniform, &config, options, 0.01);
        let paper = paper_uniform_sustained(kind)
            .map(|f| format!("{:.1}%", f * 100.0))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "  {:<24} measured {:>5.1}%   paper {}",
            kind.name(),
            measured * 100.0,
            paper
        );
    }

    let path = macrochip_bench::results_dir().join("fig6_latency_load.csv");
    std::fs::write(&path, csv).expect("write fig6 csv");
    println!("\nwrote {}", path.display());
}
