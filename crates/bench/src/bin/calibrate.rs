//! Quick calibration: sustained uniform bandwidth per network vs. the
//! paper's Figure 6 observations (p2p ~95%, limited ~47%, token ~40%,
//! two-phase ~7.5%, circuit ~2.5%).

use desim::Span;
use macrochip::prelude::*;

fn main() {
    let config = MacrochipConfig::scaled();
    let options = SweepOptions {
        sim: Span::from_us(2),
        drain: Span::from_us(10),
        max_stalled: 4_000,
        seed: 1,
    };
    for kind in NetworkKind::FIGURE6 {
        let start = std::time::Instant::now();
        let f =
            macrochip::sweep::sustained_bandwidth(kind, Pattern::Uniform, &config, options, 0.02);
        println!(
            "{:<25} uniform sustained: {:>5.1}%   ({:.1}s)",
            kind.name(),
            f * 100.0,
            start.elapsed().as_secs_f64()
        );
    }
}
