//! Sensitivity studies on the paper's photonic assumptions:
//!
//! 1. **Ring tuning vs. thermal spread** — the paper budgets 0.1 mW per
//!    ring (§2), which holds a ring against ~1 K. What happens at 2–10 K?
//! 2. **Waveguide-crossing crosstalk** — the paper assumes crossings are
//!    free on the circuit-switched torus (§4.5). What do the measured
//!    figures from its own reference \[7\] imply?

use macrochip::report::{fmt, Table};
use photonics::crosstalk::{torus_worst_case_crossings, CrossingModel};
use photonics::geometry::Layout;
use photonics::inventory::NetworkId;
use photonics::power::NetworkPower;
use photonics::tuning::TuningModel;

fn tuning_table() -> Table {
    let layout = Layout::macrochip();
    let model = TuningModel::silicon();
    let mut t = Table::new(&[
        "Avg thermal offset (K)",
        "P2P tuning (W)",
        "Token-Ring tuning (W)",
        "P2P laser (W)",
        "Token laser (W)",
    ]);
    for dk in [0.5, 1.0, 2.0, 5.0, 10.0] {
        t.row_owned(vec![
            fmt(dk, 1),
            fmt(
                model
                    .network_tuning(NetworkId::PointToPoint, &layout, dk)
                    .watts(),
                2,
            ),
            fmt(
                model
                    .network_tuning(NetworkId::TokenRing, &layout, dk)
                    .watts(),
                1,
            ),
            fmt(
                NetworkPower::for_network(NetworkId::PointToPoint, &layout)
                    .laser
                    .watts(),
                1,
            ),
            fmt(
                NetworkPower::for_network(NetworkId::TokenRing, &layout)
                    .laser
                    .watts(),
                1,
            ),
        ]);
    }
    t
}

fn crosstalk_table() -> Table {
    let mut t = Table::new(&[
        "Crossings",
        "Insertion loss (optimized)",
        "Crosstalk penalty",
        "Total penalty",
    ]);
    let m = CrossingModel::bogaerts_optimized();
    for crossings in [1u32, 4, 8, 16, 32, 64] {
        let loss = m.path_loss(crossings);
        let (xt, total) = match (m.power_penalty(crossings), m.total_penalty(crossings)) {
            (Some(p), Some(tp)) => (p.to_string(), tp.to_string()),
            _ => ("eye closed".to_string(), "eye closed".to_string()),
        };
        t.row_owned(vec![crossings.to_string(), loss.to_string(), xt, total]);
    }
    t
}

fn main() {
    let layout = Layout::macrochip();
    let model = TuningModel::silicon();

    println!(
        "Sensitivity 1: ring tuning power vs. thermal spread (paper budgets 0.1 mW/ring = 1 K)\n"
    );
    println!("{}", tuning_table().to_text());
    for id in [NetworkId::PointToPoint, NetworkId::TokenRing] {
        println!(
            "  {}: tuning power equals laser power at a {:.1} K average offset",
            id.name(),
            model.break_even_kelvin(id, &layout)
        );
    }

    println!("\nSensitivity 2: waveguide-crossing penalties (the paper's §4.5 'negligible' assumption)\n");
    println!("{}", crosstalk_table().to_text());
    let worst = torus_worst_case_crossings(8, 64);
    println!(
        "  a worst-case adapted-torus path crossing every waveguide bundle would see \
         {worst} crossings ({} of loss) — the two-layer substrate exists precisely \
         to avoid this.",
        CrossingModel::bogaerts_optimized().path_loss(worst)
    );

    let dir = macrochip_bench::results_dir();
    std::fs::write(dir.join("sensitivity_tuning.csv"), tuning_table().to_csv())
        .expect("write tuning csv");
    std::fs::write(
        dir.join("sensitivity_crosstalk.csv"),
        crosstalk_table().to_csv(),
    )
    .expect("write crosstalk csv");
    println!("\nwrote {}/sensitivity_*.csv", dir.display());
}
