//! Regenerates **Table 5: Network Optical Power** (paper §6.3), with the
//! paper's published values alongside for comparison.

use macrochip::report::{fmt, Table};
use photonics::geometry::Layout;
use photonics::inventory::NetworkId;
use photonics::power::NetworkPower;

/// The paper's Table 5 rows: (network, loss factor, laser watts).
const PAPER: [(NetworkId, f64, f64); 7] = [
    (NetworkId::TokenRing, 19.0, 155.0),
    (NetworkId::PointToPoint, 1.0, 8.0),
    (NetworkId::CircuitSwitched, 30.0, 245.0),
    (NetworkId::LimitedPointToPoint, 1.0, 8.0),
    (NetworkId::TwoPhaseData, 5.0, 41.0),
    (NetworkId::TwoPhaseDataAlt, 4.0, 65.5),
    (NetworkId::TwoPhaseArbitration, 8.0, 1.0),
];

fn main() {
    let layout = Layout::macrochip();
    let mut table = Table::new(&[
        "Network Type",
        "Loss Factor",
        "Laser Power (W)",
        "Paper Factor",
        "Paper Power (W)",
    ]);
    for (id, paper_factor, paper_watts) in PAPER {
        let row = NetworkPower::for_network(id, &layout);
        table.row_owned(vec![
            id.name().to_string(),
            format!("{}x", fmt(row.loss_factor, 0)),
            fmt(row.laser.watts(), 1),
            format!("{}x", fmt(paper_factor, 0)),
            fmt(paper_watts, 1),
        ]);
    }
    println!("Table 5: Network Optical Power (reproduced vs. paper)\n");
    println!("{}", table.to_text());
    let path = macrochip_bench::results_dir().join("table5_power.csv");
    std::fs::write(&path, table.to_csv()).expect("write table5_power.csv");
    println!("wrote {}", path.display());
}
