//! Shared support for the table/figure regeneration binaries.
//!
//! Every binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §5). The coherent-run grid behind Figures 7,
//! 8, 9 and 10 is expensive, so it is computed once and cached as CSV in
//! the results directory; the figure binaries share it.

use macrochip::prelude::*;
use std::fs;
use std::path::PathBuf;

/// Where regenerated tables and CSV series are written. Override with
/// `MACROCHIP_RESULTS`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("MACROCHIP_RESULTS").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("cannot create results directory");
    path
}

/// Misses per core for the synthetic coherent workloads. Override with
/// `MACROCHIP_OPS` to trade fidelity for speed.
pub fn ops_per_core() -> u32 {
    std::env::var("MACROCHIP_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150)
}

/// `MACROCHIP_FAST=1` shrinks the Figure 6 sweep windows for smoke runs.
pub fn fast_mode() -> bool {
    std::env::var("MACROCHIP_FAST").is_ok_and(|v| v == "1")
}

/// The campaign-engine knobs every regeneration binary shares, parsed
/// once from the command line and environment.
///
/// This is the single home of the `--jobs`/`MACROCHIP_JOBS`,
/// `--no-cache`/`MACROCHIP_NO_CACHE` and `MACROCHIP_CACHE_DIR` parsing —
/// the binaries (and [`jobs`]/[`no_cache`] below) all go through it, and
/// `run_all` forwards the resolved values to its children so a child
/// never re-derives them differently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignEnv {
    /// Worker threads (1 = serial, 0 = one per hardware thread). Results
    /// come back in canonical order whatever the value, so every
    /// regenerated artifact is byte-identical to a serial run.
    pub jobs: usize,
    /// Resimulate instead of loading cached results.
    pub no_cache: bool,
    /// Where the campaign result cache lives (`MACROCHIP_CACHE_DIR`,
    /// default `results/cache`).
    pub cache_dir: PathBuf,
}

impl CampaignEnv {
    /// Reads the process's command line and environment.
    pub fn detect() -> CampaignEnv {
        let args: Vec<String> = std::env::args().collect();
        CampaignEnv::from_parts(&args, |name| std::env::var(name).ok())
    }

    /// The parse itself, injectable for tests: `--jobs <N>` beats
    /// `MACROCHIP_JOBS`, `--no-cache` or `MACROCHIP_NO_CACHE=1` disables
    /// the cache, and the cache directory resolves exactly like the
    /// campaign engine's [`ResultCache::default_dir`].
    pub fn from_parts(args: &[String], env: impl Fn(&str) -> Option<String>) -> CampaignEnv {
        let jobs = args
            .iter()
            .position(|a| a == "--jobs")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .or_else(|| env("MACROCHIP_JOBS").and_then(|v| v.parse().ok()))
            .unwrap_or(1);
        let no_cache = args.iter().any(|a| a == "--no-cache")
            || env("MACROCHIP_NO_CACHE").is_some_and(|v| v == "1");
        let cache_dir = ["MACROCHIP_CACHE_DIR", "MACROCHIP_CACHE"]
            .iter()
            .find_map(|name| env(name).filter(|v| !v.is_empty()))
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results").join("cache"));
        CampaignEnv {
            jobs,
            no_cache,
            cache_dir,
        }
    }
}

/// Worker threads for the parallelizable grids — see [`CampaignEnv`].
pub fn jobs() -> usize {
    CampaignEnv::detect().jobs
}

/// `--no-cache` / `MACROCHIP_NO_CACHE=1` force grids to resimulate
/// instead of loading cached results — see [`CampaignEnv`].
pub fn no_cache() -> bool {
    CampaignEnv::detect().no_cache
}

/// The seven simulated architectures, figure order (the paper's six
/// plus the post-paper hierarchical network).
pub fn all_networks() -> [NetworkKind; 7] {
    NetworkKind::ALL
}

/// Parses a network display name back into its kind.
pub fn network_from_name(name: &str) -> Option<NetworkKind> {
    NetworkKind::ALL.into_iter().find(|k| k.name() == name)
}

/// Serializes coherent runs to CSV (for caching and plotting).
pub fn runs_to_csv(runs: &[CoherentRun]) -> String {
    let mut out = String::from(
        "network,workload,makespan_ps,mean_op_latency_ps,ops,delivered_bytes,routed_bytes,packets\n",
    );
    for r in runs {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.network.name(),
            r.workload,
            r.makespan.as_ps(),
            r.mean_op_latency.as_ps(),
            r.ops_completed,
            r.delivered_bytes,
            r.routed_bytes,
            r.packets,
        ));
    }
    out
}

/// Parses the CSV produced by [`runs_to_csv`].
pub fn runs_from_csv(csv: &str) -> Option<Vec<CoherentRun>> {
    let mut runs = Vec::new();
    for line in csv.lines().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 8 {
            return None;
        }
        runs.push(CoherentRun {
            network: network_from_name(f[0])?,
            workload: f[1].to_string(),
            makespan: desim::Span::from_ps(f[2].parse().ok()?),
            mean_op_latency: desim::Span::from_ps(f[3].parse().ok()?),
            ops_completed: f[4].parse().ok()?,
            delivered_bytes: f[5].parse().ok()?,
            routed_bytes: f[6].parse().ok()?,
            packets: f[7].parse().ok()?,
        });
    }
    Some(runs)
}

/// Runs (or loads from cache) the full coherent grid behind Figures 7, 8,
/// 9 and 10: every workload of the Figure 7 suite on every network.
pub fn coherent_grid() -> Vec<CoherentRun> {
    let ops = ops_per_core();
    let campaign_env = CampaignEnv::detect();
    let cache = results_dir().join(format!("coherent_runs_ops{ops}.csv"));
    if !campaign_env.no_cache {
        if let Ok(csv) = fs::read_to_string(&cache) {
            if let Some(runs) = runs_from_csv(&csv) {
                if !runs.is_empty() {
                    eprintln!(
                        "[coherent grid] loaded {} cached runs from {}",
                        runs.len(),
                        cache.display()
                    );
                    return runs;
                }
            }
        }
    }
    let config = MacrochipConfig::scaled();
    let suite = WorkloadSpec::figure7_suite(ops);
    // Every (workload, network) cell is an independent closed-loop
    // simulation; shard them across `jobs()` workers. The merge brings
    // the runs back in grid order, so the CSV (and every figure built
    // from it) is byte-identical to a serial run.
    let cells: Vec<(WorkloadSpec, NetworkKind)> = suite
        .iter()
        .flat_map(|spec| {
            all_networks()
                .into_iter()
                .map(move |kind| (spec.clone(), kind))
        })
        .collect();
    let runs = run_indexed(&cells, campaign_env.jobs, |_, (spec, kind)| {
        let start = std::time::Instant::now();
        let run = run_coherent(*kind, spec, &config, 0xFEED);
        eprintln!(
            "[coherent grid] {} on {}: makespan {:.2} us, {} ops, {:.1}s wall",
            spec.name(),
            kind.name(),
            run.makespan.as_ns_f64() / 1e3,
            run.ops_completed,
            start.elapsed().as_secs_f64()
        );
        run
    });
    fs::write(&cache, runs_to_csv(&runs)).expect("cannot write results cache");
    runs
}

/// Workload column order of Figures 7/8/10.
pub fn workload_order(runs: &[CoherentRun]) -> Vec<String> {
    let mut names = Vec::new();
    for r in runs {
        if !names.contains(&r.workload) {
            names.push(r.workload.clone());
        }
    }
    names
}

/// Finds the run of (workload, network) in the grid.
pub fn find_run<'a>(
    runs: &'a [CoherentRun],
    workload: &str,
    kind: NetworkKind,
) -> Option<&'a CoherentRun> {
    runs.iter()
        .find(|r| r.workload == workload && r.network == kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Span;

    #[test]
    fn csv_round_trips() {
        let runs = vec![CoherentRun {
            network: NetworkKind::TokenRing,
            workload: "Radix".to_string(),
            makespan: Span::from_ns(1234),
            mean_op_latency: Span::from_ns(56),
            ops_completed: 99,
            delivered_bytes: 1_000,
            routed_bytes: 0,
            packets: 42,
        }];
        let back = runs_from_csv(&runs_to_csv(&runs)).expect("parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].workload, "Radix");
        assert_eq!(back[0].network, NetworkKind::TokenRing);
        assert_eq!(back[0].makespan, Span::from_ns(1234));
    }

    #[test]
    fn network_names_round_trip() {
        for k in NetworkKind::ALL {
            assert_eq!(network_from_name(k.name()), Some(k));
        }
        assert_eq!(network_from_name("bogus"), None);
    }

    #[test]
    fn malformed_csv_rejected() {
        assert!(runs_from_csv("header\nnot,enough,fields").is_none());
    }

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn campaign_env_prefers_args_over_environment() {
        let e = CampaignEnv::from_parts(
            &strings(&["bin", "--jobs", "4", "--no-cache"]),
            |n| match n {
                "MACROCHIP_JOBS" => Some("9".into()),
                "MACROCHIP_CACHE_DIR" => Some("ci-cache".into()),
                _ => None,
            },
        );
        assert_eq!(e.jobs, 4);
        assert!(e.no_cache);
        assert_eq!(e.cache_dir, PathBuf::from("ci-cache"));
    }

    #[test]
    fn campaign_env_falls_back_to_environment_then_defaults() {
        let e = CampaignEnv::from_parts(&strings(&["bin"]), |n| {
            (n == "MACROCHIP_JOBS").then(|| "9".into())
        });
        assert_eq!(e.jobs, 9);
        assert!(!e.no_cache);
        assert_eq!(e.cache_dir, PathBuf::from("results").join("cache"));

        let e = CampaignEnv::from_parts(&strings(&["bin"]), |_| None);
        assert_eq!(e.jobs, 1);
    }

    #[test]
    fn campaign_env_honors_legacy_cache_variable() {
        let e = CampaignEnv::from_parts(&strings(&["bin"]), |n| {
            (n == "MACROCHIP_CACHE").then(|| "old-dir".into())
        });
        assert_eq!(e.cache_dir, PathBuf::from("old-dir"));
        // The new name wins when both are set.
        let e = CampaignEnv::from_parts(&strings(&["bin"]), |n| match n {
            "MACROCHIP_CACHE_DIR" => Some("new-dir".into()),
            "MACROCHIP_CACHE" => Some("old-dir".into()),
            _ => None,
        });
        assert_eq!(e.cache_dir, PathBuf::from("new-dir"));
    }
}
