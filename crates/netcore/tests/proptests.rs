//! Property-based tests of the shared network abstractions.

use desim::{Span, Time};
use netcore::{Grid, MessageKind, Packet, PacketId, SiteId, TxChannel};
use proptest::prelude::*;

fn packet(id: u64, bytes: u32) -> Packet {
    Packet::new(
        PacketId(id),
        SiteId::from_index(0),
        SiteId::from_index(1),
        bytes,
        MessageKind::Data,
        Time::ZERO,
    )
}

proptest! {
    /// A channel transmits packets in FIFO order with non-overlapping
    /// serialization windows whose lengths match bytes/bandwidth.
    #[test]
    fn channel_serializes_fifo_without_overlap(
        sizes in proptest::collection::vec(1u32..512, 1..16),
        bw in 1u32..64,
    ) {
        let bw = bw as f64;
        let mut ch = TxChannel::new(bw, 64);
        for (i, &s) in sizes.iter().enumerate() {
            ch.try_enqueue(packet(i as u64, s), s).expect("capacity 64");
        }
        let mut now = Time::ZERO;
        let mut order = 0u64;
        while let Some((p, finish)) = ch.begin_if_ready(now) {
            prop_assert_eq!(p.id, PacketId(order));
            let expect = Span::from_ns_f64(p.bytes as f64 / bw);
            prop_assert_eq!(finish - now, expect);
            // Starting again before `finish` must fail.
            if finish > now + Span::from_ps(1) {
                let mid = now + Span::from_ps(1);
                prop_assert!(ch.begin_if_ready(mid).is_none());
            }
            now = finish;
            order += 1;
        }
        prop_assert_eq!(order, sizes.len() as u64);
    }

    /// Capacity is enforced exactly: `cap` packets fit, the next bounces.
    #[test]
    fn channel_capacity_exact(cap in 1usize..32) {
        let mut ch = TxChannel::new(1.0, cap);
        for i in 0..cap {
            prop_assert!(ch.try_enqueue(packet(i as u64, 8), 8).is_ok());
        }
        prop_assert!(ch.is_full());
        prop_assert!(ch.try_enqueue(packet(99, 8), 8).is_err());
    }

    /// Grid coordinates round-trip and peers are symmetric.
    #[test]
    fn grid_coords_round_trip(side in 2usize..16, a in 0usize..255, b in 0usize..255) {
        let g = Grid::new(side);
        let a = SiteId::from_index(a % g.sites());
        let b = SiteId::from_index(b % g.sites());
        let (x, y) = g.coord(a);
        prop_assert_eq!(g.site(x, y), a);
        prop_assert_eq!(g.are_peers(a, b), g.are_peers(b, a));
        if a != b {
            let same_row_or_col = g.x(a) == g.x(b) || g.y(a) == g.y(b);
            prop_assert_eq!(g.are_peers(a, b), same_row_or_col);
        }
    }

    /// Every site has exactly side-1 row peers and side-1 column peers,
    /// all distinct from itself.
    #[test]
    fn peer_counts(side in 2usize..12, idx in 0usize..143) {
        let g = Grid::new(side);
        let s = SiteId::from_index(idx % g.sites());
        let rows: Vec<_> = g.row_peers(s).collect();
        let cols: Vec<_> = g.col_peers(s).collect();
        prop_assert_eq!(rows.len(), side - 1);
        prop_assert_eq!(cols.len(), side - 1);
        prop_assert!(!rows.contains(&s));
        prop_assert!(!cols.contains(&s));
    }
}
