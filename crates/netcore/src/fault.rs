//! The fault vocabulary shared between the fault-injection subsystem and
//! the network implementations.
//!
//! The `faults` crate schedules faults; each network implements
//! [`Network::apply_fault`](crate::Network::apply_fault) to translate a
//! [`NetFault`] into its own degradation policy (spare wavelengths,
//! electronic re-route, token regeneration, circuit re-setup, requestor
//! masking). Keeping the vocabulary here lets the five networks stay
//! independent of the injection machinery.

use crate::{Packet, SiteId};

/// A structural fault applied to a network at a simulation instant.
///
/// Transient bit-error faults are *not* represented here: corruption is a
/// per-packet delivery-contract concern handled above the network by the
/// resilience wrapper, which sees every delivered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// A directed inter-site link (waveguide bundle) fails permanently
    /// (until a matching [`NetFault::LinkRepair`]).
    LinkKill { src: SiteId, dst: SiteId },
    /// A previously killed link is repaired to full bandwidth.
    LinkRepair { src: SiteId, dst: SiteId },
    /// A site loses part of its laser power budget: outgoing channels drop
    /// to half bandwidth (one of two wavelengths survives).
    LaserLoss { site: SiteId },
    /// A site's laser power budget is restored.
    LaserRestore { site: SiteId },
    /// An entire site (die) fails: it neither sources nor sinks traffic.
    SiteKill { site: SiteId },
}

impl NetFault {
    /// Stable kebab-case name used in trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            NetFault::LinkKill { .. } => "link-kill",
            NetFault::LinkRepair { .. } => "link-repair",
            NetFault::LaserLoss { .. } => "laser-loss",
            NetFault::LaserRestore { .. } => "laser-restore",
            NetFault::SiteKill { .. } => "site-kill",
        }
    }

    /// True for repair/restore events (recovery rather than degradation).
    pub fn is_recovery(self) -> bool {
        matches!(
            self,
            NetFault::LinkRepair { .. } | NetFault::LaserRestore { .. }
        )
    }

    /// The primary site the fault anchors to (trace lane).
    pub fn site(self) -> SiteId {
        match self {
            NetFault::LinkKill { src, .. } | NetFault::LinkRepair { src, .. } => src,
            NetFault::LaserLoss { site }
            | NetFault::LaserRestore { site }
            | NetFault::SiteKill { site } => site,
        }
    }

    /// The far end for link faults; the primary site otherwise.
    pub fn peer(self) -> SiteId {
        match self {
            NetFault::LinkKill { dst, .. } | NetFault::LinkRepair { dst, .. } => dst,
            other => other.site(),
        }
    }
}

/// What a network did with an applied fault.
#[derive(Debug, Default)]
pub struct FaultResponse {
    /// Short stable description of the degradation policy that ran
    /// (`"spare-wavelength"`, `"reroute"`, `"token-regen"`, …); empty when
    /// nothing happened.
    pub action: &'static str,
    /// True if the network has a policy for this fault kind. Unhandled
    /// faults are absorbed by the resilience wrapper instead.
    pub handled: bool,
    /// Packets evicted from internal queues by the fault; the wrapper
    /// decides whether each is retried or dropped.
    pub evicted: Vec<Packet>,
}

impl FaultResponse {
    /// A response saying the network has no policy for this fault.
    pub fn unhandled() -> FaultResponse {
        FaultResponse::default()
    }

    /// A response naming the degradation policy that was applied.
    pub fn handled(action: &'static str) -> FaultResponse {
        FaultResponse {
            action,
            handled: true,
            evicted: Vec::new(),
        }
    }

    /// Attaches evicted packets to the response.
    pub fn with_evicted(mut self, evicted: Vec<Packet>) -> FaultResponse {
        self.evicted = evicted;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_anchors_are_stable() {
        let a = SiteId::from_index(3);
        let b = SiteId::from_index(17);
        let kill = NetFault::LinkKill { src: a, dst: b };
        assert_eq!(kill.name(), "link-kill");
        assert_eq!(kill.site(), a);
        assert_eq!(kill.peer(), b);
        assert!(!kill.is_recovery());
        let repair = NetFault::LinkRepair { src: a, dst: b };
        assert!(repair.is_recovery());
        let die = NetFault::SiteKill { site: b };
        assert_eq!(die.site(), b);
        assert_eq!(die.peer(), b);
    }

    #[test]
    fn responses_carry_policy_and_evictions() {
        let r = FaultResponse::unhandled();
        assert!(!r.handled);
        assert!(r.evicted.is_empty());
        let r = FaultResponse::handled("spare-wavelength");
        assert!(r.handled);
        assert_eq!(r.action, "spare-wavelength");
    }
}
