//! Network-level statistics collection.

use crate::{MessageKind, Packet};
use desim::stats::{Counter, LatencyHistogram, Mean};
use desim::{Span, Time};

/// One phase of the end-to-end latency breakdown (paper Fig. 6 decomposed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Queued at the source before contending for the medium.
    Queueing,
    /// Waiting on arbitration / token / circuit setup.
    ArbWait,
    /// Putting bits on the wire.
    Serialization,
    /// Time of flight to the destination.
    Propagation,
}

impl Phase {
    /// All phases, in temporal order.
    pub const ALL: [Phase; 4] = [
        Phase::Queueing,
        Phase::ArbWait,
        Phase::Serialization,
        Phase::Propagation,
    ];

    /// Stable name used in metrics snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queueing => "queueing",
            Phase::ArbWait => "arb_wait",
            Phase::Serialization => "serialization",
            Phase::Propagation => "propagation",
        }
    }
}

/// Aggregate statistics of one network simulation.
///
/// Every architecture records the same measures so experiments can compare
/// them directly: accepted/delivered packet and byte counts, end-to-end
/// latency, electronic-router traffic (limited point-to-point) and wasted
/// arbitration slots (two-phase).
///
/// # Example
///
/// ```
/// use netcore::NetStats;
/// let s = NetStats::new();
/// assert_eq!(s.delivered_packets(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct NetStats {
    injected: Counter,
    rejected: Counter,
    dropped: Counter,
    delivered: Counter,
    delivered_bytes: Counter,
    routed_bytes: Counter,
    wasted_slots: Counter,
    latency: LatencyHistogram,
    data_latency: LatencyHistogram,
    control_latency: LatencyHistogram,
    /// Per-phase latency histograms, indexed like [`Phase::ALL`]; filled
    /// only for packets whose network stamped the phase boundaries.
    phase_latency: [LatencyHistogram; 4],
    per_source: Vec<Mean>,
    first_injection: Option<Time>,
    first_delivery: Option<Time>,
    last_delivery: Option<Time>,
}

impl NetStats {
    /// Creates an empty collector.
    pub fn new() -> NetStats {
        NetStats {
            injected: Counter::new(),
            rejected: Counter::new(),
            dropped: Counter::new(),
            delivered: Counter::new(),
            delivered_bytes: Counter::new(),
            routed_bytes: Counter::new(),
            wasted_slots: Counter::new(),
            latency: LatencyHistogram::new(),
            data_latency: LatencyHistogram::new(),
            control_latency: LatencyHistogram::new(),
            phase_latency: [
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
                LatencyHistogram::new(),
            ],
            per_source: Vec::new(),
            first_injection: None,
            first_delivery: None,
            last_delivery: None,
        }
    }

    /// Records a successful injection at simulation time `now`.
    pub fn on_inject(&mut self, now: Time) {
        self.injected.incr();
        if self.first_injection.is_none_or(|t| now < t) {
            self.first_injection = Some(now);
        }
    }

    /// Records a refused injection (backpressure).
    pub fn on_reject(&mut self) {
        self.rejected.incr();
    }

    /// Records a packet permanently dropped by a fault (dead destination,
    /// retry budget exhausted).
    pub fn on_drop(&mut self) {
        self.dropped.incr();
    }

    /// Records a delivery; the packet must carry its `delivered` stamp.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the packet has no delivery timestamp.
    pub fn on_deliver(&mut self, packet: &Packet) {
        debug_assert!(packet.is_delivered(), "recording undelivered packet");
        let at = packet.delivered.unwrap_or(packet.created);
        let lat = at.saturating_since(packet.created);
        self.delivered.incr();
        self.delivered_bytes.add(packet.bytes as u64);
        self.routed_bytes.add(packet.routed_bytes as u64);
        self.latency.record(lat);
        if packet.kind == MessageKind::Data {
            self.data_latency.record(lat);
        } else {
            self.control_latency.record(lat);
        }
        let phases = [
            packet.queueing_time(),
            packet.arb_wait_time(),
            packet.serialization_time(),
            packet.propagation_time(),
        ];
        for (hist, span) in self.phase_latency.iter_mut().zip(phases) {
            if let Some(span) = span {
                hist.record(span);
            }
        }
        let src = packet.src.index();
        if self.per_source.len() <= src {
            self.per_source.resize_with(src + 1, Mean::new);
        }
        self.per_source[src].record(lat.as_ns_f64());
        if self.first_delivery.is_none() {
            self.first_delivery = Some(at);
        }
        self.last_delivery = Some(self.last_delivery.map_or(at, |t| t.max(at)));
    }

    /// Records one wasted arbitration data slot (two-phase network).
    pub fn on_wasted_slot(&mut self) {
        self.wasted_slots.incr();
    }

    /// Packets accepted for injection.
    pub fn injected_packets(&self) -> u64 {
        self.injected.value()
    }

    /// Injection attempts refused by backpressure.
    pub fn rejected_packets(&self) -> u64 {
        self.rejected.value()
    }

    /// Packets permanently lost to faults.
    pub fn dropped_packets(&self) -> u64 {
        self.dropped.value()
    }

    /// Packets delivered end to end.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered.value()
    }

    /// Total bytes delivered.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes.value()
    }

    /// Bytes that crossed an electronic router.
    pub fn routed_bytes(&self) -> u64 {
        self.routed_bytes.value()
    }

    /// Wasted arbitration slots (two-phase only; zero elsewhere).
    pub fn wasted_slots(&self) -> u64 {
        self.wasted_slots.value()
    }

    /// Mean end-to-end packet latency.
    pub fn mean_latency(&self) -> Span {
        self.latency.mean()
    }

    /// End-to-end latency histogram over all packets.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Latency histogram over data packets only.
    pub fn data_latency(&self) -> &LatencyHistogram {
        &self.data_latency
    }

    /// Latency histogram over control-sized packets only.
    pub fn control_latency(&self) -> &LatencyHistogram {
        &self.control_latency
    }

    /// Latency histogram of one phase of the end-to-end breakdown.
    ///
    /// Phases are recorded per delivered packet when the network stamped
    /// the corresponding boundaries, so a phase's count can be lower than
    /// `delivered_packets()` on partially instrumented paths.
    pub fn phase_latency(&self, phase: Phase) -> &LatencyHistogram {
        let idx = Phase::ALL.iter().position(|&p| p == phase).unwrap();
        &self.phase_latency[idx]
    }

    /// Mean duration of each phase in ns, in [`Phase::ALL`] order; a
    /// compact per-phase breakdown for reports.
    pub fn phase_breakdown_ns(&self) -> [f64; 4] {
        [
            self.phase_latency[0].mean().as_ns_f64(),
            self.phase_latency[1].mean().as_ns_f64(),
            self.phase_latency[2].mean().as_ns_f64(),
            self.phase_latency[3].mean().as_ns_f64(),
        ]
    }

    /// Mean latency observed by each source site (index = site index).
    /// Sites that delivered nothing report zero.
    pub fn per_source_mean_latency_ns(&self) -> Vec<f64> {
        self.per_source.iter().map(Mean::mean).collect()
    }

    /// Number of sources that delivered at least one packet — the `n` of
    /// [`NetStats::jain_fairness`].
    ///
    /// A fault plan that kills a site silently shrinks the fairness
    /// population: the dead source stops delivering, drops out of the
    /// index, and `jain_fairness` can *rise* even though service got
    /// strictly worse. Reports should always publish this count next to
    /// the index so a shrinking population is visible.
    pub fn participating_sources(&self) -> usize {
        self.per_source.iter().filter(|m| m.count() > 0).count()
    }

    /// Jain's fairness index over the per-source mean latencies:
    /// `(Σx)² / (n·Σx²)`, 1.0 = perfectly fair, 1/n = maximally unfair.
    ///
    /// Sources with no deliveries are **excluded** — `n` is
    /// [`NetStats::participating_sources`], not the grid size — and the
    /// index returns 1.0 with fewer than two participating sources. Under
    /// a site-kill fault plan this means dead sources do not drag the
    /// index down; interpret the index together with
    /// `participating_sources()` to catch that case.
    pub fn jain_fairness(&self) -> f64 {
        let xs: Vec<f64> = self
            .per_source
            .iter()
            .filter(|m| m.count() > 0)
            .map(Mean::mean)
            .collect();
        if xs.len() < 2 {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        sum * sum / (xs.len() as f64 * sq)
    }

    /// Delivered throughput in bytes/ns.
    ///
    /// Window semantics: the rate is measured over the delivery window
    /// `first_delivery → last_delivery` when it is non-empty (two or more
    /// distinct delivery instants), which excludes the initial pipe-fill
    /// latency from steady-state throughput. A run with a single delivery
    /// instant — short fault-degraded runs often end that way — has an
    /// empty delivery window, so the rate falls back to the
    /// `first_injection → last_delivery` window instead of reporting a
    /// misleading 0.0. Returns zero only when nothing was delivered or no
    /// window has positive width.
    pub fn delivered_bytes_per_ns(&self) -> f64 {
        let window = match (self.first_delivery, self.last_delivery) {
            (Some(a), Some(b)) if b > a => Some(b.saturating_since(a)),
            (_, Some(b)) => self
                .first_injection
                .filter(|&f| b > f)
                .map(|f| b.saturating_since(f)),
            _ => None,
        };
        match window {
            Some(w) => self.delivered_bytes.value() as f64 / w.as_ns_f64(),
            None => 0.0,
        }
    }

    /// Delivered throughput in GB/s (1 byte/ns = 1 GB/s in the decimal
    /// units the paper uses); see [`NetStats::delivered_bytes_per_ns`]
    /// for the window semantics.
    pub fn throughput_gbps(&self) -> f64 {
        self.delivered_bytes_per_ns()
    }

    /// Instant of the first recorded injection, if any.
    pub fn first_injection(&self) -> Option<Time> {
        self.first_injection
    }

    /// Instant of the first delivery, if any.
    pub fn first_delivery(&self) -> Option<Time> {
        self.first_delivery
    }

    /// Instant of the most recent delivery, if any.
    pub fn last_delivery(&self) -> Option<Time> {
        self.last_delivery
    }
}

impl Default for NetStats {
    fn default() -> Self {
        NetStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PacketId, SiteId};

    fn delivered_packet(created_ns: u64, delivered_ns: u64, kind: MessageKind) -> Packet {
        let mut p = Packet::new(
            PacketId(created_ns),
            SiteId::from_index(0),
            SiteId::from_index(1),
            64,
            kind,
            Time::from_ns(created_ns),
        );
        p.delivered = Some(Time::from_ns(delivered_ns));
        p
    }

    #[test]
    fn records_latency_by_kind() {
        let mut s = NetStats::new();
        s.on_deliver(&delivered_packet(0, 10, MessageKind::Data));
        s.on_deliver(&delivered_packet(0, 30, MessageKind::Ack));
        assert_eq!(s.delivered_packets(), 2);
        assert_eq!(s.mean_latency(), Span::from_ns(20));
        assert_eq!(s.data_latency().count(), 1);
        assert_eq!(s.control_latency().count(), 1);
    }

    #[test]
    fn throughput_over_delivery_window() {
        let mut s = NetStats::new();
        s.on_deliver(&delivered_packet(0, 0, MessageKind::Data));
        s.on_deliver(&delivered_packet(0, 64, MessageKind::Data));
        // 128 bytes over 64 ns.
        assert!((s.delivered_bytes_per_ns() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_delivery_falls_back_to_the_injection_window() {
        // One delivery instant leaves the delivery window empty; the rate
        // must fall back to first_injection → last_delivery instead of
        // reporting zero (short fault-degraded runs end this way).
        let mut s = NetStats::new();
        s.on_inject(Time::from_ns(1));
        s.on_deliver(&delivered_packet(0, 5, MessageKind::Data));
        // 64 bytes over the 1 ns → 5 ns window.
        assert!((s.delivered_bytes_per_ns() - 16.0).abs() < 1e-12);
        assert_eq!(s.first_injection(), Some(Time::from_ns(1)));
    }

    #[test]
    fn zero_throughput_without_any_window() {
        // No delivery at all, or a delivery with no recorded injection and
        // an empty delivery window: no rate is computable.
        let mut s = NetStats::new();
        assert_eq!(s.delivered_bytes_per_ns(), 0.0);
        s.on_deliver(&delivered_packet(0, 0, MessageKind::Data));
        assert_eq!(s.delivered_bytes_per_ns(), 0.0);
    }

    #[test]
    fn first_injection_keeps_the_earliest_instant() {
        let mut s = NetStats::new();
        s.on_inject(Time::from_ns(7));
        s.on_inject(Time::from_ns(3));
        s.on_inject(Time::from_ns(9));
        assert_eq!(s.first_injection(), Some(Time::from_ns(3)));
    }

    #[test]
    fn counts_rejections_and_waste() {
        let mut s = NetStats::new();
        s.on_inject(Time::ZERO);
        s.on_reject();
        s.on_wasted_slot();
        s.on_drop();
        assert_eq!(s.injected_packets(), 1);
        assert_eq!(s.rejected_packets(), 1);
        assert_eq!(s.wasted_slots(), 1);
        assert_eq!(s.dropped_packets(), 1);
    }

    #[test]
    fn fairness_index_detects_skew() {
        let mut fair = NetStats::new();
        let mut unfair = NetStats::new();
        for site in 0..4u32 {
            let mut p = Packet::new(
                PacketId(u64::from(site)),
                SiteId::from_index(site as usize),
                SiteId::from_index(5),
                64,
                MessageKind::Data,
                Time::ZERO,
            );
            p.delivered = Some(Time::from_ns(10));
            fair.on_deliver(&p);
            // Skewed: site i waits 10 * 4^i ns.
            p.delivered = Some(Time::from_ns(10 * 4u64.pow(site)));
            unfair.on_deliver(&p);
        }
        assert!((fair.jain_fairness() - 1.0).abs() < 1e-12);
        assert!(unfair.jain_fairness() < 0.5, "{}", unfair.jain_fairness());
        assert_eq!(fair.participating_sources(), 4);
        assert_eq!(unfair.participating_sources(), 4);
    }

    #[test]
    fn dead_sources_drop_out_of_the_fairness_population() {
        // Sites 0 and 2 deliver identically; sites 1 and 3 deliver
        // nothing (e.g. killed by a fault plan). The index stays perfect —
        // which is exactly why participating_sources must be reported
        // alongside it.
        let mut s = NetStats::new();
        for site in [0usize, 2] {
            let mut p = Packet::new(
                PacketId(site as u64),
                SiteId::from_index(site),
                SiteId::from_index(5),
                64,
                MessageKind::Data,
                Time::ZERO,
            );
            p.delivered = Some(Time::from_ns(10));
            s.on_deliver(&p);
        }
        assert_eq!(s.participating_sources(), 2);
        assert!((s.jain_fairness() - 1.0).abs() < 1e-12);
        assert_eq!(NetStats::new().participating_sources(), 0);
    }

    #[test]
    fn per_source_latencies_are_indexed_by_site() {
        let mut s = NetStats::new();
        let mut p = Packet::new(
            PacketId(0),
            SiteId::from_index(3),
            SiteId::from_index(5),
            64,
            MessageKind::Data,
            Time::ZERO,
        );
        p.delivered = Some(Time::from_ns(20));
        s.on_deliver(&p);
        let per = s.per_source_mean_latency_ns();
        assert_eq!(per.len(), 4);
        assert_eq!(per[3], 20.0);
        assert_eq!(per[0], 0.0);
    }

    #[test]
    fn empty_stats_are_perfectly_fair() {
        assert_eq!(NetStats::new().jain_fairness(), 1.0);
    }

    #[test]
    fn router_bytes_accumulate() {
        let mut s = NetStats::new();
        let mut p = delivered_packet(0, 9, MessageKind::Data);
        p.routed_bytes = 64;
        s.on_deliver(&p);
        assert_eq!(s.routed_bytes(), 64);
    }

    #[test]
    fn phase_histograms_fill_from_stamped_packets() {
        let mut s = NetStats::new();
        let mut p = delivered_packet(0, 30, MessageKind::Data);
        p.arb_start = Some(Time::from_ns(2));
        p.tx_start = Some(Time::from_ns(10));
        p.tx_end = Some(Time::from_ns(23));
        s.on_deliver(&p);
        // An unstamped packet contributes to e2e latency but no phases.
        s.on_deliver(&delivered_packet(0, 10, MessageKind::Data));
        assert_eq!(s.phase_latency(Phase::Queueing).count(), 1);
        assert_eq!(s.phase_latency(Phase::ArbWait).count(), 1);
        assert_eq!(s.phase_latency(Phase::Serialization).count(), 1);
        assert_eq!(s.phase_latency(Phase::Propagation).count(), 1);
        assert_eq!(s.phase_latency(Phase::Queueing).mean(), Span::from_ns(2));
        assert_eq!(s.phase_latency(Phase::ArbWait).mean(), Span::from_ns(8));
        assert_eq!(
            s.phase_latency(Phase::Serialization).mean(),
            Span::from_ns(13)
        );
        assert_eq!(s.phase_latency(Phase::Propagation).mean(), Span::from_ns(7));
        let breakdown = s.phase_breakdown_ns();
        assert_eq!(breakdown, [2.0, 8.0, 13.0, 7.0]);
    }

    #[test]
    fn throughput_gbps_matches_bytes_per_ns() {
        let mut s = NetStats::new();
        s.on_deliver(&delivered_packet(0, 0, MessageKind::Data));
        s.on_deliver(&delivered_packet(0, 64, MessageKind::Data));
        assert_eq!(s.throughput_gbps(), s.delivered_bytes_per_ns());
        assert!((s.throughput_gbps() - 2.0).abs() < 1e-12);
        assert_eq!(s.first_delivery(), Some(Time::ZERO));
        assert_eq!(s.last_delivery(), Some(Time::from_ns(64)));
    }
}
