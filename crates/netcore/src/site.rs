//! Site addressing on the macrochip grid.

use std::fmt;

/// Identifies one site (processor + memory die pair) on the macrochip.
///
/// A `SiteId` is an index into row-major grid order; its `(x, y)`
/// coordinates come from the [`Grid`] it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(u16);

impl SiteId {
    /// Creates a site id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit a `u16` — wrapping a site index
    /// would silently alias two different sites.
    pub const fn from_index(index: usize) -> SiteId {
        assert!(index <= u16::MAX as usize, "site index out of range");
        #[allow(clippy::cast_possible_truncation)]
        SiteId(index as u16)
    }

    /// The raw row-major index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The macrochip's n×n arrangement of sites (§3: 8×8).
///
/// # Example
///
/// ```
/// use netcore::Grid;
///
/// let grid = Grid::new(8);
/// let s = grid.site(3, 5);
/// assert_eq!(grid.x(s), 3);
/// assert_eq!(grid.y(s), 5);
/// assert_eq!(grid.row_peers(s).count(), 7);
/// ```
/// `v % m`, strength-reduced to a mask when `m` is a power of two.
///
/// Grid dimensions are runtime values, so the compiler cannot do this
/// reduction itself, yet every paper configuration uses power-of-two
/// sides — and integer division is the single most expensive ALU
/// operation on the simulation hot paths. The result is identical to
/// `v % m` for every input.
#[inline]
pub fn fast_rem(v: usize, m: usize) -> usize {
    debug_assert!(m > 0, "fast_rem by zero");
    let r = if m.is_power_of_two() {
        v & (m - 1)
    } else {
        // Safe fallback for non-power-of-two side lengths (e.g. 24).
        v % m
    };
    debug_assert_eq!(r, v % m, "fast_rem({v}, {m}) diverged from %");
    r
}

/// `v / m`, strength-reduced to a shift when `m` is a power of two.
/// See [`fast_rem`].
#[inline]
pub fn fast_div(v: usize, m: usize) -> usize {
    debug_assert!(m > 0, "fast_div by zero");
    let q = if m.is_power_of_two() {
        v >> m.trailing_zeros()
    } else {
        // Safe fallback for non-power-of-two side lengths (e.g. 24).
        v / m
    };
    debug_assert_eq!(q, v / m, "fast_div({v}, {m}) diverged from /");
    q
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    side: usize,
}

impl Grid {
    /// Creates an n×n grid.
    ///
    /// # Panics
    ///
    /// Panics if `side` is zero or the grid would exceed `u16` indices.
    pub fn new(side: usize) -> Grid {
        assert!(side > 0, "grid side must be positive");
        assert!(side * side <= u16::MAX as usize, "grid too large");
        Grid { side }
    }

    /// Sites per side.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Total number of sites.
    pub fn sites(&self) -> usize {
        self.side * self.side
    }

    /// The site at column `x`, row `y`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn site(&self, x: usize, y: usize) -> SiteId {
        assert!(x < self.side && y < self.side, "({x},{y}) outside grid");
        SiteId::from_index(y * self.side + x)
    }

    /// Column of `s`.
    #[inline]
    pub fn x(&self, s: SiteId) -> usize {
        fast_rem(s.index(), self.side)
    }

    /// Row of `s`.
    #[inline]
    pub fn y(&self, s: SiteId) -> usize {
        fast_div(s.index(), self.side)
    }

    /// `(x, y)` coordinates of `s`, for the photonic layout model.
    pub fn coord(&self, s: SiteId) -> (usize, usize) {
        (self.x(s), self.y(s))
    }

    /// True if the id addresses a site of this grid.
    pub fn contains(&self, s: SiteId) -> bool {
        s.index() < self.sites()
    }

    /// All sites in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = SiteId> {
        (0..self.sites()).map(SiteId::from_index)
    }

    /// The other sites in `s`'s row (its *row peers*, §4.6).
    pub fn row_peers(&self, s: SiteId) -> impl Iterator<Item = SiteId> + '_ {
        let y = self.y(s);
        let x = self.x(s);
        (0..self.side)
            .filter(move |&c| c != x)
            .map(move |c| self.site(c, y))
    }

    /// The other sites in `s`'s column (its *column peers*, §4.6).
    pub fn col_peers(&self, s: SiteId) -> impl Iterator<Item = SiteId> + '_ {
        let y = self.y(s);
        let x = self.x(s);
        (0..self.side)
            .filter(move |&r| r != y)
            .map(move |r| self.site(x, r))
    }

    /// True when `a` and `b` share a row or a column (direct optical
    /// connectivity in the limited point-to-point network).
    pub fn are_peers(&self, a: SiteId, b: SiteId) -> bool {
        a != b && (self.x(a) == self.x(b) || self.y(a) == self.y(b))
    }
}

impl Default for Grid {
    /// The paper's 8×8 macrochip.
    fn default() -> Grid {
        Grid::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_round_trip() {
        // Power-of-two and non-power-of-two sides alike.
        for side in [4usize, 8, 11, 16, 24, 32] {
            let g = Grid::new(side);
            for y in 0..side {
                for x in 0..side {
                    let s = g.site(x, y);
                    assert_eq!(g.coord(s), (x, y));
                }
            }
        }
    }

    #[test]
    fn fast_rem_and_div_match_the_operators() {
        for m in [8usize, 16, 24, 32] {
            for v in 0..4 * m {
                assert_eq!(fast_rem(v, m), v % m, "rem v={v} m={m}");
                assert_eq!(fast_div(v, m), v / m, "div v={v} m={m}");
            }
        }
    }

    #[test]
    fn row_and_col_peers_exclude_self() {
        let g = Grid::new(8);
        let s = g.site(2, 6);
        let rows: Vec<_> = g.row_peers(s).collect();
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|&p| g.y(p) == 6 && p != s));
        let cols: Vec<_> = g.col_peers(s).collect();
        assert_eq!(cols.len(), 7);
        assert!(cols.iter().all(|&p| g.x(p) == 2 && p != s));
    }

    #[test]
    fn peer_relation_matches_row_or_column() {
        let g = Grid::new(4);
        let a = g.site(1, 1);
        assert!(g.are_peers(a, g.site(3, 1)));
        assert!(g.are_peers(a, g.site(1, 0)));
        assert!(!g.are_peers(a, g.site(2, 2)));
        assert!(!g.are_peers(a, a));
    }

    #[test]
    fn iter_visits_every_site_once() {
        for side in [4usize, 8, 16, 24, 32] {
            let g = Grid::new(side);
            let all: Vec<_> = g.iter().collect();
            assert_eq!(all.len(), side * side);
            assert!(all.iter().enumerate().all(|(i, s)| s.index() == i));
        }
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let g = Grid::new(4);
        assert!(g.contains(SiteId::from_index(15)));
        assert!(!g.contains(SiteId::from_index(16)));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SiteId::from_index(12).to_string(), "S12");
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn site_out_of_range_panics() {
        let _ = Grid::new(4).site(4, 0);
    }
}
