//! Runtime invariant auditing — the simulator proving its own bookkeeping.
//!
//! The [`Auditor`] is a [`TraceSink`] that rides the flight-recorder event
//! stream (alongside, or instead of, a `RingSink`) and checks, on every
//! event, that the simulation conserves packets and respects physics:
//!
//! * **Packet conservation** — every injected packet ends in exactly one
//!   of delivered / dropped / still in flight / awaiting a fault retry,
//!   per network and per site. Double deliveries, deliveries of unknown
//!   packets, and drops after delivery are violations.
//! * **Causality and physical lower bounds** — a delivery can never
//!   precede its injection, nor beat the time of flight implied by the
//!   [`photonics::geometry::Layout`] (torus-wrapped Manhattan distance at
//!   one hop delay per site pitch) plus serialization at the full per-site
//!   bandwidth.
//! * **Per-architecture resource invariants** — token ring: at most one
//!   holder per destination waveguide, acquire/release strictly paired;
//!   circuit switched: setup/teardown paired per circuit id, a teardown
//!   never reports packets for a circuit that was never set up; two-phase:
//!   slots wasted by reported grants never exceed the network's own wasted
//!   counter (equal on clean drained runs); limited point-to-point:
//!   electronically routed bytes reconstructed from per-hop events match
//!   the router-byte counter exactly.
//! * **Fault accounting** — faulted packets must be *accounted*, never
//!   lost: nacks void a corrupted delivery and re-arm the packet, wrapper
//!   drops are classified by their stable reason strings and reconciled
//!   against the fault layer's own drop counter.
//!
//! Violations are collected (bounded), each carrying the offending packet
//! id, site, and simulation time. After the run, [`Auditor::finalize`]
//! reconciles the event-derived totals against the network's [`NetStats`]
//! counters and returns an [`AuditReport`] exportable as the `audit.*`
//! metrics family.
//!
//! # Example
//!
//! ```
//! use desim::trace::{TraceEvent, TraceSink};
//! use desim::Time;
//! use netcore::audit::Auditor;
//! use netcore::{MacrochipConfig, NetStats, NetworkKind};
//!
//! let config = MacrochipConfig::scaled();
//! let mut audit = Auditor::new(NetworkKind::PointToPoint, &config);
//! // A delivery the network never injected is a conservation violation.
//! audit.record(
//!     Time::from_ns(5),
//!     TraceEvent::Deliver {
//!         packet: 7,
//!         src: 0,
//!         dst: 1,
//!         latency: desim::Span::from_ns(5),
//!     },
//! );
//! let report = audit.finalize(&NetStats::new(), 0, Time::from_ns(5));
//! assert!(!report.is_clean());
//! assert_eq!(report.violations[0].packet, Some(7));
//! ```

use crate::metrics::MetricsRegistry;
use crate::{FabricConfig, MacrochipConfig, NetStats, NetworkKind, SiteId};
use desim::trace::{TraceEvent, TraceSink};
use desim::{Span, Time};
use std::collections::HashMap;
use std::fmt;

/// Violations stored verbatim per report; further ones are only counted.
pub const MAX_RECORDED_VIOLATIONS: usize = 64;

/// Drop reasons emitted by the fault-resilience wrapper (as opposed to a
/// network absorbing a packet itself). Kept in sync with
/// `faults::ResilientNetwork`; the auditor uses them to reconcile wrapper
/// drops against `FaultStats::dropped` separately from the network's own
/// drop counter.
pub const FAULT_DROP_REASONS: [&str; 3] = ["dead-site", "no-recovery", "retries-exhausted"];

/// One invariant violation, pinpointed in space and time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Stable dotted check name, e.g. `"conservation.double-deliver"`.
    pub check: &'static str,
    /// Offending packet id, when the check concerns a packet.
    pub packet: Option<u64>,
    /// Site index where the violation was observed, when known.
    pub site: Option<usize>,
    /// Simulation time of the offending event.
    pub at: Time,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.check)?;
        if let Some(p) = self.packet {
            write!(f, " packet={p}")?;
        }
        if let Some(s) = self.site {
            write!(f, " site={s}")?;
        }
        write!(f, " t={}ns: {}", self.at.as_ns_f64(), self.detail)
    }
}

/// Where a tracked packet currently stands in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PacketPhase {
    /// Injected, not yet delivered or dropped.
    InFlight,
    /// Delivered to its destination (possibly voided later by a nack).
    Delivered,
    /// A fault voided its delivery (or evicted it); the fault layer holds
    /// it for a retry re-injection.
    PendingRetry,
    /// Permanently dropped.
    Dropped,
}

#[derive(Debug, Clone)]
struct PacketAudit {
    src: usize,
    dst: usize,
    bytes: u32,
    /// Time of the most recent injection (re-injections update it).
    last_inject: Time,
    phase: PacketPhase,
    /// Electronic router hops taken (limited point-to-point only).
    hops: u64,
}

/// Streaming invariant checker over one network's trace-event stream.
///
/// Feed it every event of a run (share it with the network's [`Tracer`],
/// optionally teed with a recording sink), then call
/// [`Auditor::finalize`] with the network's end-of-run [`NetStats`] to
/// reconcile counters and obtain the [`AuditReport`].
pub struct Auditor {
    kind: NetworkKind,
    config: MacrochipConfig,
    /// Set for multi-chip fabric runs: switches the latency floor to
    /// chip-local geometry and arms the `fabric.inter-chip-bytes`
    /// reconciliation invariant.
    fabric: Option<FabricConfig>,
    packets: HashMap<u64, PacketAudit>,
    violations: Vec<AuditViolation>,
    total_violations: u64,
    events: u64,
    inject_events: u64,
    deliver_events: u64,
    drop_events: u64,
    stall_events: u64,
    nack_events: u64,
    corrupt_events: u64,
    /// Packets absorbed at injection time (drop for a never-seen id) by
    /// the network itself ("masked", "no-route", …).
    absorbed_net: u64,
    /// Packets absorbed at injection time by the fault wrapper
    /// ("dead-site" for an injection toward a dead destination).
    absorbed_wrapper: u64,
    /// Drop events (any packet) carrying a network-level reason.
    drops_net: u64,
    /// Drop events (any packet) carrying a fault-wrapper reason.
    drops_wrapper: u64,
    /// Σ `wasted_slots` over `ArbGrant` events (two-phase).
    wasted_from_grants: u64,
    /// Σ hops × bytes over deliveries (limited point-to-point).
    routed_bytes_from_hops: u64,
    /// Destination waveguide → current token holder (token ring).
    token_holders: HashMap<usize, usize>,
    /// Live circuits by id (circuit switched).
    circuits: HashMap<u64, (usize, usize)>,
    circuit_setups: u64,
    circuit_teardowns: u64,
    site_injected: Vec<u64>,
    site_delivered: Vec<u64>,
    site_dropped: Vec<u64>,
}

impl Auditor {
    /// Creates an auditor for one `kind` network running under `config`.
    pub fn new(kind: NetworkKind, config: &MacrochipConfig) -> Auditor {
        let sites = config.grid.sites();
        Auditor {
            kind,
            config: *config,
            fabric: None,
            packets: HashMap::new(),
            violations: Vec::new(),
            total_violations: 0,
            events: 0,
            inject_events: 0,
            deliver_events: 0,
            drop_events: 0,
            stall_events: 0,
            nack_events: 0,
            corrupt_events: 0,
            absorbed_net: 0,
            absorbed_wrapper: 0,
            drops_net: 0,
            drops_wrapper: 0,
            wasted_from_grants: 0,
            routed_bytes_from_hops: 0,
            token_holders: HashMap::new(),
            circuits: HashMap::new(),
            circuit_setups: 0,
            circuit_teardowns: 0,
            site_injected: vec![0; sites],
            site_delivered: vec![0; sites],
            site_dropped: vec![0; sites],
        }
    }

    /// Creates an auditor for a multi-chip fabric running `kind` chips.
    ///
    /// Packet endpoints address the fabric's flat global grid. The
    /// latency floor drops to chip-local geometry (same-chip pairs use
    /// the *chip's* torus wrap, which a global floor would overestimate;
    /// cross-chip pairs get serialization plus one hop of flight — the
    /// weakest bound valid for any board layout), and every relay hop —
    /// on-chip or gateway — must account its packet's bytes exactly once
    /// against `NetStats::routed_bytes` (`fabric.inter-chip-bytes`).
    pub fn new_fabric(kind: NetworkKind, fabric: &FabricConfig) -> Auditor {
        let mut a = Auditor::new(kind, &fabric.global_config());
        a.fabric = Some(*fabric);
        a
    }

    /// Violations found so far (bounded at [`MAX_RECORDED_VIOLATIONS`]).
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Total violations found so far, including unrecorded ones.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    fn flag(
        &mut self,
        check: &'static str,
        packet: Option<u64>,
        site: Option<usize>,
        at: Time,
        detail: String,
    ) {
        self.total_violations += 1;
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(AuditViolation {
                check,
                packet,
                site,
                at,
                detail,
            });
        }
    }

    /// The physical lower bound on inject→deliver time for one packet:
    /// serialization at the full 320 B/ns per-site peak plus time of
    /// flight over the torus-wrapped Manhattan distance (the weakest
    /// valid bound across all five architectures — the circuit-switched
    /// and limited point-to-point tori route across the wrap edges).
    /// Intra-site loop-back is modeled as a one-cycle hand-off.
    fn latency_floor(&self, src: usize, dst: usize, bytes: u32) -> Span {
        if src == dst {
            return self.config.cycle();
        }
        let ser = Span::from_ns_f64(bytes as f64 / self.config.site_bandwidth_bytes_per_ns());
        if let Some(fabric) = &self.fabric {
            let (s, d) = (SiteId::from_index(src), SiteId::from_index(dst));
            if fabric.chip_of(s) == fabric.chip_of(d) {
                // Same chip: the chip's own torus wrap applies — the
                // global grid's plain distance would over-constrain a
                // pair that the chip-local ring reaches across its wrap
                // edge in one hop.
                let chip = &fabric.chip;
                let hops = chip.layout.torus_hops(
                    chip.grid.coord(fabric.local(s)),
                    chip.grid.coord(fabric.local(d)),
                );
                return chip.layout.hop_delay() * hops as u64 + ser;
            }
            // Cross-chip: at least one hop of on-chip flight plus full
            // serialization. Board flight is deliberately excluded — the
            // weakest bound that stays valid for any gateway placement.
            return self.chip_layout().hop_delay() + ser;
        }
        let layout = &self.config.layout;
        let grid = &self.config.grid;
        let hops = layout.torus_hops(
            grid.coord(SiteId::from_index(src)),
            grid.coord(SiteId::from_index(dst)),
        );
        let flight = layout.hop_delay() * hops as u64;
        flight + ser
    }

    fn chip_layout(&self) -> &photonics::geometry::Layout {
        match &self.fabric {
            Some(f) => &f.chip.layout,
            None => &self.config.layout,
        }
    }

    fn on_inject(&mut self, at: Time, packet: u64, src: usize, dst: usize, bytes: u32) {
        self.inject_events += 1;
        let sites = self.config.grid.sites();
        if src >= sites || dst >= sites {
            self.flag(
                "conservation.site-out-of-range",
                Some(packet),
                Some(src),
                at,
                format!("injected {src} -> {dst} on a {sites}-site grid"),
            );
            return;
        }
        if let Some(slot) = self.site_injected.get_mut(src) {
            *slot += 1;
        }
        match self.packets.get_mut(&packet) {
            None => {
                self.packets.insert(
                    packet,
                    PacketAudit {
                        src,
                        dst,
                        bytes,
                        last_inject: at,
                        phase: PacketPhase::InFlight,
                        hops: 0,
                    },
                );
            }
            Some(p) => {
                if p.src != src || p.dst != dst || p.bytes != bytes {
                    let detail = format!(
                        "id re-used with different identity: {} -> {} ({} B) vs {} -> {} ({} B)",
                        p.src, p.dst, p.bytes, src, dst, bytes
                    );
                    self.flag("conservation.id-reuse", Some(packet), Some(src), at, detail);
                    return;
                }
                match p.phase {
                    PacketPhase::PendingRetry => {
                        p.phase = PacketPhase::InFlight;
                        p.last_inject = at;
                    }
                    PacketPhase::InFlight => self.flag(
                        "conservation.double-inject",
                        Some(packet),
                        Some(src),
                        at,
                        "injected again while still in flight".into(),
                    ),
                    PacketPhase::Delivered => self.flag(
                        "conservation.reinject-after-delivery",
                        Some(packet),
                        Some(src),
                        at,
                        "injected again after delivery without an intervening nack".into(),
                    ),
                    PacketPhase::Dropped => self.flag(
                        "conservation.reinject-after-drop",
                        Some(packet),
                        Some(src),
                        at,
                        "injected again after a permanent drop".into(),
                    ),
                }
            }
        }
    }

    fn on_deliver(&mut self, at: Time, packet: u64, src: usize, dst: usize) {
        self.deliver_events += 1;
        if let Some(slot) = self.site_delivered.get_mut(dst) {
            *slot += 1;
        }
        let Some(p) = self.packets.get(&packet).cloned() else {
            self.flag(
                "conservation.deliver-unknown",
                Some(packet),
                Some(dst),
                at,
                "delivered a packet that was never injected".into(),
            );
            return;
        };
        if p.src != src || p.dst != dst {
            self.flag(
                "conservation.endpoint-mismatch",
                Some(packet),
                Some(dst),
                at,
                format!(
                    "delivered as {src} -> {dst} but injected as {} -> {}",
                    p.src, p.dst
                ),
            );
        }
        match p.phase {
            PacketPhase::InFlight => {}
            PacketPhase::Delivered => {
                self.flag(
                    "conservation.double-deliver",
                    Some(packet),
                    Some(dst),
                    at,
                    "delivered twice without an intervening nack".into(),
                );
                return;
            }
            PacketPhase::Dropped => {
                self.flag(
                    "conservation.deliver-after-drop",
                    Some(packet),
                    Some(dst),
                    at,
                    "delivered after being permanently dropped".into(),
                );
                return;
            }
            PacketPhase::PendingRetry => {
                self.flag(
                    "conservation.deliver-without-reinject",
                    Some(packet),
                    Some(dst),
                    at,
                    "delivered while held by the fault layer awaiting retry".into(),
                );
                return;
            }
        }
        if at < p.last_inject {
            self.flag(
                "causality.deliver-before-inject",
                Some(packet),
                Some(dst),
                at,
                format!(
                    "delivery precedes injection at {}ns",
                    p.last_inject.as_ns_f64()
                ),
            );
        } else {
            let floor = self.latency_floor(p.src, p.dst, p.bytes);
            let measured = at.saturating_since(p.last_inject);
            if measured < floor {
                self.flag(
                    "physics.latency-below-floor",
                    Some(packet),
                    Some(dst),
                    at,
                    format!(
                        "inject-to-deliver {}ns beats the physical floor {}ns \
                         ({} B, {} -> {})",
                        measured.as_ns_f64(),
                        floor.as_ns_f64(),
                        p.bytes,
                        p.src,
                        p.dst
                    ),
                );
            }
        }
        if self.fabric.is_some()
            || matches!(
                self.kind,
                NetworkKind::LimitedPointToPoint | NetworkKind::Hierarchical
            )
        {
            self.routed_bytes_from_hops += p.hops * u64::from(p.bytes);
        }
        if let Some(p) = self.packets.get_mut(&packet) {
            p.phase = PacketPhase::Delivered;
        }
    }

    fn on_drop(&mut self, at: Time, packet: u64, site: usize, reason: &'static str) {
        self.drop_events += 1;
        if let Some(slot) = self.site_dropped.get_mut(site) {
            *slot += 1;
        }
        let wrapper = FAULT_DROP_REASONS.contains(&reason);
        if wrapper {
            self.drops_wrapper += 1;
        } else {
            self.drops_net += 1;
        }
        match self.packets.get_mut(&packet) {
            None => {
                // A drop for a packet with no inject event is the
                // absorbed-at-injection admission path (a masked or
                // unroutable or dead destination): the packet is
                // accounted, it just never flew.
                if wrapper {
                    self.absorbed_wrapper += 1;
                } else {
                    self.absorbed_net += 1;
                }
            }
            Some(p) => match p.phase {
                PacketPhase::InFlight | PacketPhase::PendingRetry => {
                    p.phase = PacketPhase::Dropped;
                }
                PacketPhase::Delivered => self.flag(
                    "conservation.drop-after-delivery",
                    Some(packet),
                    Some(site),
                    at,
                    format!("dropped ({reason}) after successful delivery"),
                ),
                PacketPhase::Dropped => self.flag(
                    "conservation.double-drop",
                    Some(packet),
                    Some(site),
                    at,
                    format!("dropped twice (second reason: {reason})"),
                ),
            },
        }
    }

    fn on_nack(&mut self, at: Time, packet: u64, src: usize) {
        self.nack_events += 1;
        match self.packets.get_mut(&packet) {
            None => self.flag(
                "fault.nack-unknown",
                Some(packet),
                Some(src),
                at,
                "nack for a packet that was never injected".into(),
            ),
            Some(p) => match p.phase {
                // A nack voids a corrupted delivery, or re-arms a packet
                // evicted from the network's queues by a fault.
                PacketPhase::Delivered | PacketPhase::InFlight => {
                    p.phase = PacketPhase::PendingRetry;
                }
                PacketPhase::Dropped => self.flag(
                    "fault.nack-after-drop",
                    Some(packet),
                    Some(src),
                    at,
                    "nack for a permanently dropped packet".into(),
                ),
                PacketPhase::PendingRetry => self.flag(
                    "fault.double-nack",
                    Some(packet),
                    Some(src),
                    at,
                    "nack for a packet already awaiting retry".into(),
                ),
            },
        }
    }

    fn on_token_acquire(&mut self, at: Time, dst: usize, holder: usize) {
        if let Some(&prev) = self.token_holders.get(&dst) {
            self.flag(
                "token.double-hold",
                None,
                Some(holder),
                at,
                format!("waveguide {dst} token acquired while site {prev} still holds it"),
            );
        }
        self.token_holders.insert(dst, holder);
    }

    fn on_token_release(&mut self, at: Time, dst: usize, holder: usize) {
        match self.token_holders.remove(&dst) {
            Some(prev) if prev == holder => {}
            Some(prev) => self.flag(
                "token.release-mismatch",
                None,
                Some(holder),
                at,
                format!("waveguide {dst} released by site {holder} but held by site {prev}"),
            ),
            None => self.flag(
                "token.release-unheld",
                None,
                Some(holder),
                at,
                format!("waveguide {dst} released but never acquired"),
            ),
        }
    }

    fn on_circuit_setup(&mut self, at: Time, circuit: u64, src: usize, dst: usize) {
        self.circuit_setups += 1;
        if self.circuits.insert(circuit, (src, dst)).is_some() {
            self.flag(
                "circuit.double-setup",
                None,
                Some(src),
                at,
                format!("circuit {circuit} set up twice without a teardown"),
            );
        }
    }

    fn on_circuit_teardown(&mut self, at: Time, circuit: u64, packets: u64) {
        self.circuit_teardowns += 1;
        if self.circuits.remove(&circuit).is_none() && packets > 0 {
            // A zero-packet teardown without a prior setup is the abandon
            // path (the setup never completed); claiming carried packets
            // for a circuit that was never established is not.
            self.flag(
                "circuit.orphan-teardown",
                None,
                None,
                at,
                format!("circuit {circuit} tore down claiming {packets} packets, never set up"),
            );
        }
    }

    /// Slab-leak invariant: when the network has gone idle, every
    /// in-flight packet slot must have been taken back out of its
    /// [`PacketSlab`](crate::PacketSlab) arena — a nonzero residency
    /// means some event path inserted a packet and lost the reference.
    ///
    /// Call after the run with `Network::slab_stats`, but only once the
    /// network reports no pending events (a timed-out or saturated run
    /// legitimately still holds packets). `None` (no slab) passes
    /// vacuously.
    pub fn check_slab_idle(&mut self, stats: Option<crate::SlabStats>, end: Time) {
        let Some(s) = stats else { return };
        if s.live != 0 || s.allocated != s.freed {
            self.flag(
                "slab.leak",
                None,
                None,
                end,
                format!(
                    "packet slab not empty at idle: {} live ({} allocated, {} freed, \
                     high water {}, {} slots)",
                    s.live, s.allocated, s.freed, s.high_water, s.slots
                ),
            );
        }
    }

    /// Reconciles the event-derived totals against the network's own
    /// counters and produces the report.
    ///
    /// `fault_drops` is the fault wrapper's permanent-drop counter
    /// (`FaultStats::dropped`) for runs under `faults::ResilientNetwork`,
    /// zero for bare networks. `end` is the simulation end time, stamped
    /// on finalize-stage violations.
    pub fn finalize(&mut self, stats: &NetStats, fault_drops: u64, end: Time) -> AuditReport {
        let _span = desim::prof::span(desim::prof::Site::Audit);
        if self.deliver_events != stats.delivered_packets() {
            self.flag(
                "accounting.delivered-mismatch",
                None,
                None,
                end,
                format!(
                    "{} deliver events vs {} delivered in NetStats",
                    self.deliver_events,
                    stats.delivered_packets()
                ),
            );
        }
        if self.inject_events + self.absorbed_net != stats.injected_packets() {
            self.flag(
                "accounting.injected-mismatch",
                None,
                None,
                end,
                format!(
                    "{} inject events + {} absorbed vs {} injected in NetStats",
                    self.inject_events,
                    self.absorbed_net,
                    stats.injected_packets()
                ),
            );
        }
        if self.drops_net != stats.dropped_packets() {
            self.flag(
                "accounting.dropped-mismatch",
                None,
                None,
                end,
                format!(
                    "{} network drop events vs {} dropped in NetStats",
                    self.drops_net,
                    stats.dropped_packets()
                ),
            );
        }
        if self.drops_wrapper != fault_drops {
            self.flag(
                "accounting.fault-drops-mismatch",
                None,
                None,
                end,
                format!(
                    "{} wrapper drop events vs {} dropped in FaultStats",
                    self.drops_wrapper, fault_drops
                ),
            );
        }
        if self.stall_events > stats.rejected_packets() {
            self.flag(
                "accounting.reject-undercount",
                None,
                None,
                end,
                format!(
                    "{} stall events but only {} rejections in NetStats",
                    self.stall_events,
                    stats.rejected_packets()
                ),
            );
        }
        let mut in_flight = 0u64;
        let mut pending_retry = 0u64;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        for p in self.packets.values() {
            match p.phase {
                PacketPhase::InFlight => in_flight += 1,
                PacketPhase::PendingRetry => pending_retry += 1,
                PacketPhase::Delivered => delivered += 1,
                PacketPhase::Dropped => dropped += 1,
            }
        }
        // Two-phase: grants report the slots their packet wasted before
        // winning; packets still queued (or evicted by a fault before
        // winning) hold wasted slots the stream has not reported yet, so
        // the event-side sum can only ever be <= the counter — and must
        // match it exactly once everything drained cleanly.
        let drained_clean = in_flight == 0
            && pending_retry == 0
            && self.nack_events == 0
            && fault_drops == 0
            && self.drops_wrapper == 0;
        let waste_consistent = if drained_clean {
            self.wasted_from_grants == stats.wasted_slots()
        } else {
            self.wasted_from_grants <= stats.wasted_slots()
        };
        if !waste_consistent {
            self.flag(
                "twophase.wasted-slot-mismatch",
                None,
                None,
                end,
                format!(
                    "grants report {} wasted slots vs {} in NetStats",
                    self.wasted_from_grants,
                    stats.wasted_slots()
                ),
            );
        }
        // Electronic-routing byte conservation: every router (limited
        // point-to-point) or bridge (hierarchical) relay must account its
        // packet's bytes exactly once — hop events and NetStats are
        // independent tallies of the same forwarding work.
        // In fabric mode the wrapper re-emits every relay (inner network
        // forwards plus its own gateway hops) as hop events, so the
        // reconciliation covers all architectures under one invariant.
        let routed_bytes_check = if self.fabric.is_some() {
            Some("fabric.inter-chip-bytes")
        } else {
            match self.kind {
                NetworkKind::LimitedPointToPoint => Some("limited.routed-bytes-mismatch"),
                NetworkKind::Hierarchical => Some("hierarchical.bridge-bytes-mismatch"),
                _ => None,
            }
        };
        if let Some(check) = routed_bytes_check {
            if self.routed_bytes_from_hops != stats.routed_bytes() {
                self.flag(
                    check,
                    None,
                    None,
                    end,
                    format!(
                        "hop events imply {} routed bytes vs {} in NetStats",
                        self.routed_bytes_from_hops,
                        stats.routed_bytes()
                    ),
                );
            }
        }
        if !self.token_holders.is_empty() {
            let held: Vec<usize> = self.token_holders.keys().copied().collect();
            self.flag(
                "token.held-at-end",
                None,
                None,
                end,
                format!("tokens still held at end of run for waveguides {held:?}"),
            );
        }
        AuditReport {
            network: self.kind,
            events: self.events,
            packets_tracked: self.packets.len() as u64,
            absorbed: self.absorbed_net + self.absorbed_wrapper,
            delivered,
            dropped,
            in_flight,
            pending_retry,
            nacks: self.nack_events,
            corruptions: self.corrupt_events,
            circuits_open: self.circuits.len() as u64,
            site_injected: std::mem::take(&mut self.site_injected),
            site_delivered: std::mem::take(&mut self.site_delivered),
            site_dropped: std::mem::take(&mut self.site_dropped),
            total_violations: self.total_violations,
            violations: std::mem::take(&mut self.violations),
        }
    }

    /// The set of packet ids this auditor saw injected (absorbed
    /// admissions excluded), order-independent: `(count, xor-fold of
    /// FNV-1a hashes)`. Two networks fed the same trace must agree — the
    /// cross-network differential oracle's conservation key.
    pub fn injected_set_digest(&self) -> (u64, u64) {
        let mut acc = 0u64;
        for &id in self.packets.keys() {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in id.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            acc ^= h;
        }
        (self.packets.len() as u64, acc)
    }
}

impl TraceSink for Auditor {
    fn record(&mut self, at: Time, event: TraceEvent) {
        let _span = desim::prof::span(desim::prof::Site::Audit);
        self.events += 1;
        match event {
            TraceEvent::Inject {
                packet,
                src,
                dst,
                bytes,
            } => self.on_inject(at, packet, src, dst, bytes),
            TraceEvent::Deliver {
                packet, src, dst, ..
            } => self.on_deliver(at, packet, src, dst),
            TraceEvent::Drop {
                packet,
                site,
                reason,
            } => self.on_drop(at, packet, site, reason),
            TraceEvent::Stall { .. } => self.stall_events += 1,
            TraceEvent::ArbGrant {
                packet,
                site,
                wasted_slots,
            } => {
                self.wasted_from_grants += u64::from(wasted_slots);
                if !self.packets.contains_key(&packet) {
                    self.flag(
                        "arb.grant-unknown",
                        Some(packet),
                        Some(site),
                        at,
                        "arbitration grant for a packet that was never injected".into(),
                    );
                }
            }
            TraceEvent::TokenAcquire { dst, holder } => self.on_token_acquire(at, dst, holder),
            TraceEvent::TokenRelease { dst, holder } => self.on_token_release(at, dst, holder),
            TraceEvent::CircuitSetup { circuit, src, dst } => {
                self.on_circuit_setup(at, circuit, src, dst)
            }
            TraceEvent::CircuitTeardown { circuit, packets } => {
                self.on_circuit_teardown(at, circuit, packets)
            }
            TraceEvent::Hop { packet, at: site } => {
                // Limited point-to-point router hops and hierarchical
                // bridge relays carry packet ids; the circuit-switched
                // network reuses the event for setup messages with
                // *circuit* ids, which the packet-level audit must not
                // interpret. The fabric wrapper never forwards its tracer
                // to the inner chips, so under a fabric every hop event
                // the sink sees is a packet-id relay regardless of kind.
                if self.fabric.is_some()
                    || matches!(
                        self.kind,
                        NetworkKind::LimitedPointToPoint | NetworkKind::Hierarchical
                    )
                {
                    match self.packets.get_mut(&packet) {
                        Some(p) => p.hops += 1,
                        None => self.flag(
                            "route.hop-unknown",
                            Some(packet),
                            Some(site),
                            at,
                            "forwarded a packet that was never injected".into(),
                        ),
                    }
                }
            }
            TraceEvent::Corrupt { packet, dst } => {
                self.corrupt_events += 1;
                match self.packets.get(&packet).map(|p| p.phase) {
                    Some(PacketPhase::Delivered) => {}
                    Some(_) => self.flag(
                        "fault.corrupt-undelivered",
                        Some(packet),
                        Some(dst),
                        at,
                        "corruption reported for a packet that was not just delivered".into(),
                    ),
                    None => self.flag(
                        "fault.corrupt-unknown",
                        Some(packet),
                        Some(dst),
                        at,
                        "corruption reported for a packet that was never injected".into(),
                    ),
                }
            }
            TraceEvent::Nack { packet, src, .. } => self.on_nack(at, packet, src),
            TraceEvent::Retry { .. }
            | TraceEvent::ArbRequest { .. }
            | TraceEvent::Coherence { .. }
            | TraceEvent::Fault { .. }
            | TraceEvent::Recover { .. } => {}
        }
    }
}

/// The reconciled outcome of one audited run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Network architecture audited.
    pub network: NetworkKind,
    /// Trace events inspected.
    pub events: u64,
    /// Unique packets that entered the network (absorbed admissions not
    /// included).
    pub packets_tracked: u64,
    /// Packets accounted as dropped at the injection boundary (masked
    /// sites, unroutable or dead destinations).
    pub absorbed: u64,
    /// Packets whose final state is delivered.
    pub delivered: u64,
    /// Packets whose final state is permanently dropped (after flying).
    pub dropped: u64,
    /// Packets still in flight at the end of the run.
    pub in_flight: u64,
    /// Packets held by the fault layer awaiting a retry at end of run.
    pub pending_retry: u64,
    /// Nack events observed (voided deliveries and fault evictions).
    pub nacks: u64,
    /// Corrupted-delivery events observed.
    pub corruptions: u64,
    /// Circuits still established at end of run (circuit switched).
    pub circuits_open: u64,
    /// Packets injected per source site.
    pub site_injected: Vec<u64>,
    /// Packets delivered per destination site.
    pub site_delivered: Vec<u64>,
    /// Drop events per site (the site the drop was observed at).
    pub site_dropped: Vec<u64>,
    /// All violations found, including ones beyond the recording bound.
    pub total_violations: u64,
    /// The first [`MAX_RECORDED_VIOLATIONS`] violations, in stream order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// A report carrying externally produced violations (e.g. the
    /// coherence engine's invariant checks) with no packet stream behind
    /// it.
    pub fn from_violations(network: NetworkKind, violations: Vec<AuditViolation>) -> AuditReport {
        AuditReport {
            network,
            events: 0,
            packets_tracked: 0,
            absorbed: 0,
            delivered: 0,
            dropped: 0,
            in_flight: 0,
            pending_retry: 0,
            nacks: 0,
            corruptions: 0,
            circuits_open: 0,
            site_injected: Vec::new(),
            site_delivered: Vec::new(),
            site_dropped: Vec::new(),
            total_violations: violations.len() as u64,
            violations,
        }
    }

    /// True when not a single invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0
    }

    /// The conservation identity over final packet states: every unique
    /// injected packet is delivered, dropped, in flight, or pending a
    /// retry. Holds by construction unless the stream itself violated
    /// conservation.
    pub fn conservation_holds(&self) -> bool {
        self.packets_tracked == self.delivered + self.dropped + self.in_flight + self.pending_retry
    }

    /// Flattens the report into `reg` as the `audit.*` metrics family.
    pub fn record_metrics(&self, reg: &mut MetricsRegistry) {
        reg.add_counter("audit.events", self.events);
        reg.add_counter("audit.packets", self.packets_tracked);
        reg.add_counter("audit.absorbed", self.absorbed);
        reg.add_counter("audit.delivered", self.delivered);
        reg.add_counter("audit.dropped", self.dropped);
        reg.add_counter("audit.in_flight", self.in_flight);
        reg.add_counter("audit.pending_retry", self.pending_retry);
        reg.add_counter("audit.nacks", self.nacks);
        reg.add_counter("audit.corruptions", self.corruptions);
        reg.add_counter("audit.violations", self.total_violations);
    }

    /// One line per violation, human-readable, bounded by the recording
    /// cap; the caller prints these under a `--audit` failure.
    pub fn violation_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self.violations.iter().map(|v| v.to_string()).collect();
        let unrecorded = self.total_violations - self.violations.len() as u64;
        if unrecorded > 0 {
            lines.push(format!("... and {unrecorded} more violations"));
        }
        lines
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit[{}]: {} events, {} packets ({} delivered, {} dropped, \
             {} absorbed, {} in flight, {} pending retry), {} violations",
            self.network.name(),
            self.events,
            self.packets_tracked,
            self.delivered,
            self.dropped,
            self.absorbed,
            self.in_flight,
            self.pending_retry,
            self.total_violations
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MacrochipConfig {
        MacrochipConfig::scaled()
    }

    fn auditor(kind: NetworkKind) -> Auditor {
        Auditor::new(kind, &config())
    }

    fn inject(packet: u64, src: usize, dst: usize) -> TraceEvent {
        TraceEvent::Inject {
            packet,
            src,
            dst,
            bytes: 64,
        }
    }

    fn deliver(packet: u64, src: usize, dst: usize) -> TraceEvent {
        TraceEvent::Deliver {
            packet,
            src,
            dst,
            latency: Span::from_ns(100),
        }
    }

    fn stats_with(injected: u64, delivered_pairs: &[(u64, u64)]) -> NetStats {
        use crate::{MessageKind, Packet, PacketId};
        let mut s = NetStats::new();
        for _ in 0..injected {
            s.on_inject(Time::ZERO);
        }
        for &(id, at_ns) in delivered_pairs {
            let mut p = Packet::new(
                PacketId(id),
                SiteId::from_index(0),
                SiteId::from_index(1),
                64,
                MessageKind::Data,
                Time::ZERO,
            );
            p.delivered = Some(Time::from_ns(at_ns));
            s.on_deliver(&p);
        }
        s
    }

    #[test]
    fn clean_inject_deliver_cycle_is_clean() {
        let mut a = auditor(NetworkKind::PointToPoint);
        a.record(Time::ZERO, inject(1, 0, 9));
        a.record(Time::from_ns(100), deliver(1, 0, 9));
        let report = a.finalize(&stats_with(1, &[(1, 100)]), 0, Time::from_ns(100));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert!(report.conservation_holds());
        assert_eq!(report.delivered, 1);
        assert_eq!(report.site_injected[0], 1);
        assert_eq!(report.site_delivered[9], 1);
    }

    #[test]
    fn double_delivery_is_flagged_with_packet_site_and_time() {
        let mut a = auditor(NetworkKind::PointToPoint);
        a.record(Time::ZERO, inject(42, 3, 7));
        a.record(Time::from_ns(50), deliver(42, 3, 7));
        a.record(Time::from_ns(60), deliver(42, 3, 7));
        let report = a.finalize(&stats_with(1, &[(42, 50), (42, 60)]), 0, Time::from_ns(60));
        let v = report
            .violations
            .iter()
            .find(|v| v.check == "conservation.double-deliver")
            .expect("double delivery flagged");
        assert_eq!(v.packet, Some(42));
        assert_eq!(v.site, Some(7));
        assert_eq!(v.at, Time::from_ns(60));
    }

    #[test]
    fn delivery_of_unknown_packet_is_flagged() {
        let mut a = auditor(NetworkKind::TokenRing);
        a.record(Time::from_ns(5), deliver(7, 0, 1));
        assert_eq!(a.total_violations(), 1);
        assert_eq!(a.violations()[0].check, "conservation.deliver-unknown");
    }

    #[test]
    fn physical_latency_floor_catches_impossible_deliveries() {
        let mut a = auditor(NetworkKind::PointToPoint);
        // (0,0) -> (4,4) is 8 torus hops = 2 ns of flight; delivering
        // 0.5 ns after injection is physically impossible.
        let dst = config().grid.site(4, 4).index();
        a.record(Time::ZERO, inject(1, 0, dst));
        a.record(
            Time::from_ps(500),
            TraceEvent::Deliver {
                packet: 1,
                src: 0,
                dst,
                latency: Span::from_ps(500),
            },
        );
        assert_eq!(a.violations()[0].check, "physics.latency-below-floor");
    }

    #[test]
    fn loopback_at_one_cycle_is_legal() {
        let mut a = auditor(NetworkKind::PointToPoint);
        a.record(Time::ZERO, inject(1, 5, 5));
        a.record(Time::from_ps(200), deliver(1, 5, 5));
        assert_eq!(a.total_violations(), 0);
    }

    #[test]
    fn nack_voids_a_delivery_and_permits_reinjection() {
        let mut a = auditor(NetworkKind::PointToPoint);
        a.record(Time::ZERO, inject(1, 0, 9));
        a.record(Time::from_ns(100), deliver(1, 0, 9));
        a.record(
            Time::from_ns(100),
            TraceEvent::Corrupt { packet: 1, dst: 9 },
        );
        a.record(
            Time::from_ns(100),
            TraceEvent::Nack {
                packet: 1,
                src: 0,
                attempt: 1,
            },
        );
        a.record(Time::from_ns(200), inject(1, 0, 9));
        a.record(Time::from_ns(300), deliver(1, 0, 9));
        // 2 injections / 2 deliveries in the stream and the counters.
        let stats = stats_with(2, &[(1, 100), (1, 300)]);
        let report = a.finalize(&stats, 0, Time::from_ns(300));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.nacks, 1);
        assert_eq!(report.corruptions, 1);
        assert_eq!(report.delivered, 1);
    }

    #[test]
    fn reinjection_without_a_nack_is_flagged() {
        let mut a = auditor(NetworkKind::PointToPoint);
        a.record(Time::ZERO, inject(1, 0, 9));
        a.record(Time::from_ns(100), deliver(1, 0, 9));
        a.record(Time::from_ns(200), inject(1, 0, 9));
        assert_eq!(
            a.violations()[0].check,
            "conservation.reinject-after-delivery"
        );
    }

    #[test]
    fn wrapper_drops_reconcile_against_fault_stats() {
        let mut a = auditor(NetworkKind::TwoPhase);
        a.record(Time::ZERO, inject(1, 0, 9));
        a.record(
            Time::from_ns(10),
            TraceEvent::Nack {
                packet: 1,
                src: 0,
                attempt: 1,
            },
        );
        a.record(
            Time::from_ns(20),
            TraceEvent::Drop {
                packet: 1,
                site: 0,
                reason: "retries-exhausted",
            },
        );
        // Nack without a delivery models a fault eviction from the queues.
        let report = a.finalize(&stats_with(1, &[]), 1, Time::from_ns(20));
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.dropped, 1);

        // The same stream reconciled against a fault layer that claims no
        // drops is an accounting violation.
        let mut b = auditor(NetworkKind::TwoPhase);
        b.record(Time::ZERO, inject(1, 0, 9));
        b.record(
            Time::from_ns(10),
            TraceEvent::Nack {
                packet: 1,
                src: 0,
                attempt: 1,
            },
        );
        b.record(
            Time::from_ns(20),
            TraceEvent::Drop {
                packet: 1,
                site: 0,
                reason: "retries-exhausted",
            },
        );
        let report = b.finalize(&stats_with(1, &[]), 0, Time::from_ns(20));
        assert!(report
            .violations
            .iter()
            .any(|v| v.check == "accounting.fault-drops-mismatch"));
    }

    #[test]
    fn absorbed_admissions_reconcile_injection_counts() {
        // A masked two-phase injection: counted in NetStats as injected
        // and dropped, but the stream only carries the Drop event.
        let mut a = auditor(NetworkKind::TwoPhase);
        let mut stats = NetStats::new();
        stats.on_inject(Time::ZERO);
        stats.on_drop();
        a.record(
            Time::ZERO,
            TraceEvent::Drop {
                packet: 5,
                site: 2,
                reason: "masked",
            },
        );
        let report = a.finalize(&stats, 0, Time::ZERO);
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.absorbed, 1);
    }

    #[test]
    fn token_double_hold_and_mismatched_release_are_flagged() {
        let mut a = auditor(NetworkKind::TokenRing);
        a.record(Time::ZERO, TraceEvent::TokenAcquire { dst: 3, holder: 1 });
        a.record(
            Time::from_ns(1),
            TraceEvent::TokenAcquire { dst: 3, holder: 2 },
        );
        a.record(
            Time::from_ns(2),
            TraceEvent::TokenRelease { dst: 3, holder: 9 },
        );
        let checks: Vec<&str> = a.violations().iter().map(|v| v.check).collect();
        assert_eq!(checks, vec!["token.double-hold", "token.release-mismatch"]);
    }

    #[test]
    fn circuit_pairing_tolerates_abandon_but_not_orphans() {
        let mut a = auditor(NetworkKind::CircuitSwitched);
        // Abandon path: per-packet drops then a zero-packet teardown with
        // no setup — tolerated.
        a.record(Time::ZERO, inject(1, 0, 9));
        a.record(
            Time::from_ns(5),
            TraceEvent::Drop {
                packet: 1,
                site: 4,
                reason: "setup-lost",
            },
        );
        a.record(
            Time::from_ns(5),
            TraceEvent::CircuitTeardown {
                circuit: 0,
                packets: 0,
            },
        );
        assert_eq!(a.total_violations(), 0);
        // An orphan teardown claiming packets is not.
        a.record(
            Time::from_ns(9),
            TraceEvent::CircuitTeardown {
                circuit: 7,
                packets: 3,
            },
        );
        assert_eq!(
            a.violations().last().unwrap().check,
            "circuit.orphan-teardown"
        );
    }

    #[test]
    fn limited_p2p_routed_bytes_reconcile() {
        let mut a = auditor(NetworkKind::LimitedPointToPoint);
        a.record(Time::ZERO, inject(1, 0, 9));
        a.record(Time::from_ns(1), TraceEvent::Hop { packet: 1, at: 3 });
        a.record(Time::from_ns(20), deliver(1, 0, 9));
        // NetStats with routed_bytes = 64 matches the one forwarded hop.
        use crate::{MessageKind, Packet, PacketId};
        let mut stats = NetStats::new();
        stats.on_inject(Time::ZERO);
        let mut p = Packet::new(
            PacketId(1),
            SiteId::from_index(0),
            SiteId::from_index(9),
            64,
            MessageKind::Data,
            Time::ZERO,
        );
        p.routed_bytes = 64;
        p.delivered = Some(Time::from_ns(20));
        stats.on_deliver(&p);
        let report = a.finalize(&stats, 0, Time::from_ns(20));
        assert!(report.is_clean(), "{:?}", report.violations);

        // A counter that disagrees with the hop stream is flagged.
        let mut b = auditor(NetworkKind::LimitedPointToPoint);
        b.record(Time::ZERO, inject(1, 0, 9));
        b.record(Time::from_ns(20), deliver(1, 0, 9));
        let report = b.finalize(&stats, 0, Time::from_ns(20));
        assert!(report
            .violations
            .iter()
            .any(|v| v.check == "limited.routed-bytes-mismatch"));
    }

    #[test]
    fn hierarchical_bridge_bytes_reconcile() {
        use crate::{MessageKind, Packet, PacketId};
        // A cross-cluster journey: two bridge relays, each accounting the
        // packet's 64 bytes — 128 routed bytes total.
        let mut stats = NetStats::new();
        stats.on_inject(Time::ZERO);
        let mut p = Packet::new(
            PacketId(1),
            SiteId::from_index(1),
            SiteId::from_index(5),
            64,
            MessageKind::Data,
            Time::ZERO,
        );
        p.routed_bytes = 128;
        p.delivered = Some(Time::from_ns(20));
        stats.on_deliver(&p);

        let mut a = auditor(NetworkKind::Hierarchical);
        a.record(Time::ZERO, inject(1, 1, 5));
        a.record(Time::from_ns(4), TraceEvent::Hop { packet: 1, at: 0 });
        a.record(Time::from_ns(9), TraceEvent::Hop { packet: 1, at: 4 });
        a.record(Time::from_ns(20), deliver(1, 1, 5));
        let report = a.finalize(&stats, 0, Time::from_ns(20));
        assert!(report.is_clean(), "{:?}", report.violations);

        // Dropping a relay's accounting breaks byte conservation.
        let mut b = auditor(NetworkKind::Hierarchical);
        b.record(Time::ZERO, inject(1, 1, 5));
        b.record(Time::from_ns(4), TraceEvent::Hop { packet: 1, at: 0 });
        b.record(Time::from_ns(20), deliver(1, 1, 5));
        let report = b.finalize(&stats, 0, Time::from_ns(20));
        assert!(report
            .violations
            .iter()
            .any(|v| v.check == "hierarchical.bridge-bytes-mismatch"));
    }

    #[test]
    fn hierarchical_cluster_grants_use_the_token_invariant() {
        // The per-cluster broadcast grant is audited with the token
        // checks, keyed by cluster id: overlapping grants are flagged.
        let mut a = auditor(NetworkKind::Hierarchical);
        a.record(Time::ZERO, TraceEvent::TokenAcquire { dst: 0, holder: 1 });
        a.record(
            Time::from_ns(1),
            TraceEvent::TokenRelease { dst: 0, holder: 1 },
        );
        assert_eq!(a.total_violations(), 0);
        a.record(
            Time::from_ns(2),
            TraceEvent::TokenAcquire { dst: 2, holder: 9 },
        );
        a.record(
            Time::from_ns(3),
            TraceEvent::TokenAcquire { dst: 2, holder: 10 },
        );
        assert_eq!(a.violations().last().unwrap().check, "token.double-hold");
    }

    #[test]
    fn injected_set_digest_is_order_independent() {
        let mut a = auditor(NetworkKind::PointToPoint);
        let mut b = auditor(NetworkKind::TokenRing);
        for id in [3u64, 1, 2] {
            a.record(Time::ZERO, inject(id, 0, 1));
        }
        for id in [1u64, 2, 3] {
            b.record(Time::ZERO, inject(id, 0, 1));
        }
        assert_eq!(a.injected_set_digest(), b.injected_set_digest());
        b.record(Time::ZERO, inject(4, 0, 1));
        assert_ne!(a.injected_set_digest(), b.injected_set_digest());
    }

    #[test]
    fn report_metrics_export_under_audit_family() {
        let mut a = auditor(NetworkKind::PointToPoint);
        a.record(Time::ZERO, inject(1, 0, 9));
        a.record(Time::from_ns(100), deliver(1, 0, 9));
        let report = a.finalize(&stats_with(1, &[(1, 100)]), 0, Time::from_ns(100));
        let mut reg = MetricsRegistry::new();
        report.record_metrics(&mut reg);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"audit.packets\": 1"), "{json}");
        assert!(json.contains("\"audit.violations\": 0"), "{json}");
    }

    #[test]
    fn slab_leak_is_flagged_at_idle() {
        use crate::{MessageKind, Packet, PacketId, PacketSlab, SlabMode};
        let mut slab = PacketSlab::with_mode(SlabMode::Recycle);
        let leaked = slab.insert(Packet::new(
            PacketId(3),
            SiteId::from_index(0),
            SiteId::from_index(1),
            64,
            MessageKind::Data,
            Time::ZERO,
        ));
        let mut a = auditor(NetworkKind::PointToPoint);
        a.check_slab_idle(Some(slab.stats()), Time::from_ns(50));
        let v = &a.violations()[0];
        assert_eq!(v.check, "slab.leak");
        assert!(v.detail.contains("1 live"), "{}", v.detail);

        // Taking the packet back out clears the invariant; no-slab
        // networks pass vacuously.
        slab.take(leaked);
        let mut b = auditor(NetworkKind::PointToPoint);
        b.check_slab_idle(Some(slab.stats()), Time::from_ns(50));
        b.check_slab_idle(None, Time::from_ns(50));
        assert_eq!(b.total_violations(), 0);
    }

    fn fabric_auditor(kind: NetworkKind) -> Auditor {
        Auditor::new_fabric(kind, &FabricConfig::grid(2, config()))
    }

    #[test]
    fn fabric_floor_uses_chip_local_wrap_for_same_chip_pairs() {
        // Global (0,0) -> (7,0) sits on one chip; the chip's token ring
        // wraps, so the pair is one local ring hop: 0.25 ns flight +
        // 0.2 ns serialization. The global 16-grid's plain distance
        // would demand 7 hops and falsely flag a legal 0.5 ns delivery.
        let mut a = fabric_auditor(NetworkKind::TokenRing);
        let fabric = FabricConfig::grid(2, config());
        let dst = fabric.global_config().grid.site(7, 0).index();
        a.record(Time::ZERO, inject(1, 0, dst));
        a.record(Time::from_ps(500), deliver(1, 0, dst));
        assert_eq!(a.total_violations(), 0, "{:?}", a.violations());
    }

    #[test]
    fn fabric_floor_binds_cross_chip_pairs() {
        // Cross-chip floor: serialization (0.2 ns) + one hop (0.25 ns).
        let mut a = fabric_auditor(NetworkKind::TokenRing);
        let fabric = FabricConfig::grid(2, config());
        let dst = fabric.gateway(1).index();
        a.record(Time::ZERO, inject(1, 0, dst));
        a.record(Time::from_ps(300), deliver(1, 0, dst));
        assert_eq!(a.violations()[0].check, "physics.latency-below-floor");

        let mut b = fabric_auditor(NetworkKind::TokenRing);
        b.record(Time::ZERO, inject(1, 0, dst));
        b.record(Time::from_ns(5), deliver(1, 0, dst));
        assert_eq!(b.total_violations(), 0, "{:?}", b.violations());
    }

    #[test]
    fn fabric_inter_chip_bytes_reconciled_for_any_kind() {
        use crate::{MessageKind, Packet, PacketId};
        let fabric = FabricConfig::grid(2, config());
        let dst = fabric.gateway(1).index();
        let stats = |routed: u32| {
            let mut s = NetStats::new();
            s.on_inject(Time::ZERO);
            let mut p = Packet::new(
                PacketId(1),
                SiteId::from_index(0),
                SiteId::from_index(dst),
                64,
                MessageKind::Data,
                Time::ZERO,
            );
            p.routed_bytes = routed;
            p.delivered = Some(Time::from_ns(20));
            s.on_deliver(&p);
            s
        };

        // Two relay hops at 64 B each, matched by the routed counter:
        // clean — even for a kind (token ring) that has no electronic
        // relays on a single chip.
        let mut a = fabric_auditor(NetworkKind::TokenRing);
        a.record(Time::ZERO, inject(1, 0, dst));
        a.record(Time::from_ns(4), TraceEvent::Hop { packet: 1, at: 0 });
        a.record(Time::from_ns(9), TraceEvent::Hop { packet: 1, at: dst });
        a.record(Time::from_ns(20), deliver(1, 0, dst));
        let report = a.finalize(&stats(128), 0, Time::from_ns(20));
        assert!(report.is_clean(), "{:?}", report.violations);

        // A gateway relay whose bytes never land in the counter breaks
        // the fabric reconciliation invariant.
        let mut b = fabric_auditor(NetworkKind::TokenRing);
        b.record(Time::ZERO, inject(1, 0, dst));
        b.record(Time::from_ns(4), TraceEvent::Hop { packet: 1, at: 0 });
        b.record(Time::from_ns(9), TraceEvent::Hop { packet: 1, at: dst });
        b.record(Time::from_ns(20), deliver(1, 0, dst));
        let report = b.finalize(&stats(64), 0, Time::from_ns(20));
        assert!(report
            .violations
            .iter()
            .any(|v| v.check == "fabric.inter-chip-bytes"));
    }

    #[test]
    fn violation_cap_keeps_counting() {
        let mut a = auditor(NetworkKind::PointToPoint);
        for id in 0..(MAX_RECORDED_VIOLATIONS as u64 + 10) {
            a.record(Time::ZERO, deliver(id, 0, 1));
        }
        assert_eq!(a.violations().len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(a.total_violations(), MAX_RECORDED_VIOLATIONS as u64 + 10);
        // Finalize reconciliation against empty NetStats adds one more.
        let report = a.finalize(&NetStats::new(), 0, Time::ZERO);
        assert_eq!(report.violations.len(), MAX_RECORDED_VIOLATIONS);
        let unrecorded = report.total_violations - MAX_RECORDED_VIOLATIONS as u64;
        let lines = report.violation_lines();
        assert!(lines
            .last()
            .unwrap()
            .contains(&format!("{unrecorded} more violations")));
    }
}
