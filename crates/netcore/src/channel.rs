//! A serializing optical transmit channel with a bounded queue.

use crate::Packet;
use desim::{Span, Time};
use std::cell::Cell;
use std::collections::VecDeque;

/// A transmit channel: a fixed-bandwidth serializer fed by a bounded FIFO.
///
/// A channel transmits one item at a time; serialization takes
/// `bytes / bandwidth`. Networks call [`try_enqueue`](Self::try_enqueue)
/// at injection and [`begin_if_ready`](Self::begin_if_ready) whenever the
/// channel might be able to start its next item (on injection and when a
/// previous transmission finishes).
///
/// The payload type `T` is what the queue carries — a whole [`Packet`], a
/// slab [`PacketRef`](crate::PacketRef), or a bare circuit id — while the
/// byte count that determines serialization time travels alongside it
/// explicitly.
///
/// # Example
///
/// ```
/// use desim::Time;
/// use netcore::{MessageKind, Packet, PacketId, SiteId, TxChannel};
///
/// let mut ch: TxChannel<Packet> = TxChannel::new(2.5, 4); // one wavelength, queue of 4
/// let p = Packet::new(PacketId(0), SiteId::from_index(0), SiteId::from_index(1),
///                     64, MessageKind::Data, Time::ZERO);
/// ch.try_enqueue(p, p.bytes).unwrap();
/// let (sent, finish) = ch.begin_if_ready(Time::ZERO).unwrap();
/// assert_eq!(sent.id, PacketId(0));
/// assert_eq!(finish, Time::from_ps(25_600)); // 64 B at 2.5 B/ns
/// ```
#[derive(Debug, Clone)]
pub struct TxChannel<T = Packet> {
    bytes_per_ns: f64,
    /// Serialization memo for the last byte count seen. Traffic is
    /// dominated by one or two fixed packet sizes, so this single entry
    /// turns the per-transmission `bytes / bandwidth` division into a
    /// compare; it caches the same value the division would produce and
    /// is reset whenever the bandwidth changes.
    ser_memo: Cell<(u32, Span)>,
    queue: VecDeque<(T, u32)>,
    capacity: usize,
    busy_until: Time,
}

impl<T> TxChannel<T> {
    /// Creates a channel with `bytes_per_ns` bandwidth and a FIFO holding
    /// at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not strictly positive or the capacity is
    /// zero.
    pub fn new(bytes_per_ns: f64, capacity: usize) -> TxChannel<T> {
        assert!(
            bytes_per_ns > 0.0 && bytes_per_ns.is_finite(),
            "invalid channel bandwidth"
        );
        assert!(capacity > 0, "channel capacity must be positive");
        TxChannel {
            bytes_per_ns,
            ser_memo: Cell::new((64, Span::from_ns_f64(64.0 / bytes_per_ns))),
            queue: VecDeque::new(),
            capacity,
            busy_until: Time::ZERO,
        }
    }

    /// Queues an item of `bytes` payload for transmission.
    ///
    /// # Errors
    ///
    /// Returns the item back when the FIFO is full (injection
    /// backpressure).
    pub fn try_enqueue(&mut self, item: T, bytes: u32) -> Result<(), T> {
        if self.queue.len() >= self.capacity {
            Err(item)
        } else {
            self.queue.push_back((item, bytes));
            Ok(())
        }
    }

    /// If the channel is idle at `now` and has queued work, dequeues the
    /// head item, marks the channel busy for its serialization time, and
    /// returns the item together with the time its last bit leaves the
    /// transmitter.
    pub fn begin_if_ready(&mut self, now: Time) -> Option<(T, Time)> {
        if self.busy_until > now {
            return None;
        }
        let (item, bytes) = self.queue.pop_front()?;
        let finish = now + self.serialization(bytes);
        self.busy_until = finish;
        Some((item, finish))
    }

    /// Serialization delay for `bytes` at this channel's bandwidth.
    pub fn serialization(&self, bytes: u32) -> Span {
        let (memo_bytes, memo_span) = self.ser_memo.get();
        if memo_bytes == bytes {
            return memo_span;
        }
        let span = Span::from_ns_f64(bytes as f64 / self.bytes_per_ns);
        self.ser_memo.set((bytes, span));
        span
    }

    /// The instant the in-flight transmission (if any) completes.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Number of items waiting (not counting one in flight).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when the FIFO cannot accept another item.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Channel bandwidth in bytes per nanosecond.
    pub fn bytes_per_ns(&self) -> f64 {
        self.bytes_per_ns
    }

    /// Changes the channel bandwidth (wavelength loss or restoration).
    ///
    /// In-flight transmissions keep their already-computed finish time;
    /// only subsequent serializations see the new rate.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not strictly positive and finite.
    pub fn set_bytes_per_ns(&mut self, bytes_per_ns: f64) {
        assert!(
            bytes_per_ns > 0.0 && bytes_per_ns.is_finite(),
            "invalid channel bandwidth"
        );
        self.bytes_per_ns = bytes_per_ns;
        self.ser_memo
            .set((64, Span::from_ns_f64(64.0 / bytes_per_ns)));
    }

    /// Removes and returns every queued item (fault eviction).
    pub fn drain_queue(&mut self) -> Vec<T> {
        self.queue.drain(..).map(|(item, _)| item).collect()
    }

    /// Peek at the head item without dequeuing it.
    pub fn peek(&self) -> Option<&T> {
        self.queue.front().map(|(item, _)| item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MessageKind, PacketId, SiteId};

    fn packet(id: u64, bytes: u32) -> Packet {
        Packet::new(
            PacketId(id),
            SiteId::from_index(0),
            SiteId::from_index(1),
            bytes,
            MessageKind::Data,
            Time::ZERO,
        )
    }

    #[test]
    fn serializes_at_configured_bandwidth() {
        let mut ch: TxChannel = TxChannel::new(5.0, 4); // p2p channel: 5 B/ns
        let p = packet(0, 64);
        ch.try_enqueue(p, p.bytes).unwrap();
        let (_, finish) = ch.begin_if_ready(Time::ZERO).unwrap();
        // 64 B / 5 B/ns = 12.8 ns.
        assert_eq!(finish, Time::from_ps(12_800));
    }

    #[test]
    fn one_packet_at_a_time() {
        let mut ch: TxChannel = TxChannel::new(5.0, 4);
        ch.try_enqueue(packet(0, 64), 64).unwrap();
        ch.try_enqueue(packet(1, 64), 64).unwrap();
        let (first, f1) = ch.begin_if_ready(Time::ZERO).unwrap();
        assert_eq!(first.id, PacketId(0));
        // Channel is busy; the second cannot start early.
        assert!(ch.begin_if_ready(Time::ZERO).is_none());
        assert!(ch.begin_if_ready(f1 - Span::from_ps(1)).is_none());
        let (second, f2) = ch.begin_if_ready(f1).unwrap();
        assert_eq!(second.id, PacketId(1));
        assert_eq!(f2, f1 + Span::from_ps(12_800));
    }

    #[test]
    fn backpressure_when_full() {
        let mut ch: TxChannel = TxChannel::new(5.0, 2);
        ch.try_enqueue(packet(0, 64), 64).unwrap();
        ch.try_enqueue(packet(1, 64), 64).unwrap();
        assert!(ch.is_full());
        let rejected = ch.try_enqueue(packet(2, 64), 64).unwrap_err();
        assert_eq!(rejected.id, PacketId(2));
    }

    #[test]
    fn idle_channel_with_empty_queue_does_nothing() {
        let mut ch: TxChannel = TxChannel::new(5.0, 2);
        assert!(ch.begin_if_ready(Time::from_ns(10)).is_none());
        assert!(ch.is_empty());
    }

    #[test]
    fn control_packets_are_fast() {
        let ch: TxChannel = TxChannel::new(40.0, 2); // two-phase channel
        assert_eq!(ch.serialization(8), Span::from_ps(200));
        assert_eq!(ch.serialization(64), Span::from_ps(1_600));
    }

    #[test]
    fn carries_non_packet_payloads() {
        // Circuit setup markers ride the control mesh as bare ids.
        let mut ch: TxChannel<u64> = TxChannel::new(2.5, 4);
        ch.try_enqueue(7, 8).unwrap();
        let (id, finish) = ch.begin_if_ready(Time::ZERO).unwrap();
        assert_eq!(id, 7);
        assert_eq!(finish, Time::from_ps(3_200)); // 8 B at 2.5 B/ns
    }

    #[test]
    #[should_panic(expected = "invalid channel bandwidth")]
    fn zero_bandwidth_rejected() {
        let _: TxChannel = TxChannel::new(0.0, 1);
    }
}
