//! Slab allocator for in-flight packets.
//!
//! Networks used to carry whole [`Packet`] values (~104 bytes) inside
//! their event payloads and hold queues; the slab replaces that with
//! 4-byte [`PacketRef`] indices into a per-network arena whose slots are
//! recycled through a free list. Delivery takes the packet back out of the
//! slab, so at a clean idle every slot has returned to the free list —
//! an invariant the audit layer checks after each run.
//!
//! The recycling policy itself is a differential-test axis: in
//! [`SlabMode::Append`] mode the free list is never reused, so any stale
//! `PacketRef` held past its `take` would read the old (poisoned) slot
//! instead of silently aliasing a recycled packet. The kernel-equivalence
//! harness runs whole simulations in both modes and byte-compares the
//! results. Select with [`set_thread_mode`] or `NETCORE_PACKET_SLAB=append`.

use crate::Packet;

/// Index of a live packet inside a [`PacketSlab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef(u32);

impl PacketRef {
    /// The raw slot index (stable for the packet's time in the slab).
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Slot-recycling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlabMode {
    /// Recycle freed slots through a free list (default).
    Recycle,
    /// Never reuse slots; the arena only grows. Reference mode for the
    /// differential harness — index aliasing bugs change results here.
    Append,
}

fn env_mode() -> SlabMode {
    static FROM_ENV: std::sync::OnceLock<SlabMode> = std::sync::OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("NETCORE_PACKET_SLAB").as_deref() {
        Ok("append") => SlabMode::Append,
        _ => SlabMode::Recycle,
    })
}

thread_local! {
    static THREAD_MODE: std::cell::Cell<Option<SlabMode>> = const { std::cell::Cell::new(None) };
}

/// Overrides the mode used by [`PacketSlab::new`] on this thread (`None`
/// restores the process default).
pub fn set_thread_mode(mode: Option<SlabMode>) {
    THREAD_MODE.with(|m| m.set(mode));
}

/// The mode [`PacketSlab::new`] will pick on this thread.
pub fn current_mode() -> SlabMode {
    THREAD_MODE.with(|m| m.get()).unwrap_or_else(env_mode)
}

/// Allocation counters, exposed through `Network::slab_stats` and checked
/// by the audit layer's slab-leak invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabStats {
    /// Packets ever inserted.
    pub allocated: u64,
    /// Packets ever taken back out.
    pub freed: u64,
    /// Packets currently resident (`allocated - freed`).
    pub live: u64,
    /// Maximum simultaneous residency observed.
    pub high_water: u64,
    /// Arena capacity in slots.
    pub slots: usize,
}

impl SlabStats {
    /// Merges counters from another slab (wrappers aggregate inner slabs).
    pub fn merge(self, other: SlabStats) -> SlabStats {
        SlabStats {
            allocated: self.allocated + other.allocated,
            freed: self.freed + other.freed,
            live: self.live + other.live,
            high_water: self.high_water + other.high_water,
            slots: self.slots + other.slots,
        }
    }
}

/// An arena of in-flight packets addressed by [`PacketRef`].
#[derive(Debug, Clone)]
pub struct PacketSlab {
    slots: Vec<Packet>,
    free: Vec<u32>,
    mode: SlabMode,
    allocated: u64,
    freed: u64,
    high_water: u64,
}

impl PacketSlab {
    /// Creates an empty slab on the thread's current [`SlabMode`].
    pub fn new() -> PacketSlab {
        PacketSlab::with_mode(current_mode())
    }

    /// Creates an empty slab with an explicit recycling policy.
    pub fn with_mode(mode: SlabMode) -> PacketSlab {
        PacketSlab {
            // A few cache-lines' worth of slots up front: steady-state
            // traffic then grows the slab rarely, and construction is off
            // every measured path.
            slots: Vec::with_capacity(512),
            free: Vec::with_capacity(512),
            mode,
            allocated: 0,
            freed: 0,
            high_water: 0,
        }
    }

    /// Stores `packet`, returning its slot reference.
    pub fn insert(&mut self, packet: Packet) -> PacketRef {
        self.allocated += 1;
        let live = self.allocated - self.freed;
        if live > self.high_water {
            self.high_water = live;
        }
        if self.mode == SlabMode::Recycle {
            if let Some(idx) = self.free.pop() {
                self.slots[idx as usize] = packet;
                return PacketRef(idx);
            }
        }
        let idx = u32::try_from(self.slots.len()).expect("packet slab overflow");
        self.slots.push(packet);
        PacketRef(idx)
    }

    /// Reads a resident packet.
    pub fn get(&self, r: PacketRef) -> &Packet {
        &self.slots[r.0 as usize]
    }

    /// Mutates a resident packet (timestamp/stat stamping in place).
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet {
        &mut self.slots[r.0 as usize]
    }

    /// Removes the packet, releasing the slot for recycling.
    pub fn take(&mut self, r: PacketRef) -> Packet {
        self.freed += 1;
        let packet = self.slots[r.0 as usize];
        if self.mode == SlabMode::Recycle {
            self.free.push(r.0);
        }
        packet
    }

    /// Packets currently resident.
    pub fn live(&self) -> u64 {
        self.allocated - self.freed
    }

    /// Allocation counters for the audit layer.
    pub fn stats(&self) -> SlabStats {
        SlabStats {
            allocated: self.allocated,
            freed: self.freed,
            live: self.live(),
            high_water: self.high_water,
            slots: self.slots.len(),
        }
    }
}

impl Default for PacketSlab {
    fn default() -> Self {
        PacketSlab::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MessageKind, PacketId, SiteId};
    use desim::Time;

    fn packet(id: u64) -> Packet {
        Packet::new(
            PacketId(id),
            SiteId::from_index(0),
            SiteId::from_index(1),
            64,
            MessageKind::Data,
            Time::ZERO,
        )
    }

    #[test]
    fn recycles_slots_after_drain() {
        let mut slab = PacketSlab::with_mode(SlabMode::Recycle);
        let refs: Vec<PacketRef> = (0..8).map(|i| slab.insert(packet(i))).collect();
        assert_eq!(slab.stats().slots, 8);
        for r in refs {
            slab.take(r);
        }
        // A fully drained slab reuses its slots: the arena must not grow.
        for i in 8..16 {
            slab.insert(packet(i));
        }
        assert_eq!(slab.stats().slots, 8, "drained slots must be reused");
        assert_eq!(slab.stats().high_water, 8);
    }

    #[test]
    fn append_mode_never_reuses_indices() {
        let mut slab = PacketSlab::with_mode(SlabMode::Append);
        let a = slab.insert(packet(0));
        slab.take(a);
        let b = slab.insert(packet(1));
        assert_ne!(a, b, "append mode must hand out fresh indices");
        assert_eq!(slab.stats().slots, 2);
    }

    #[test]
    fn no_aliasing_under_interleaved_inject_and_deliver() {
        // Two independent slabs (as two networks would own) with
        // interleaved inserts and takes: every ref must read back exactly
        // the packet it was created for, despite slot recycling.
        let mut left = PacketSlab::with_mode(SlabMode::Recycle);
        let mut right = PacketSlab::with_mode(SlabMode::Recycle);
        let mut live: Vec<(bool, PacketRef, u64)> = Vec::new();
        let mut next_id = 0u64;
        for step in 0u64..1000 {
            // Deterministic interleaving: mix inserts and takes, biased to
            // churn both slabs' free lists.
            let action = (step * 2654435761) % 5;
            if action < 3 || live.is_empty() {
                let use_left = step % 2 == 0;
                let slab = if use_left { &mut left } else { &mut right };
                let r = slab.insert(packet(next_id));
                live.push((use_left, r, next_id));
                next_id += 1;
            } else {
                let pick = usize::try_from(step * 40503).unwrap() % live.len();
                let (use_left, r, id) = live.swap_remove(pick);
                let slab = if use_left { &mut left } else { &mut right };
                assert_eq!(slab.get(r).id, PacketId(id), "ref read stale slot");
                let p = slab.take(r);
                assert_eq!(p.id, PacketId(id));
            }
        }
        // Drain the rest; each must still resolve to its own packet.
        for (use_left, r, id) in live {
            let slab = if use_left { &mut left } else { &mut right };
            assert_eq!(slab.take(r).id, PacketId(id));
        }
        assert_eq!(left.live(), 0);
        assert_eq!(right.live(), 0);
    }

    #[test]
    fn leak_check_returns_to_high_water_free_count_at_idle() {
        let mut slab = PacketSlab::with_mode(SlabMode::Recycle);
        let refs: Vec<PacketRef> = (0..32).map(|i| slab.insert(packet(i))).collect();
        for r in refs {
            slab.take(r);
        }
        let s = slab.stats();
        assert_eq!(s.live, 0, "idle slab must hold no packets");
        assert_eq!(s.allocated, s.freed);
        // Every high-water slot is back on the free list.
        assert_eq!(s.slots as u64, s.high_water);
        assert_eq!(slab.free.len() as u64, s.high_water);
    }

    #[test]
    fn thread_mode_override_controls_new() {
        set_thread_mode(Some(SlabMode::Append));
        assert_eq!(PacketSlab::new().mode, SlabMode::Append);
        set_thread_mode(None);
        assert_eq!(PacketSlab::new().mode, current_mode());
    }
}
