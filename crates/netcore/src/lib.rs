//! Shared abstractions for the macrochip's inter-site networks.
//!
//! Everything the five network architectures have in common lives here:
//!
//! * [`SiteId`] and [`Grid`] — the 8×8 site address space (§3);
//! * [`Packet`] and [`MessageKind`] — what moves through a network;
//! * [`MacrochipConfig`] — the simulated configuration (paper Table 4);
//! * [`TxChannel`] — a serializing optical channel with a bounded queue;
//! * [`Network`] — the trait every architecture implements, so the
//!   experiment harness can drive them interchangeably;
//! * [`NetStats`] — injection/delivery/latency accounting, including the
//!   per-phase latency breakdown ([`Phase`]);
//! * [`metrics`] — the unified [`MetricsRegistry`] with deterministic
//!   JSON/CSV snapshots.
//!
//! # Example
//!
//! ```
//! use netcore::{Grid, MacrochipConfig};
//!
//! let config = MacrochipConfig::scaled();          // paper Table 4
//! assert_eq!(config.grid.sites(), 64);
//! assert_eq!(config.cores_per_site, 8);
//! assert!((config.site_bandwidth_bytes_per_ns() - 320.0).abs() < 1e-9);
//! ```

pub mod audit;
mod channel;
mod config;
mod fabric;
mod fault;
pub mod hash;
pub mod metrics;
mod network;
mod packet;
mod site;
pub mod slab;
pub mod stats;
mod traffic;

pub use audit::{AuditReport, AuditViolation, Auditor};
pub use channel::TxChannel;
pub use config::MacrochipConfig;
pub use fabric::{FabricConfig, InterChipLinkConfig};
pub use fault::{FaultResponse, NetFault};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use network::{Network, NetworkKind};
pub use packet::{MessageKind, Packet, PacketId};
pub use site::{fast_div, fast_rem, Grid, SiteId};
pub use slab::{PacketRef, PacketSlab, SlabMode, SlabStats};
pub use stats::{NetStats, Phase};
pub use traffic::{ObservedSource, PacketSource};
