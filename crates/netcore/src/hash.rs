//! A tiny deterministic hasher for simulator-internal maps.
//!
//! The circuit network keys its live-circuit table by a monotonically
//! assigned `u64` and its dead-segment set by site index pairs — hot maps
//! touched on every setup hop. SipHash (std's default) costs more than
//! the lookup itself for such small keys; this is the classic `FxHash`
//! multiply-rotate mix used throughout rustc, written out here because
//! the simulator vendors no external crates. The hash is fixed (no
//! per-process random seed), but simulator results must never depend on
//! iteration order anyway — these maps are for keyed lookups only.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` hashed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Builds [`FxHasher`]s (zero-sized, `Default`-constructed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHash` function: a fast multiply-rotate word mixer.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_store_and_retrieve() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(u64::MAX, "max");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.remove(&u64::MAX), Some("max"));
        assert!(!m.contains_key(&u64::MAX));

        let mut s: FxHashSet<(usize, usize)> = FxHashSet::default();
        s.insert((3, 4));
        assert!(s.contains(&(3, 4)));
        assert!(!s.contains(&(4, 3)));
    }

    #[test]
    fn hashing_is_deterministic_across_hashers() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());

        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]); // exercises the tail path
        let mut d = FxHasher::default();
        d.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(c.finish(), d.finish());
        assert_ne!(a.finish(), c.finish());
    }
}
