//! Unified metrics registry: named counters, gauges and latency
//! histograms with deterministic snapshots.
//!
//! Every run of the simulator can flatten its statistics into a
//! [`MetricsRegistry`] under stable dotted names (`net.injected`,
//! `phase.queueing`, …), then export a [`MetricsSnapshot`] to JSON here or
//! to CSV via `macrochip::report`. Registries store entries in `BTreeMap`s,
//! so two runs that record the same values produce **byte-identical**
//! snapshots — the determinism tests rely on this.
//!
//! # Example
//!
//! ```
//! use netcore::metrics::MetricsRegistry;
//! use desim::Span;
//!
//! let mut reg = MetricsRegistry::new();
//! reg.add_counter("net.injected", 10);
//! reg.set_gauge("net.throughput_gbps", 4.5);
//! reg.record_latency("latency.e2e", Span::from_ns(120));
//! let snap = reg.snapshot();
//! assert!(snap.to_json().contains("\"net.injected\": 10"));
//! ```

use crate::stats::{NetStats, Phase};
use desim::stats::LatencyHistogram;
use desim::Span;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A collection of named metrics for one run.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `n` to the named counter, creating it at zero.
    pub fn add_counter(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into the named latency histogram.
    pub fn record_latency(&mut self, name: &str, sample: Span) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(sample);
    }

    /// Merges a whole histogram into the named one.
    pub fn merge_histogram(&mut self, name: &str, hist: &LatencyHistogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(hist);
    }

    /// Merges another registry into this one: counters add, gauges take
    /// `other`'s value, histograms pool their samples.
    ///
    /// This is the parallel-campaign reduction: each worker accumulates
    /// its shard's metrics into a private registry, and the per-worker
    /// registries are merged **in canonical shard order** afterwards.
    /// Counter sums and histogram merges are order-independent; gauges are
    /// last-write-wins, so merging in input order reproduces exactly what
    /// a serial run recording the same shards in sequence would hold.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, n) in &other.counters {
            self.add_counter(name, *n);
        }
        for (name, v) in &other.gauges {
            self.set_gauge(name, *v);
        }
        for (name, h) in &other.histograms {
            self.merge_histogram(name, h);
        }
    }

    /// Flattens a network's [`NetStats`] into the registry under the
    /// standard names: `net.*` counters/gauges, `latency.*` end-to-end
    /// histograms and `phase.*` per-phase breakdown histograms.
    pub fn record_net_stats(&mut self, stats: &NetStats) {
        self.add_counter("net.injected", stats.injected_packets());
        self.add_counter("net.rejected", stats.rejected_packets());
        self.add_counter("net.dropped", stats.dropped_packets());
        self.add_counter("net.delivered", stats.delivered_packets());
        self.add_counter("net.delivered_bytes", stats.delivered_bytes());
        self.add_counter("net.routed_bytes", stats.routed_bytes());
        self.add_counter("net.wasted_slots", stats.wasted_slots());
        self.set_gauge("net.throughput_gbps", stats.throughput_gbps());
        self.set_gauge("net.jain_fairness", stats.jain_fairness());
        self.merge_histogram("latency.e2e", stats.latency());
        self.merge_histogram("latency.data", stats.data_latency());
        self.merge_histogram("latency.control", stats.control_latency());
        for phase in Phase::ALL {
            self.merge_histogram(
                &format!("phase.{}", phase.name()),
                stats.phase_latency(phase),
            );
        }
    }

    /// Flattens a host-side profiler report into the registry under the
    /// `host.*` family: throughput gauges (events/sec, packets/sec,
    /// wall-clock, peak RSS), cache hit/miss counters with mean
    /// latencies, and per-span self/total wall-clock.
    ///
    /// `host.*` values are wall-clock-derived and therefore **not**
    /// deterministic across reruns — callers that byte-compare snapshots
    /// must either skip this method or strip the family first (the
    /// `macrochip` CLI records it only behind `--host-metrics`).
    pub fn record_host_stats(&mut self, wall_ms: f64, report: &desim::prof::ProfReport) {
        use desim::prof::Counter;
        let events = report.counter(Counter::SimEvents);
        let packets = report.counter(Counter::Packets);
        let wall_s = wall_ms / 1e3;
        self.add_counter("host.events", events);
        self.add_counter("host.packets", packets);
        self.add_counter("host.points_done", report.counter(Counter::PointsDone));
        self.set_gauge("host.wall_clock_ms", wall_ms);
        if wall_s > 0.0 {
            self.set_gauge("host.events_per_sec", events as f64 / wall_s);
            self.set_gauge("host.packets_per_sec", packets as f64 / wall_s);
        }
        self.set_gauge("host.peak_rss_bytes", desim::prof::peak_rss_bytes() as f64);
        let hits = report.counter(Counter::CacheHits);
        let misses = report.counter(Counter::CacheMisses);
        self.add_counter("host.cache.hits", hits);
        self.add_counter("host.cache.misses", misses);
        if hits > 0 {
            self.set_gauge(
                "host.cache.hit_ms_mean",
                report.counter(Counter::CacheHitNs) as f64 / hits as f64 / 1e6,
            );
        }
        if misses > 0 {
            self.set_gauge(
                "host.cache.miss_ms_mean",
                report.counter(Counter::CacheMissNs) as f64 / misses as f64 / 1e6,
            );
        }
        for span in report.spans.iter().filter(|s| s.count > 0) {
            let name = span.site.name();
            self.add_counter(&format!("host.span.{name}.count"), span.count);
            self.set_gauge(
                &format!("host.span.{name}.self_ms"),
                span.self_ns as f64 / 1e6,
            );
            self.set_gauge(
                &format!("host.span.{name}.total_ms"),
                span.total_ns as f64 / 1e6,
            );
        }
    }

    /// A deterministic, ordered snapshot of everything recorded.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: self.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSummary::of(h)))
                .collect(),
        }
    }
}

/// Summary statistics of one latency histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    pub count: u64,
    pub mean_ns: f64,
    pub p50_ns: f64,
    pub p95_ns: f64,
    pub p99_ns: f64,
    pub max_ns: f64,
}

impl HistogramSummary {
    /// Summarizes a histogram.
    pub fn of(h: &LatencyHistogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            mean_ns: h.mean().as_ns_f64(),
            p50_ns: h.percentile(0.5).as_ns_f64(),
            p95_ns: h.p95().as_ns_f64(),
            p99_ns: h.p99().as_ns_f64(),
            max_ns: h.max().as_ns_f64(),
        }
    }
}

/// An ordered, immutable snapshot of a [`MetricsRegistry`].
///
/// Field order is sorted by name, so serializations are reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSummary)>,
}

/// Formats an `f64` as a JSON number (non-finite values become `null`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Serializes the snapshot as a JSON object with `counters`, `gauges`
    /// and `histograms` sections.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", json_escape(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {}", json_escape(name), json_f64(*v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\":{},\"mean_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                json_escape(name),
                h.count,
                json_f64(h.mean_ns),
                json_f64(h.p50_ns),
                json_f64(h.p95_ns),
                json_f64(h.p99_ns),
                json_f64(h.max_ns),
            );
        }
        out.push_str("\n  }\n}");
        out
    }

    /// Flattens the snapshot into `(name, kind, field, value)` rows for
    /// tabular export; `macrochip::report` renders these as CSV.
    pub fn rows(&self) -> Vec<[String; 4]> {
        let mut rows = Vec::new();
        for (name, v) in &self.counters {
            rows.push([
                name.clone(),
                "counter".into(),
                "value".into(),
                v.to_string(),
            ]);
        }
        for (name, v) in &self.gauges {
            rows.push([name.clone(), "gauge".into(), "value".into(), json_f64(*v)]);
        }
        for (name, h) in &self.histograms {
            let fields = [
                ("count", h.count as f64),
                ("mean_ns", h.mean_ns),
                ("p50_ns", h.p50_ns),
                ("p95_ns", h.p95_ns),
                ("p99_ns", h.p99_ns),
                ("max_ns", h.max_ns),
            ];
            for (field, v) in fields {
                rows.push([name.clone(), "histogram".into(), field.into(), json_f64(v)]);
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::trace::validate_json;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("net.injected", 7);
        reg.add_counter("net.injected", 3);
        reg.set_gauge("net.throughput_gbps", 12.5);
        for ns in [10u64, 20, 400] {
            reg.record_latency("latency.e2e", Span::from_ns(ns));
        }
        reg
    }

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let mut reg = sample_registry();
        reg.add_counter("a.first", 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0], ("a.first".to_string(), 1));
        assert_eq!(snap.counters[1], ("net.injected".to_string(), 10));
    }

    #[test]
    fn snapshot_json_is_valid_and_deterministic() {
        let a = sample_registry().snapshot().to_json();
        let b = sample_registry().snapshot().to_json();
        assert_eq!(a, b);
        validate_json(&a).expect("snapshot JSON must be well-formed");
        assert!(a.contains("\"net.injected\": 10"));
        assert!(a.contains("\"latency.e2e\""));
        assert!(a.contains("\"p99_ns\""));
    }

    #[test]
    fn net_stats_flatten_under_standard_names() {
        use crate::{MessageKind, Packet, PacketId, SiteId};
        use desim::Time;
        let mut stats = NetStats::new();
        stats.on_inject(Time::ZERO);
        let mut p = Packet::new(
            PacketId(0),
            SiteId::from_index(0),
            SiteId::from_index(1),
            64,
            MessageKind::Data,
            Time::ZERO,
        );
        p.arb_start = Some(Time::ZERO);
        p.tx_start = Some(Time::from_ns(5));
        p.tx_end = Some(Time::from_ns(18));
        p.delivered = Some(Time::from_ns(20));
        stats.on_deliver(&p);

        let mut reg = MetricsRegistry::new();
        reg.record_net_stats(&stats);
        let snap = reg.snapshot();
        let json = snap.to_json();
        for key in [
            "net.injected",
            "net.delivered",
            "latency.e2e",
            "phase.queueing",
            "phase.arb_wait",
            "phase.serialization",
            "phase.propagation",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let arb = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "phase.arb_wait")
            .unwrap();
        assert_eq!(arb.1.count, 1);
        assert_eq!(arb.1.mean_ns, 5.0);
    }

    #[test]
    fn rows_cover_every_metric() {
        let snap = sample_registry().snapshot();
        let rows = snap.rows();
        assert!(rows.iter().any(|r| r[0] == "net.injected"));
        assert!(rows
            .iter()
            .any(|r| r[0] == "latency.e2e" && r[2] == "p99_ns"));
    }

    #[test]
    fn merge_pools_counters_and_histograms_deterministically() {
        let mut a = MetricsRegistry::new();
        a.add_counter("net.delivered", 10);
        a.set_gauge("run.offered_load", 0.1);
        a.record_latency("latency.e2e", Span::from_ns(100));
        let mut b = MetricsRegistry::new();
        b.add_counter("net.delivered", 32);
        b.add_counter("net.dropped", 1);
        b.set_gauge("run.offered_load", 0.2);
        b.record_latency("latency.e2e", Span::from_ns(300));

        // Serial reference: record a's shard then b's into one registry.
        let mut serial = MetricsRegistry::new();
        serial.merge(&a);
        serial.merge(&b);

        let mut merged = MetricsRegistry::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(serial.snapshot().to_json(), merged.snapshot().to_json());

        let snap = merged.snapshot();
        assert!(snap.to_json().contains("\"net.delivered\": 42"));
        assert!(snap.to_json().contains("\"net.dropped\": 1"));
        // Last-write-wins gauge: b's value.
        assert!(snap.to_json().contains("\"run.offered_load\": 0.2"));
        let (_, hist) = snap
            .histograms
            .iter()
            .find(|(n, _)| n == "latency.e2e")
            .expect("merged histogram present");
        assert_eq!(hist.count, 2);
        assert_eq!(hist.mean_ns, 200.0);
    }

    #[test]
    fn host_stats_flatten_under_host_names() {
        use desim::prof::{Counter, ProfReport, Site, SpanStats};
        let report = ProfReport {
            spans: vec![SpanStats {
                site: Site::Dispatch,
                count: 4,
                total_ns: 8_000_000,
                self_ns: 2_000_000,
            }],
            counters: vec![
                (Counter::SimEvents, 1_000),
                (Counter::Packets, 250),
                (Counter::CacheHits, 2),
                (Counter::CacheHitNs, 4_000_000),
            ],
        };
        let mut reg = MetricsRegistry::new();
        reg.record_host_stats(500.0, &report);
        let json = reg.snapshot().to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"host.events\": 1000"), "{json}");
        assert!(json.contains("\"host.events_per_sec\": 2000"), "{json}");
        assert!(json.contains("\"host.packets_per_sec\": 500"), "{json}");
        assert!(json.contains("\"host.cache.hits\": 2"), "{json}");
        assert!(json.contains("\"host.cache.hit_ms_mean\": 2"), "{json}");
        assert!(json.contains("\"host.span.dispatch.count\": 4"), "{json}");
        assert!(json.contains("\"host.span.dispatch.self_ms\": 2"), "{json}");
        assert!(
            !json.contains("host.cache.miss_ms_mean"),
            "no misses recorded: {json}"
        );
    }

    #[test]
    fn non_finite_gauges_become_null() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("bad", f64::NAN);
        let json = reg.snapshot().to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"bad\": null"));
    }
}
