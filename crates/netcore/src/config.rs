//! The simulated macrochip configuration (paper Table 4 and §4).

use crate::Grid;
use photonics::geometry::Layout;

/// Configuration of the simulated macrochip (paper Table 4), plus the
/// simulator's packet-size and queueing knobs.
///
/// The paper's simulated system is the 2015 target scaled down 8×: 64
/// sites, 8 cores per site, 128 transmitters/receivers per site, 8
/// wavelengths per waveguide, 320 GB/s per site and 20 TB/s peak.
///
/// # Example
///
/// ```
/// use netcore::MacrochipConfig;
///
/// let c = MacrochipConfig::scaled();
/// assert_eq!(c.total_peak_bytes_per_ns(), 20_480.0); // 20 TB/s
/// assert_eq!(c.tx_per_site, 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacrochipConfig {
    /// The site grid (8×8).
    pub grid: Grid,
    /// The physical layout used for propagation delays.
    pub layout: Layout,
    /// Cores per site (Table 4: 8).
    pub cores_per_site: usize,
    /// Shared L2 per site in kilobytes (Table 4: 256).
    pub l2_kb: usize,
    /// Hardware threads per core (Table 4: 1).
    pub threads_per_core: usize,
    /// Transmitters (and receivers) per site (§4: 128).
    pub tx_per_site: usize,
    /// Wavelengths multiplexed per waveguide (§4: 8).
    pub wavelengths_per_waveguide: usize,
    /// One wavelength channel's bandwidth in bytes/ns (20 Gb/s = 2.5).
    pub lambda_bytes_per_ns: f64,
    /// Core clock in GHz (§3: 5 GHz).
    pub core_clock_ghz: f64,
    /// Cache-line data packet size on the wire, in bytes.
    pub data_bytes: u32,
    /// Small protocol message size on the wire, in bytes.
    pub control_bytes: u32,
    /// Per-channel injection queue capacity, in packets.
    pub queue_capacity: usize,
}

impl MacrochipConfig {
    /// The full 2015-target configuration of §3: 64 cores per site, 1024
    /// transmitters/receivers per site at 20 Gb/s (2.56 TB/s per site,
    /// 160 TB/s aggregate), 16 wavelengths per waveguide. The paper
    /// simulates the 8×-scaled-down system ([`scaled`](Self::scaled));
    /// this configuration feeds the analytic power/complexity models and
    /// scaling studies.
    pub fn full_2015() -> MacrochipConfig {
        MacrochipConfig {
            cores_per_site: 64,
            tx_per_site: 1024,
            wavelengths_per_waveguide: 16,
            ..MacrochipConfig::scaled()
        }
    }

    /// The scaled configuration on an `side`×`side` site grid: the
    /// generation knob behind `--side`. Side 8 is [`scaled`](Self::scaled)
    /// exactly; larger sides keep the per-site provisioning of Table 4
    /// (so per-site bandwidth is constant and aggregate bandwidth grows
    /// with the site count) while the layout keeps the 2.5 cm pitch, so
    /// time of flight grows with physical span.
    pub fn with_side(side: usize) -> MacrochipConfig {
        MacrochipConfig {
            grid: Grid::new(side),
            layout: Layout::new(side, 2.5, 0.1),
            ..MacrochipConfig::scaled()
        }
    }

    /// The paper's simulated configuration (Table 4).
    pub fn scaled() -> MacrochipConfig {
        MacrochipConfig {
            grid: Grid::new(8),
            layout: Layout::macrochip(),
            cores_per_site: 8,
            l2_kb: 256,
            threads_per_core: 1,
            tx_per_site: 128,
            wavelengths_per_waveguide: 8,
            lambda_bytes_per_ns: 2.5,
            core_clock_ghz: 5.0,
            data_bytes: 64,
            control_bytes: 8,
            queue_capacity: 16,
        }
    }

    /// Duration of one core clock cycle.
    pub fn cycle(&self) -> desim::Span {
        desim::Span::from_ns_f64(1.0 / self.core_clock_ghz)
    }

    /// Peak injection bandwidth of one site in bytes/ns (Table 4:
    /// 320 GB/s).
    pub fn site_bandwidth_bytes_per_ns(&self) -> f64 {
        self.tx_per_site as f64 * self.lambda_bytes_per_ns
    }

    /// Total peak network bandwidth in bytes/ns (Table 4: 20 TB/s).
    pub fn total_peak_bytes_per_ns(&self) -> f64 {
        self.site_bandwidth_bytes_per_ns() * self.grid.sites() as f64
    }

    /// Bandwidth of a channel built from `lambdas` wavelengths.
    pub fn channel_bytes_per_ns(&self, lambdas: usize) -> f64 {
        self.lambda_bytes_per_ns * lambdas as f64
    }

    /// Wire size of a message of `kind`.
    pub fn message_bytes(&self, kind: crate::MessageKind) -> u32 {
        if kind.is_control_sized() {
            self.control_bytes
        } else {
            self.data_bytes
        }
    }

    /// Validates internal consistency; called by network constructors.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth or sizing fields are non-positive.
    pub fn validate(&self) {
        assert!(self.cores_per_site > 0, "cores_per_site must be positive");
        assert!(self.tx_per_site > 0, "tx_per_site must be positive");
        assert!(
            self.lambda_bytes_per_ns > 0.0,
            "lambda bandwidth must be positive"
        );
        assert!(self.data_bytes > 0, "data packets must be non-empty");
        assert!(self.queue_capacity > 0, "queues must hold packets");
        assert_eq!(
            self.grid.side(),
            self.layout.side(),
            "grid and layout disagree on side length"
        );
    }
}

impl Default for MacrochipConfig {
    fn default() -> Self {
        MacrochipConfig::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MessageKind;

    #[test]
    fn table4_values() {
        let c = MacrochipConfig::scaled();
        assert_eq!(c.grid.sites(), 64);
        assert_eq!(c.l2_kb, 256);
        assert_eq!(c.cores_per_site, 8);
        assert_eq!(c.threads_per_core, 1);
        // 320 GB/s per site, 20 TB/s total.
        assert!((c.site_bandwidth_bytes_per_ns() - 320.0).abs() < 1e-9);
        assert!((c.total_peak_bytes_per_ns() - 20_480.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_is_200ps_at_5ghz() {
        assert_eq!(MacrochipConfig::scaled().cycle(), desim::Span::from_ps(200));
    }

    #[test]
    fn channel_bandwidths_per_architecture() {
        let c = MacrochipConfig::scaled();
        assert_eq!(c.channel_bytes_per_ns(2), 5.0); // point-to-point
        assert_eq!(c.channel_bytes_per_ns(8), 20.0); // limited p2p
        assert_eq!(c.channel_bytes_per_ns(16), 40.0); // two-phase
        assert_eq!(c.channel_bytes_per_ns(128), 320.0); // token ring bundle
    }

    #[test]
    fn message_sizes() {
        let c = MacrochipConfig::scaled();
        assert_eq!(c.message_bytes(MessageKind::Data), 64);
        assert_eq!(c.message_bytes(MessageKind::Ack), 8);
    }

    #[test]
    fn default_config_is_valid() {
        MacrochipConfig::scaled().validate();
    }

    #[test]
    fn full_2015_matches_section3() {
        let c = MacrochipConfig::full_2015();
        c.validate();
        // §3: 2.56 TB/s into and out of each site; 160 TB/s aggregate.
        assert!((c.site_bandwidth_bytes_per_ns() - 2_560.0).abs() < 1e-9);
        assert!((c.total_peak_bytes_per_ns() / 1024.0 - 160.0).abs() < 1e-9);
        assert_eq!(c.cores_per_site, 64);
        // The simulated system is this scaled down by 8x in both compute
        // and bandwidth (§4).
        let s = MacrochipConfig::scaled();
        assert_eq!(c.tx_per_site, 8 * s.tx_per_site);
        assert_eq!(c.cores_per_site, 8 * s.cores_per_site);
    }

    #[test]
    fn with_side_8_is_the_scaled_config() {
        assert_eq!(MacrochipConfig::with_side(8), MacrochipConfig::scaled());
    }

    #[test]
    fn with_side_scales_sites_and_aggregate_bandwidth() {
        for side in [4usize, 8, 16, 24, 32] {
            let c = MacrochipConfig::with_side(side);
            c.validate();
            assert_eq!(c.grid.sites(), side * side);
            assert_eq!(c.layout.side(), side);
            // Per-site provisioning is fixed; the aggregate grows.
            assert!((c.site_bandwidth_bytes_per_ns() - 320.0).abs() < 1e-9);
            assert!((c.total_peak_bytes_per_ns() - 320.0 * (side * side) as f64).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mismatched_grid_and_layout_rejected() {
        let mut c = MacrochipConfig::scaled();
        c.grid = Grid::new(4);
        c.validate();
    }
}
