//! Packets: the unit of transfer on every macrochip network.

use crate::SiteId;
use desim::{Span, Time};
use std::fmt;

/// Unique, monotonically assigned packet identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

/// What a packet carries, mirroring the coherence protocol's needs (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// A cache-line-sized data transfer (64 bytes).
    Data,
    /// A coherence request travelling to a directory home.
    Request,
    /// A directory-to-owner forward.
    Forward,
    /// An invalidation sent to a sharer.
    Invalidate,
    /// An acknowledgment (invalidation ack, write ack).
    Ack,
    /// Network-internal control traffic.
    Control,
}

impl MessageKind {
    /// All kinds, for per-kind accounting.
    pub const ALL: [MessageKind; 6] = [
        MessageKind::Data,
        MessageKind::Request,
        MessageKind::Forward,
        MessageKind::Invalidate,
        MessageKind::Ack,
        MessageKind::Control,
    ];

    /// True for small (non-data) protocol messages.
    pub fn is_control_sized(self) -> bool {
        !matches!(self, MessageKind::Data)
    }
}

/// One packet moving through an inter-site network.
///
/// A packet records its life-cycle timestamps so latency statistics can be
/// derived after delivery: `created` when the workload produced it,
/// `delivered` when the destination received its last bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Source site.
    pub src: SiteId,
    /// Destination site.
    pub dst: SiteId,
    /// Total size on the wire, including header, in bytes.
    pub bytes: u32,
    /// Payload classification.
    pub kind: MessageKind,
    /// When the workload generated the packet.
    pub created: Time,
    /// When the destination finished receiving it (set by the network).
    pub delivered: Option<Time>,
    /// When its final transmission toward the destination began (set by
    /// the network): everything before this is queueing/arbitration/setup
    /// wait, everything after is wire time.
    pub tx_start: Option<Time>,
    /// When the packet began contending for the medium (arbitration
    /// request posted, token awaited, path setup started). Networks with
    /// no arbitration set this equal to `tx_start`, making the
    /// arbitration-wait phase zero.
    pub arb_start: Option<Time>,
    /// When the final serialization finished; the remainder until
    /// `delivered` is pure propagation (time of flight).
    pub tx_end: Option<Time>,
    /// Bytes that crossed an electronic router on the way (limited
    /// point-to-point forwarding); drives router energy accounting.
    pub routed_bytes: u32,
    /// Coherence-operation id this packet belongs to, if any.
    pub op: Option<u64>,
}

impl Packet {
    /// Creates a packet awaiting injection.
    pub fn new(
        id: PacketId,
        src: SiteId,
        dst: SiteId,
        bytes: u32,
        kind: MessageKind,
        created: Time,
    ) -> Packet {
        Packet {
            id,
            src,
            dst,
            bytes,
            kind,
            created,
            delivered: None,
            tx_start: None,
            arb_start: None,
            tx_end: None,
            routed_bytes: 0,
            op: None,
        }
    }

    /// Attaches a coherence-operation id.
    pub fn with_op(mut self, op: u64) -> Packet {
        self.op = Some(op);
        self
    }

    /// End-to-end latency, if the packet has been delivered.
    pub fn latency(&self) -> Option<Span> {
        self.delivered.map(|d| d.saturating_since(self.created))
    }

    /// Time spent waiting before the final transmission began (queueing,
    /// arbitration, token wait, path setup), if instrumented.
    pub fn wait_time(&self) -> Option<Span> {
        self.tx_start.map(|t| t.saturating_since(self.created))
    }

    /// Time on the wire: final serialization plus flight, if delivered
    /// and instrumented.
    pub fn wire_time(&self) -> Option<Span> {
        match (self.tx_start, self.delivered) {
            (Some(t), Some(d)) => Some(d.saturating_since(t)),
            _ => None,
        }
    }

    /// True once the network has handed the packet to its destination.
    pub fn is_delivered(&self) -> bool {
        self.delivered.is_some()
    }

    /// Phase 1 of the latency breakdown: time queued at the source before
    /// the packet began contending for the medium, if instrumented.
    pub fn queueing_time(&self) -> Option<Span> {
        self.arb_start.map(|a| a.saturating_since(self.created))
    }

    /// Phase 2: time between first contending for the medium and the final
    /// transmission starting (arbitration pipeline, token wait, circuit
    /// setup), if instrumented.
    pub fn arb_wait_time(&self) -> Option<Span> {
        match (self.arb_start, self.tx_start) {
            (Some(a), Some(t)) => Some(t.saturating_since(a)),
            _ => None,
        }
    }

    /// Phase 3: time putting bits on the wire, if instrumented.
    pub fn serialization_time(&self) -> Option<Span> {
        match (self.tx_start, self.tx_end) {
            (Some(t), Some(e)) => Some(e.saturating_since(t)),
            _ => None,
        }
    }

    /// Phase 4: time of flight from the last bit leaving the source to the
    /// delivery instant, if instrumented and delivered.
    pub fn propagation_time(&self) -> Option<Span> {
        match (self.tx_end, self.delivered) {
            (Some(e), Some(d)) => Some(d.saturating_since(e)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet() -> Packet {
        Packet::new(
            PacketId(1),
            SiteId::from_index(0),
            SiteId::from_index(9),
            64,
            MessageKind::Data,
            Time::from_ns(100),
        )
    }

    #[test]
    fn latency_requires_delivery() {
        let mut p = packet();
        assert_eq!(p.latency(), None);
        assert!(!p.is_delivered());
        p.delivered = Some(Time::from_ns(130));
        assert_eq!(p.latency(), Some(Span::from_ns(30)));
        assert!(p.is_delivered());
    }

    #[test]
    fn control_sized_classification() {
        assert!(!MessageKind::Data.is_control_sized());
        for k in [
            MessageKind::Request,
            MessageKind::Forward,
            MessageKind::Invalidate,
            MessageKind::Ack,
            MessageKind::Control,
        ] {
            assert!(k.is_control_sized());
        }
    }

    #[test]
    fn wait_and_wire_split_the_latency() {
        let mut p = packet();
        assert_eq!(p.wait_time(), None);
        assert_eq!(p.wire_time(), None);
        p.tx_start = Some(Time::from_ns(112));
        p.delivered = Some(Time::from_ns(130));
        assert_eq!(p.wait_time(), Some(Span::from_ns(12)));
        assert_eq!(p.wire_time(), Some(Span::from_ns(18)));
        let total = p.wait_time().unwrap() + p.wire_time().unwrap();
        assert_eq!(Some(total), p.latency());
    }

    #[test]
    fn op_attachment() {
        let p = packet().with_op(42);
        assert_eq!(p.op, Some(42));
    }

    #[test]
    fn phase_breakdown_sums_to_latency() {
        let mut p = packet(); // created at 100 ns
        p.arb_start = Some(Time::from_ns(104));
        p.tx_start = Some(Time::from_ns(112));
        p.tx_end = Some(Time::from_ns(125));
        p.delivered = Some(Time::from_ns(130));
        assert_eq!(p.queueing_time(), Some(Span::from_ns(4)));
        assert_eq!(p.arb_wait_time(), Some(Span::from_ns(8)));
        assert_eq!(p.serialization_time(), Some(Span::from_ns(13)));
        assert_eq!(p.propagation_time(), Some(Span::from_ns(5)));
        let sum = p.queueing_time().unwrap()
            + p.arb_wait_time().unwrap()
            + p.serialization_time().unwrap()
            + p.propagation_time().unwrap();
        assert_eq!(Some(sum), p.latency());
    }

    #[test]
    fn phases_require_instrumentation() {
        let p = packet();
        assert_eq!(p.queueing_time(), None);
        assert_eq!(p.arb_wait_time(), None);
        assert_eq!(p.serialization_time(), None);
        assert_eq!(p.propagation_time(), None);
    }
}
