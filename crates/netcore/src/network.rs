//! The `Network` trait implemented by all five architectures.

use crate::{FaultResponse, MacrochipConfig, NetFault, NetStats, Packet};
use desim::{Time, Tracer};
use photonics::inventory::NetworkId;
use std::fmt;

/// The network architectures evaluated in the paper (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// Statically WDM-routed point-to-point (§4.2).
    PointToPoint,
    /// Two-phase arbitration-based switched network (§4.3).
    TwoPhase,
    /// Two-phase ALT configuration: doubled transmitters/switch trees.
    TwoPhaseAlt,
    /// Token-ring-arbitrated optical crossbar, Corona adapted (§4.4).
    TokenRing,
    /// Circuit-switched torus (§4.5).
    CircuitSwitched,
    /// Limited point-to-point with electronic routing (§4.6).
    LimitedPointToPoint,
    /// Two-level hierarchical network beyond the paper: per-cluster
    /// broadcast rings bridged by an inter-cluster point-to-point
    /// backbone (HERMES-style).
    Hierarchical,
}

impl NetworkKind {
    /// All simulated architectures: the paper's figure order, then the
    /// post-paper hierarchical design.
    pub const ALL: [NetworkKind; 7] = [
        NetworkKind::TokenRing,
        NetworkKind::CircuitSwitched,
        NetworkKind::PointToPoint,
        NetworkKind::LimitedPointToPoint,
        NetworkKind::TwoPhase,
        NetworkKind::TwoPhaseAlt,
        NetworkKind::Hierarchical,
    ];

    /// The five base networks of Figure 6 (ALT excluded).
    pub const FIGURE6: [NetworkKind; 5] = [
        NetworkKind::TokenRing,
        NetworkKind::CircuitSwitched,
        NetworkKind::PointToPoint,
        NetworkKind::LimitedPointToPoint,
        NetworkKind::TwoPhase,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            NetworkKind::PointToPoint => "Point-to-Point",
            NetworkKind::TwoPhase => "2-Phase Arb.",
            NetworkKind::TwoPhaseAlt => "2-Phase Arb. ALT",
            NetworkKind::TokenRing => "Token Ring",
            NetworkKind::CircuitSwitched => "Circuit-Switched",
            NetworkKind::LimitedPointToPoint => "Limited Point-to-Point",
            NetworkKind::Hierarchical => "Hierarchical",
        }
    }

    /// The corresponding power/complexity table row for the data network.
    pub fn power_id(self) -> NetworkId {
        match self {
            NetworkKind::PointToPoint => NetworkId::PointToPoint,
            NetworkKind::TwoPhase => NetworkId::TwoPhaseData,
            NetworkKind::TwoPhaseAlt => NetworkId::TwoPhaseDataAlt,
            NetworkKind::TokenRing => NetworkId::TokenRing,
            NetworkKind::CircuitSwitched => NetworkId::CircuitSwitched,
            NetworkKind::LimitedPointToPoint => NetworkId::LimitedPointToPoint,
            NetworkKind::Hierarchical => NetworkId::Hierarchical,
        }
    }
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An inter-site interconnection network under event-driven simulation.
///
/// The experiment harness drives every architecture through this
/// interface:
///
/// 1. [`inject`](Network::inject) a packet at the current time (may refuse
///    under backpressure — the caller retries after the next event);
/// 2. query [`next_event`](Network::next_event) for the earliest pending
///    internal event;
/// 3. [`advance`](Network::advance) simulation up to a chosen instant;
/// 4. [`drain_delivered`](Network::drain_delivered) packets whose delivery
///    completed, with their `delivered` timestamps filled in.
pub trait Network {
    /// Which architecture this is.
    fn kind(&self) -> NetworkKind;

    /// The configuration the network was built with.
    fn config(&self) -> &MacrochipConfig;

    /// Offers a packet for injection at `now` (the packet's source site
    /// must match `packet.src`).
    ///
    /// # Errors
    ///
    /// Returns the packet back if the source's injection queue is full;
    /// the caller should retry after the next network event.
    fn inject(&mut self, packet: Packet, now: Time) -> Result<(), Packet>;

    /// The earliest pending internal event, if any.
    fn next_event(&self) -> Option<Time>;

    /// Processes all internal events up to and including `now`.
    fn advance(&mut self, now: Time);

    /// Removes and returns packets delivered since the last call.
    fn drain_delivered(&mut self) -> Vec<Packet>;

    /// Moves packets delivered since the last call into `out`, reusing the
    /// caller's buffer. The default delegates to
    /// [`drain_delivered`](Network::drain_delivered); architectures
    /// override it to append without allocating.
    fn drain_delivered_into(&mut self, out: &mut Vec<Packet>) {
        out.extend(self.drain_delivered());
    }

    /// Timestamp of the most recently processed internal event, if any.
    ///
    /// A batched driver advances a network through many events in one
    /// [`advance`](Network::advance) call and reads the simulation clock
    /// back from here. Implementations that return `Some` must report the
    /// exact timestamp of the last event popped from their queue.
    fn last_event_time(&self) -> Option<Time> {
        None
    }

    /// True when the driver may advance this network through a whole batch
    /// of events in one [`advance`](Network::advance) call. Requires a
    /// time-faithful `advance` (each event processed at its own timestamp,
    /// never at the batch target) and a working
    /// [`last_event_time`](Network::last_event_time). Defaults to `false`
    /// so unknown implementations keep the per-event dispatch path.
    fn supports_batched_advance(&self) -> bool {
        false
    }

    /// Packet-slab allocation counters, if this network stores in-flight
    /// packets in a [`PacketSlab`](crate::PacketSlab). The audit layer
    /// uses this for its slab-leak invariant: at a clean idle, `live`
    /// must equal 0.
    fn slab_stats(&self) -> Option<crate::SlabStats> {
        None
    }

    /// Aggregate statistics collected so far.
    fn stats(&self) -> &NetStats;

    /// Internal simulation events processed so far (event-queue pops).
    ///
    /// This is the deterministic work figure host-side throughput is
    /// measured against: `events_processed / wall_clock` is the
    /// simulator's events-per-second. The default returns 0 for
    /// architectures (or wrappers) that do not expose their queue.
    fn events_processed(&self) -> u64 {
        0
    }

    /// Attaches a flight-recorder handle; subsequent activity emits
    /// [`desim::TraceEvent`]s into it. The default implementation ignores
    /// the tracer, so architectures opt in individually.
    fn set_tracer(&mut self, tracer: Tracer) {
        let _ = tracer;
    }

    /// Applies a structural fault at `now`, running this architecture's
    /// degradation policy (spare wavelengths, re-routing, token
    /// regeneration, circuit re-setup, requestor masking).
    ///
    /// The default implementation reports the fault as unhandled; the
    /// resilience wrapper in the `faults` crate then falls back to its
    /// generic drop/retry policy.
    fn apply_fault(&mut self, fault: NetFault, now: Time) -> FaultResponse {
        let _ = (fault, now);
        FaultResponse::unhandled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = NetworkKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NetworkKind::ALL.len());
    }

    #[test]
    fn figure6_excludes_alt() {
        assert!(!NetworkKind::FIGURE6.contains(&NetworkKind::TwoPhaseAlt));
        assert_eq!(NetworkKind::FIGURE6.len(), 5);
    }

    #[test]
    fn figure6_excludes_the_post_paper_hierarchical() {
        // FIGURE6 is the paper's figure; the hierarchical design only
        // appears in ALL (and the "at scale" experiments).
        assert!(!NetworkKind::FIGURE6.contains(&NetworkKind::Hierarchical));
        assert!(NetworkKind::ALL.contains(&NetworkKind::Hierarchical));
    }

    #[test]
    fn power_ids_map_to_data_rows() {
        assert_eq!(NetworkKind::TwoPhase.power_id(), NetworkId::TwoPhaseData);
        assert_eq!(NetworkKind::TokenRing.power_id(), NetworkId::TokenRing);
    }
}
