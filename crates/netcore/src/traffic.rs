//! The interface between traffic generators and the simulation driver.

use crate::Packet;
use desim::Time;

/// A producer of network packets, open- or closed-loop.
///
/// The experiment driver alternates between advancing the network and
/// pumping its `PacketSource`:
///
/// * [`next_emission`](Self::next_emission) tells the driver when the
///   source next wants to inject;
/// * [`emit_due`](Self::emit_due) collects every packet due by `now`;
/// * [`on_delivered`](Self::on_delivered) lets closed-loop sources (the
///   coherence engine) react to deliveries by emitting follow-on messages
///   or issuing new operations;
/// * [`is_exhausted`](Self::is_exhausted) ends finite runs.
pub trait PacketSource {
    /// The earliest instant the source wants to emit a packet, if any.
    fn next_emission(&self) -> Option<Time>;

    /// Appends all packets due at or before `now` to `out`.
    fn emit_due(&mut self, now: Time, out: &mut Vec<Packet>);

    /// Notifies the source that `packet` was delivered at `now`.
    fn on_delivered(&mut self, packet: &Packet, now: Time);

    /// True when the source will never emit again.
    fn is_exhausted(&self) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MessageKind, PacketId, SiteId};

    /// A minimal one-shot source used to pin down trait semantics.
    struct OneShot {
        packet: Option<Packet>,
        delivered: usize,
    }

    impl PacketSource for OneShot {
        fn next_emission(&self) -> Option<Time> {
            self.packet.as_ref().map(|p| p.created)
        }
        fn emit_due(&mut self, now: Time, out: &mut Vec<Packet>) {
            if self.packet.is_some_and(|p| p.created <= now) {
                out.extend(self.packet.take());
            }
        }
        fn on_delivered(&mut self, _packet: &Packet, _now: Time) {
            self.delivered += 1;
        }
        fn is_exhausted(&self) -> bool {
            self.packet.is_none()
        }
    }

    #[test]
    fn one_shot_source_contract() {
        let p = Packet::new(
            PacketId(0),
            SiteId::from_index(0),
            SiteId::from_index(1),
            64,
            MessageKind::Data,
            Time::from_ns(5),
        );
        let mut s = OneShot {
            packet: Some(p),
            delivered: 0,
        };
        assert_eq!(s.next_emission(), Some(Time::from_ns(5)));
        let mut out = Vec::new();
        s.emit_due(Time::from_ns(4), &mut out);
        assert!(out.is_empty());
        s.emit_due(Time::from_ns(5), &mut out);
        assert_eq!(out.len(), 1);
        assert!(s.is_exhausted());
        s.on_delivered(&out[0], Time::from_ns(9));
        assert_eq!(s.delivered, 1);
    }
}
