//! The interface between traffic generators and the simulation driver.

use crate::Packet;
use desim::Time;

/// A producer of network packets, open- or closed-loop.
///
/// The experiment driver alternates between advancing the network and
/// pumping its `PacketSource`:
///
/// * [`next_emission`](Self::next_emission) tells the driver when the
///   source next wants to inject;
/// * [`emit_due`](Self::emit_due) collects every packet due by `now`;
/// * [`on_delivered`](Self::on_delivered) lets closed-loop sources (the
///   coherence engine) react to deliveries by emitting follow-on messages
///   or issuing new operations;
/// * [`is_exhausted`](Self::is_exhausted) ends finite runs.
pub trait PacketSource {
    /// The earliest instant the source wants to emit a packet, if any.
    fn next_emission(&self) -> Option<Time>;

    /// Appends all packets due at or before `now` to `out`.
    fn emit_due(&mut self, now: Time, out: &mut Vec<Packet>);

    /// Notifies the source that `packet` was delivered at `now`.
    fn on_delivered(&mut self, packet: &Packet, now: Time);

    /// True when the source will never emit again.
    fn is_exhausted(&self) -> bool;

    /// True when [`on_delivered`](Self::on_delivered) can change this
    /// source's behavior. Open-loop sources (fixed emission schedules,
    /// trace replay) return `false`, which licenses the driver to advance
    /// the network through whole batches of events between emissions
    /// instead of stopping at every delivery. Defaults to `true` — the
    /// conservative per-event path.
    fn reacts_to_delivery(&self) -> bool {
        true
    }
}

/// A [`PacketSource`] adapter that reports every emitted packet to an
/// observer callback — the capture hook of the trace subsystem.
///
/// Wraps any source (open-loop pattern, sharing mix, coherence engine)
/// without changing its behavior: the observer sees exactly the packets
/// the driver receives, in emission order, after the inner source has
/// produced them. Since the driver pumps sources in event-time order,
/// the observed stream is sorted by `Packet::created` — the invariant the
/// trace format relies on.
pub struct ObservedSource<'a, F: FnMut(&Packet)> {
    inner: &'a mut dyn PacketSource,
    observer: F,
}

impl<'a, F: FnMut(&Packet)> ObservedSource<'a, F> {
    /// Wraps `inner`, calling `observer` on every packet it emits.
    pub fn new(inner: &'a mut dyn PacketSource, observer: F) -> ObservedSource<'a, F> {
        ObservedSource { inner, observer }
    }
}

impl<F: FnMut(&Packet)> PacketSource for ObservedSource<'_, F> {
    fn next_emission(&self) -> Option<Time> {
        self.inner.next_emission()
    }

    fn emit_due(&mut self, now: Time, out: &mut Vec<Packet>) {
        let before = out.len();
        self.inner.emit_due(now, out);
        for p in &out[before..] {
            (self.observer)(p);
        }
    }

    fn on_delivered(&mut self, packet: &Packet, now: Time) {
        self.inner.on_delivered(packet, now);
    }

    fn is_exhausted(&self) -> bool {
        self.inner.is_exhausted()
    }

    fn reacts_to_delivery(&self) -> bool {
        self.inner.reacts_to_delivery()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MessageKind, PacketId, SiteId};

    /// A minimal one-shot source used to pin down trait semantics.
    struct OneShot {
        packet: Option<Packet>,
        delivered: usize,
    }

    impl PacketSource for OneShot {
        fn next_emission(&self) -> Option<Time> {
            self.packet.as_ref().map(|p| p.created)
        }
        fn emit_due(&mut self, now: Time, out: &mut Vec<Packet>) {
            if self.packet.is_some_and(|p| p.created <= now) {
                out.extend(self.packet.take());
            }
        }
        fn on_delivered(&mut self, _packet: &Packet, _now: Time) {
            self.delivered += 1;
        }
        fn is_exhausted(&self) -> bool {
            self.packet.is_none()
        }
    }

    #[test]
    fn observed_source_sees_every_emission_and_nothing_else() {
        let p = Packet::new(
            PacketId(7),
            SiteId::from_index(2),
            SiteId::from_index(3),
            64,
            MessageKind::Ack,
            Time::from_ns(1),
        );
        let mut inner = OneShot {
            packet: Some(p),
            delivered: 0,
        };
        let mut seen = Vec::new();
        {
            let mut observed = ObservedSource::new(&mut inner, |p: &Packet| seen.push(p.id));
            assert_eq!(observed.next_emission(), Some(Time::from_ns(1)));
            // Pre-existing contents of `out` are not re-observed.
            let mut out = vec![Packet::new(
                PacketId(0),
                SiteId::from_index(0),
                SiteId::from_index(1),
                64,
                MessageKind::Data,
                Time::from_ns(0),
            )];
            observed.emit_due(Time::from_ns(2), &mut out);
            assert_eq!(out.len(), 2);
            assert!(observed.is_exhausted());
            observed.on_delivered(&out[1], Time::from_ns(3));
        }
        assert_eq!(seen, vec![PacketId(7)]);
        assert_eq!(inner.delivered, 1);
    }

    #[test]
    fn one_shot_source_contract() {
        let p = Packet::new(
            PacketId(0),
            SiteId::from_index(0),
            SiteId::from_index(1),
            64,
            MessageKind::Data,
            Time::from_ns(5),
        );
        let mut s = OneShot {
            packet: Some(p),
            delivered: 0,
        };
        assert_eq!(s.next_emission(), Some(Time::from_ns(5)));
        let mut out = Vec::new();
        s.emit_due(Time::from_ns(4), &mut out);
        assert!(out.is_empty());
        s.emit_due(Time::from_ns(5), &mut out);
        assert_eq!(out.len(), 1);
        assert!(s.is_exhausted());
        s.on_delivered(&out[0], Time::from_ns(9));
        assert_eq!(s.delivered, 1);
    }
}
