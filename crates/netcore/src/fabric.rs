//! Multi-macrochip fabric configuration: an `M×M` board of macrochips
//! joined by dedicated board-level photonic links between per-chip
//! gateway sites (ROADMAP item 2; HERMES-style third network level).
//!
//! A [`FabricConfig`] is deliberately a *separate* type from
//! [`MacrochipConfig`]: single-chip campaign cache keys hash the chip
//! config's `Debug` form, so growing `MacrochipConfig` itself would
//! invalidate every cached single-chip result. A one-chip fabric is
//! byte-identical to the plain config it wraps.
//!
//! Site addressing is positional: the fabric exposes one global
//! `(M·side)×(M·side)` grid, each chip owning a `side×side` sub-square.
//! A chip's *gateway* is its local `(0, 0)` site, which carries the
//! board-level transceivers (the hierarchical network's bridge backbone
//! extended one level up).

use crate::{Grid, MacrochipConfig, SiteId};
use photonics::geometry::Layout;

/// Board-level inter-chip photonic link parameters. These are distinct
/// from the on-chip Table 1 values: board links cross an interposer
/// (two extra, lossier couplers) and run centimeters of silicon-nitride
/// waveguide between chip gateways.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterChipLinkConfig {
    /// Wavelengths multiplexed on each directed gateway-to-gateway link.
    pub lambdas: usize,
    /// Center-to-center spacing of adjacent chips on the board, in
    /// centimeters (chip span plus board-level routing margin).
    pub chip_pitch_cm: f64,
    /// Propagation delay of the board waveguides, in ns/cm.
    pub prop_ns_per_cm: f64,
}

impl InterChipLinkConfig {
    /// Default link provisioning for a given chip: the chip's own WDM
    /// factor per link, chips spaced one chip-span plus a 5 cm routing
    /// gap apart, board waveguides at the on-chip 0.1 ns/cm figure.
    pub fn for_chip(chip: &MacrochipConfig) -> InterChipLinkConfig {
        InterChipLinkConfig {
            lambdas: chip.wavelengths_per_waveguide,
            chip_pitch_cm: chip.grid.side() as f64 * chip.layout.site_pitch_cm() + 5.0,
            prop_ns_per_cm: 0.1,
        }
    }
}

/// An `M×M` arrangement of identical macrochips with board-level
/// photonic links between their gateway sites.
///
/// # Example
///
/// ```
/// use netcore::{FabricConfig, MacrochipConfig};
///
/// let fabric = FabricConfig::grid(2, MacrochipConfig::scaled());
/// assert_eq!(fabric.chips(), 4);
/// assert_eq!(fabric.global_config().grid.side(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Chips per board side (`M`); `1` is a plain single macrochip.
    pub chips_per_side: usize,
    /// The per-chip configuration (all chips are identical).
    pub chip: MacrochipConfig,
    /// Board-level link provisioning.
    pub link: InterChipLinkConfig,
}

impl FabricConfig {
    /// A one-chip fabric: behaviorally identical to the bare config.
    pub fn single(chip: MacrochipConfig) -> FabricConfig {
        FabricConfig::grid(1, chip)
    }

    /// An `M×M` fabric of identical chips with default board links.
    pub fn grid(chips_per_side: usize, chip: MacrochipConfig) -> FabricConfig {
        FabricConfig {
            chips_per_side,
            chip,
            link: InterChipLinkConfig::for_chip(&chip),
        }
    }

    /// Total chip count (`M²`).
    pub fn chips(&self) -> usize {
        self.chips_per_side * self.chips_per_side
    }

    /// True when this fabric is a single bare macrochip.
    pub fn is_single(&self) -> bool {
        self.chips_per_side == 1
    }

    /// Sites per chip side.
    pub fn chip_side(&self) -> usize {
        self.chip.grid.side()
    }

    /// Sites per global grid side (`M · chip_side`).
    pub fn global_side(&self) -> usize {
        self.chips_per_side * self.chip_side()
    }

    /// The configuration of the fabric viewed as one flat site grid:
    /// traffic patterns, fault plans and latency statistics address this
    /// global grid, while per-site provisioning stays the chip's.
    pub fn global_config(&self) -> MacrochipConfig {
        let gs = self.global_side();
        MacrochipConfig {
            grid: Grid::new(gs),
            layout: Layout::new(
                gs,
                self.chip.layout.site_pitch_cm(),
                // Propagation speed is preserved via the hop delay: the
                // global layout only feeds per-hop flight-time floors.
                0.1,
            ),
            ..self.chip
        }
    }

    /// The chip (row-major board index) owning a global site.
    pub fn chip_of(&self, s: SiteId) -> usize {
        let cs = self.chip_side();
        let (x, y) = self.global_coord(s);
        (y / cs) * self.chips_per_side + (x / cs)
    }

    /// Translates a global site id to its chip-local equivalent.
    pub fn local(&self, s: SiteId) -> SiteId {
        let cs = self.chip_side();
        let (x, y) = self.global_coord(s);
        self.chip.grid.site(x % cs, y % cs)
    }

    /// Translates a chip-local site id back to the global grid.
    pub fn global(&self, chip: usize, local: SiteId) -> SiteId {
        let cs = self.chip_side();
        let (cx, cy) = (chip % self.chips_per_side, chip / self.chips_per_side);
        let (lx, ly) = self.chip.grid.coord(local);
        let gs = self.global_side();
        let index = (cy * cs + ly) * gs + (cx * cs + lx);
        SiteId::from_index(index)
    }

    /// The gateway site of a chip, in global coordinates: the chip's
    /// local `(0, 0)` corner, which carries the board transceivers.
    pub fn gateway(&self, chip: usize) -> SiteId {
        self.global(chip, self.chip.grid.site(0, 0))
    }

    /// Manhattan distance between two chips on the board, in chip
    /// pitches.
    pub fn chip_hops(&self, a: usize, b: usize) -> usize {
        let m = self.chips_per_side;
        let (ax, ay) = (a % m, a / m);
        let (bx, by) = (b % m, b / m);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Board time of flight between two chips' gateways, in ns.
    pub fn board_flight_ns(&self, a: usize, b: usize) -> f64 {
        self.chip_hops(a, b) as f64 * self.link.chip_pitch_cm * self.link.prop_ns_per_cm
    }

    /// Bandwidth of one directed inter-chip link, in bytes/ns.
    pub fn link_bytes_per_ns(&self) -> f64 {
        self.chip.channel_bytes_per_ns(self.link.lambdas)
    }

    /// Directed gateway-to-gateway links on the board (`k·(k−1)`).
    pub fn directed_links(&self) -> usize {
        let k = self.chips();
        k * (k - 1)
    }

    fn global_coord(&self, s: SiteId) -> (usize, usize) {
        let gs = self.global_side();
        let i = s.index();
        assert!(i < gs * gs, "site {i} outside the {gs}x{gs} fabric");
        (i % gs, i / gs)
    }

    /// Validates internal consistency; network constructors call this.
    ///
    /// # Panics
    ///
    /// Panics if the board dimensions or link parameters are out of
    /// range.
    pub fn validate(&self) {
        self.chip.validate();
        assert!(self.chips_per_side >= 1, "fabric needs at least one chip");
        assert!(
            self.global_side() <= 128,
            "fabric global side {} exceeds the supported 128",
            self.global_side()
        );
        assert!(self.link.lambdas > 0, "inter-chip links need wavelengths");
        assert!(
            self.link.chip_pitch_cm > 0.0 && self.link.chip_pitch_cm.is_finite(),
            "invalid chip pitch"
        );
        assert!(
            self.link.prop_ns_per_cm > 0.0 && self.link.prop_ns_per_cm.is_finite(),
            "invalid board propagation speed"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chip_global_config_is_the_chip() {
        let chip = MacrochipConfig::scaled();
        let fabric = FabricConfig::single(chip);
        assert!(fabric.is_single());
        assert_eq!(fabric.global_config(), chip);
    }

    #[test]
    fn two_by_two_addressing_round_trips() {
        let fabric = FabricConfig::grid(2, MacrochipConfig::scaled());
        fabric.validate();
        assert_eq!(fabric.chips(), 4);
        let global = fabric.global_config();
        assert_eq!(global.grid.sites(), 256);
        for i in 0..global.grid.sites() {
            let s = SiteId::from_index(i);
            let chip = fabric.chip_of(s);
            let local = fabric.local(s);
            assert_eq!(fabric.global(chip, local), s, "site {i}");
        }
    }

    #[test]
    fn gateways_sit_at_chip_corners() {
        let fabric = FabricConfig::grid(2, MacrochipConfig::scaled());
        let global = fabric.global_config();
        assert_eq!(global.grid.coord(fabric.gateway(0)), (0, 0));
        assert_eq!(global.grid.coord(fabric.gateway(1)), (8, 0));
        assert_eq!(global.grid.coord(fabric.gateway(2)), (0, 8));
        assert_eq!(global.grid.coord(fabric.gateway(3)), (8, 8));
        for chip in 0..fabric.chips() {
            assert_eq!(fabric.chip_of(fabric.gateway(chip)), chip);
        }
    }

    #[test]
    fn board_geometry_scales_with_chip_distance() {
        let fabric = FabricConfig::grid(2, MacrochipConfig::scaled());
        // 8 sites at 2.5 cm + 5 cm gap = 25 cm pitch; 0.1 ns/cm.
        assert!((fabric.link.chip_pitch_cm - 25.0).abs() < 1e-9);
        assert_eq!(fabric.chip_hops(0, 3), 2);
        assert!((fabric.board_flight_ns(0, 1) - 2.5).abs() < 1e-9);
        assert!((fabric.board_flight_ns(0, 3) - 5.0).abs() < 1e-9);
        assert_eq!(fabric.board_flight_ns(2, 2), 0.0);
    }

    #[test]
    fn link_bandwidth_uses_chip_lambda_rate() {
        let fabric = FabricConfig::grid(2, MacrochipConfig::scaled());
        // 8 wavelengths at 2.5 B/ns = 20 B/ns per directed link.
        assert!((fabric.link_bytes_per_ns() - 20.0).abs() < 1e-9);
        assert_eq!(fabric.directed_links(), 12);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_fabrics_rejected() {
        FabricConfig::grid(8, MacrochipConfig::with_side(32)).validate();
    }
}
