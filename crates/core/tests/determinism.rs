//! Reruns with the same seed and config must be bit-identical.
//!
//! The flight recorder's exports are only trustworthy as provenance if the
//! simulation itself is deterministic: two runs with the same seed and
//! configuration must produce byte-identical metrics snapshots and
//! identical trace event streams.

use desim::trace::RingSink;
use desim::{Span, Time, TraceEvent, Tracer};
use macrochip::sweep::{run_load_point_traced, SweepOptions};
use netcore::{MacrochipConfig, MetricsRegistry, NetworkKind};
use std::cell::RefCell;
use std::rc::Rc;
use workloads::Pattern;

fn run_once(kind: NetworkKind) -> (String, Vec<(Time, TraceEvent)>) {
    let config = MacrochipConfig::scaled();
    let options = SweepOptions {
        sim: Span::from_us(1),
        drain: Span::from_us(5),
        max_stalled: 5_000,
        seed: 42,
    };
    let sink = Rc::new(RefCell::new(RingSink::new(1 << 20)));
    let (_, net) = run_load_point_traced(
        networks::build(kind, config),
        Pattern::Uniform,
        0.05,
        &config,
        options,
        Tracer::shared(&sink),
    );
    let mut reg = MetricsRegistry::new();
    reg.record_net_stats(net.stats());
    let events = sink.borrow().snapshot();
    (reg.snapshot().to_json(), events)
}

#[test]
fn same_seed_and_config_reruns_are_byte_identical() {
    for kind in [
        NetworkKind::PointToPoint,
        NetworkKind::TokenRing,
        NetworkKind::TwoPhase,
    ] {
        let (json_a, trace_a) = run_once(kind);
        let (json_b, trace_b) = run_once(kind);
        assert!(!trace_a.is_empty(), "{kind}: empty trace");
        assert_eq!(json_a, json_b, "{kind}: metrics snapshot differs");
        assert_eq!(trace_a, trace_b, "{kind}: trace stream differs");
    }
}
