//! The simulation driver: couples a [`PacketSource`] to a [`Network`].

use desim::prof::{self, Counter, Site};
use desim::{Time, TraceEvent, Tracer};
use netcore::{Network, ObservedSource, Packet, PacketSource};
use std::collections::VecDeque;

/// Bounds on a driven run.
#[derive(Debug, Clone, Copy)]
pub struct DriveLimits {
    /// Hard stop; events after this instant are not processed.
    pub deadline: Time,
    /// If this many packets are waiting for injection (backpressure), the
    /// run is declared saturated and stops early.
    pub max_stalled: usize,
}

impl DriveLimits {
    /// Limits for the standard open-loop shape: generate traffic for
    /// `sim`, then allow `drain` extra time for in-flight packets, with
    /// `max_stalled` as the saturation bound.
    pub fn for_window(sim: desim::Span, drain: desim::Span, max_stalled: usize) -> DriveLimits {
        DriveLimits {
            deadline: Time::ZERO + sim + drain,
            max_stalled,
        }
    }
}

impl Default for DriveLimits {
    fn default() -> DriveLimits {
        DriveLimits {
            deadline: Time::MAX,
            max_stalled: 5_000,
        }
    }
}

/// How a driven run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Simulation time when the run stopped.
    pub end: Time,
    /// The run hit the stalled-packet bound (the network could not absorb
    /// the offered traffic).
    pub saturated: bool,
    /// The run hit the deadline with work still pending.
    pub timed_out: bool,
}

/// Drives `net` with packets from `source` until both are exhausted, the
/// deadline passes, or saturation is declared.
///
/// Injection is retried for packets refused under backpressure: they wait
/// in a stall queue (preserving per-flow order of retry attempts) and are
/// re-offered after every event. Their latency clock keeps running from
/// `Packet::created`, so stalling shows up in the measured latency exactly
/// as source queueing would.
///
/// # Example
///
/// ```
/// use desim::Time;
/// use macrochip::runner::{drive, DriveLimits};
/// use netcore::{Grid, MacrochipConfig, Network, NetworkKind, PacketSource};
/// use workloads::{OpenLoopTraffic, Pattern};
///
/// let config = MacrochipConfig::scaled();
/// let mut net = networks::build(NetworkKind::PointToPoint, config);
/// let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Uniform,
///                                        0.05, 320.0, 64, 7);
/// traffic.set_horizon(Time::from_ns(500));
/// let outcome = drive(net.as_mut(), &mut traffic, DriveLimits::default());
/// assert!(!outcome.saturated);
/// assert!(net.stats().delivered_packets() > 0);
/// ```
pub fn drive(
    net: &mut dyn Network,
    source: &mut dyn PacketSource,
    limits: DriveLimits,
) -> RunOutcome {
    drive_traced(net, source, limits, Tracer::disabled())
}

/// [`drive`] with a flight-recorder handle.
///
/// The driver itself emits [`TraceEvent::Stall`] when the network first
/// refuses a packet and [`TraceEvent::Retry`] when a stalled packet is
/// finally accepted on re-offer; everything in between comes from the
/// network's own instrumentation (the tracer is **not** forwarded to the
/// network here — callers attach it via [`Network::set_tracer`] so the two
/// layers can share one sink).
/// [`drive_traced`] with a capture hook: `observer` is called for every
/// packet the source emits, in emission order, before the network sees it.
///
/// This is how trace capture taps the runner — a
/// [`replay::CaptureSink`]-backed closure records each injected packet
/// without perturbing the run (the observer cannot reorder, drop or delay
/// packets; it only watches). Because the driver visits emissions in
/// event-time order, the observed stream is sorted by `Packet::created`.
pub fn drive_observed<F: FnMut(&Packet)>(
    net: &mut dyn Network,
    source: &mut dyn PacketSource,
    limits: DriveLimits,
    tracer: Tracer,
    observer: F,
) -> RunOutcome {
    let mut observed = ObservedSource::new(source, observer);
    drive_traced(net, &mut observed, limits, tracer)
}

pub fn drive_traced(
    net: &mut dyn Network,
    source: &mut dyn PacketSource,
    limits: DriveLimits,
    tracer: Tracer,
) -> RunOutcome {
    // Host observability brackets: deltas (the network may be driven more
    // than once, e.g. by the sustained-bandwidth bisection) roll into the
    // process-wide prof counters when the run ends. None of this touches
    // simulation state — profiling on or off, results are byte-identical.
    let events_before = net.events_processed();
    let packets_before = net.stats().delivered_packets();
    let outcome = drive_loop(net, source, limits, tracer);
    prof::add(
        Counter::SimEvents,
        net.events_processed().saturating_sub(events_before),
    );
    prof::add(
        Counter::Packets,
        net.stats()
            .delivered_packets()
            .saturating_sub(packets_before),
    );
    prof::note_sim_time(outcome.end.as_ps());
    prof::flush();
    outcome
}

fn drive_loop(
    net: &mut dyn Network,
    source: &mut dyn PacketSource,
    limits: DriveLimits,
    tracer: Tracer,
) -> RunOutcome {
    let mut stalled: VecDeque<Packet> = VecDeque::new();
    let mut emissions: Vec<Packet> = Vec::new();
    let mut delivered: Vec<Packet> = Vec::new();
    let mut now = Time::ZERO;
    let mut iterations: u32 = 0;
    // An open-loop source cannot change its schedule on a delivery, so a
    // batch-capable network may be advanced through every event up to the
    // next emission in one call instead of one driver iteration per event.
    // Stalled packets force the per-event path: they are re-offered after
    // every network event, and that retry cadence is part of the results.
    let batchable = net.supports_batched_advance() && !source.reacts_to_delivery();

    loop {
        let _dispatch = prof::span(Site::Dispatch);
        iterations = iterations.wrapping_add(1);
        if iterations.is_multiple_of(4096) {
            prof::note_sim_time(now.as_ps());
        }
        let t_src = source.next_emission();
        let t_net = net.next_event();
        let t = match (t_src, t_net) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                // Nothing scheduled anywhere. Stalled packets with no
                // pending network event would mean a deadlock; networks
                // always have events while their queues are full.
                debug_assert!(stalled.is_empty(), "stalled packets with an idle network");
                return RunOutcome {
                    end: now,
                    saturated: false,
                    timed_out: false,
                };
            }
        };
        if t > limits.deadline {
            return RunOutcome {
                end: limits.deadline,
                saturated: false,
                timed_out: true,
            };
        }
        now = t;

        let mut advanced = false;
        if batchable && stalled.is_empty() {
            // Sweep the network through every event up to the next
            // emission instant (or the deadline) in one call, then inject
            // at that instant in the *same* iteration — one driver
            // iteration per emission instant instead of one per event.
            // Each event still runs at its own timestamp inside
            // `advance`, and events at the emission instant are processed
            // before the injection, so results match the per-event path
            // exactly.
            match t_src {
                Some(ts) if ts <= limits.deadline => {
                    if t_net.is_some_and(|tn| tn <= ts) {
                        let _step = prof::span(Site::NetworkStep);
                        net.advance(ts);
                        advanced = true;
                    }
                    now = ts;
                }
                // No further emissions inside the window: run the network
                // dry up to the deadline and read the clock back.
                _ => {
                    if t_net.is_some_and(|tn| tn <= limits.deadline) {
                        {
                            let _step = prof::span(Site::NetworkStep);
                            net.advance(limits.deadline);
                        }
                        advanced = true;
                        now = net.last_event_time().expect("events were due");
                    }
                }
            }
        } else {
            let _step = prof::span(Site::NetworkStep);
            net.advance(now);
            advanced = true;
        }
        // Deliveries only happen inside `advance`; an emission-only
        // iteration has nothing to drain.
        if advanced {
            let _drain = prof::span(Site::Drain);
            delivered.clear();
            net.drain_delivered_into(&mut delivered);
            for p in &delivered {
                source.on_delivered(p, now);
            }
        }

        if !stalled.is_empty() {
            let _inject = prof::span(Site::Inject);
            // Re-offer stalled packets, FIFO, a bounded batch per event so
            // a saturated run stays O(events) instead of O(events x
            // stalls).
            let retries = stalled.len().min(64);
            for _ in 0..retries {
                let p = stalled.pop_front().expect("len checked");
                // Fast path: the packet is moved into the network, so its
                // trace fields are copied out beforehand — only when the
                // flight recorder is attached.
                let retry_fields = tracer.is_enabled().then(|| (p.id.0, p.src.index()));
                match net.inject(p, now) {
                    Ok(()) => {
                        if let Some((id, src)) = retry_fields {
                            tracer.emit(now, || TraceEvent::Retry {
                                packet: id,
                                site: src,
                            });
                        }
                    }
                    Err(back) => stalled.push_back(back),
                }
            }
        }

        // Emissions are due only when the clock reached the next emission
        // instant (on pure event iterations `emit_due` would be a no-op).
        if t_src.is_some_and(|ts| ts <= now) {
            emissions.clear();
            {
                let _emit = prof::span(Site::SourceEmit);
                source.emit_due(now, &mut emissions);
            }
            let _inject = prof::span(Site::Inject);
            for p in emissions.drain(..) {
                if let Err(back) = net.inject(p, now) {
                    tracer.emit(now, || TraceEvent::Stall {
                        packet: back.id.0,
                        site: back.src.index(),
                    });
                    stalled.push_back(back);
                }
            }
        }

        if stalled.len() > limits.max_stalled {
            return RunOutcome {
                end: now,
                saturated: true,
                timed_out: false,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcore::{MacrochipConfig, NetworkKind};
    use workloads::{OpenLoopTraffic, Pattern};

    fn run(kind: NetworkKind, load: f64, horizon_ns: u64) -> (RunOutcome, u64, u64) {
        let config = MacrochipConfig::scaled();
        let mut net = networks::build(kind, config);
        let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Uniform, load, 320.0, 64, 11);
        traffic.set_horizon(Time::from_ns(horizon_ns));
        let outcome = drive(net.as_mut(), &mut traffic, DriveLimits::default());
        let delivered = net.stats().delivered_packets();
        (outcome, traffic.emitted(), delivered)
    }

    #[test]
    fn light_load_delivers_everything() {
        let (outcome, emitted, delivered) = run(NetworkKind::PointToPoint, 0.05, 1_000);
        assert!(!outcome.saturated && !outcome.timed_out);
        assert_eq!(emitted, delivered);
        assert!(emitted > 1_000);
    }

    #[test]
    fn every_network_drains_a_light_uniform_load() {
        for kind in NetworkKind::ALL {
            let (outcome, emitted, delivered) = run(kind, 0.01, 500);
            assert!(!outcome.saturated, "{kind} saturated at 1% load");
            assert_eq!(emitted, delivered, "{kind} lost packets");
        }
    }

    #[test]
    fn deadline_cuts_the_run() {
        let config = MacrochipConfig::scaled();
        let mut net = networks::build(NetworkKind::PointToPoint, config);
        let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.1, 320.0, 64, 3);
        let outcome = drive(
            net.as_mut(),
            &mut traffic,
            DriveLimits {
                deadline: Time::from_ns(200),
                max_stalled: 1_000_000,
            },
        );
        assert!(outcome.timed_out);
        assert_eq!(outcome.end, Time::from_ns(200));
    }

    #[test]
    fn overload_is_declared_saturated() {
        // The circuit-switched network cannot take uniform traffic at 50%
        // of peak (its sustainable share is ~2.5%).
        let config = MacrochipConfig::scaled();
        let mut net = networks::build(NetworkKind::CircuitSwitched, config);
        let mut traffic = OpenLoopTraffic::new(&config.grid, Pattern::Uniform, 0.5, 320.0, 64, 5);
        traffic.set_horizon(Time::from_us(50));
        let outcome = drive(
            net.as_mut(),
            &mut traffic,
            DriveLimits {
                deadline: Time::MAX,
                max_stalled: 2_000,
            },
        );
        assert!(outcome.saturated);
    }

    #[test]
    fn stalled_latency_counts_from_creation() {
        // Saturate one p2p channel; late packets must include their stall
        // time in measured latency.
        let config = MacrochipConfig::scaled();
        let mut net = networks::build(NetworkKind::PointToPoint, config);
        struct Burst(Vec<netcore::Packet>);
        impl PacketSource for Burst {
            fn next_emission(&self) -> Option<Time> {
                self.0.last().map(|p| p.created)
            }
            fn emit_due(&mut self, now: Time, out: &mut Vec<netcore::Packet>) {
                while self.0.last().is_some_and(|p| p.created <= now) {
                    out.push(self.0.pop().expect("checked"));
                }
            }
            fn on_delivered(&mut self, _: &netcore::Packet, _: Time) {}
            fn is_exhausted(&self) -> bool {
                self.0.is_empty()
            }
        }
        let g = config.grid;
        let packets: Vec<_> = (0..40)
            .map(|i| {
                netcore::Packet::new(
                    netcore::PacketId(i),
                    g.site(0, 0),
                    g.site(1, 0),
                    64,
                    netcore::MessageKind::Data,
                    Time::ZERO,
                )
            })
            .rev()
            .collect();
        let mut src = Burst(packets);
        drive(net.as_mut(), &mut src, DriveLimits::default());
        let stats = net.stats();
        assert_eq!(stats.delivered_packets(), 40);
        // 40 packets at 12.8 ns serialization each: the last one waited
        // ~500 ns even though the channel queue holds only 16.
        assert!(stats.latency().max().as_ns_f64() > 400.0);
    }
}
