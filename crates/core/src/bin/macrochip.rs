//! `macrochip` — command-line front end to the simulator.
//!
//! ```text
//! macrochip tables
//! macrochip sweep     --network p2p --pattern uniform --loads 0.1,0.3,0.6
//! macrochip sustained --network all --pattern uniform
//! macrochip coherent  --workload Swaptions --network all [--ops 40]
//! macrochip mp        --collective butterfly [--bytes 1024] [--rounds 2]
//! ```
//!
//! Argument parsing is deliberately dependency-free.

use desim::Time;
use macrochip::prelude::*;
use macrochip::report::{fmt, Table};
use macrochip::runner::{drive, DriveLimits};
use macrochip::sweep::{latency_vs_load, sustained_bandwidth};
use std::process::ExitCode;
use workloads::{Collective, MessagePassingWorkload};

const USAGE: &str = "\
macrochip — silicon-photonic multi-chip network simulator (ISCA 2010 reproduction)

USAGE:
    macrochip tables
    macrochip sweep     --network <NET> --pattern <PAT> [--loads 0.1,0.3,...]
    macrochip sustained --network <NET|all> --pattern <PAT>
    macrochip coherent  --workload <NAME> --network <NET|all> [--ops <N>]
    macrochip mp        --collective <COLL> [--bytes <B>] [--rounds <R>]

NETWORKS:   p2p, limited, token, circuit, two-phase, two-phase-alt, all
PATTERNS:   uniform, transpose, butterfly, neighbor, all-to-all, hotspot
WORKLOADS:  Radix, Barnes, Blackscholes, Densities, Forces, Swaptions,
            or a pattern name (synthetic, LS mix)
COLLECTIVES: ring, butterfly, halo, all-to-all
";

fn parse_network(name: &str) -> Option<Vec<NetworkKind>> {
    Some(match name {
        "p2p" => vec![NetworkKind::PointToPoint],
        "limited" => vec![NetworkKind::LimitedPointToPoint],
        "token" => vec![NetworkKind::TokenRing],
        "circuit" => vec![NetworkKind::CircuitSwitched],
        "two-phase" => vec![NetworkKind::TwoPhase],
        "two-phase-alt" => vec![NetworkKind::TwoPhaseAlt],
        "all" => NetworkKind::ALL.to_vec(),
        _ => return None,
    })
}

fn parse_pattern(name: &str) -> Option<Pattern> {
    Some(match name {
        "uniform" => Pattern::Uniform,
        "transpose" => Pattern::Transpose,
        "butterfly" => Pattern::Butterfly,
        "neighbor" => Pattern::Neighbor,
        "all-to-all" => Pattern::AllToAll,
        "hotspot" => Pattern::HotSpot,
        _ => return None,
    })
}

fn parse_collective(name: &str) -> Option<Collective> {
    Some(match name {
        "ring" => Collective::RingAllReduce,
        "butterfly" => Collective::ButterflyExchange,
        "halo" => Collective::HaloExchange,
        "all-to-all" => Collective::AllToAllPersonalized,
        _ => return None,
    })
}

fn parse_workload(name: &str, ops: u32) -> Option<WorkloadSpec> {
    if let Some(profile) = AppProfile::suite().into_iter().find(|p| p.name == name) {
        return Some(WorkloadSpec::App(profile.with_ops_per_core(ops)));
    }
    parse_pattern(&name.to_lowercase()).map(|pattern| WorkloadSpec::Synthetic {
        pattern,
        mix: SharingMix::LessSharing,
        ops_per_core: ops,
    })
}

/// Pulls `--flag value` out of the argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn cmd_tables() -> Result<(), String> {
    use photonics::geometry::Layout;
    use photonics::inventory::ComponentCounts;
    use photonics::power::NetworkPower;
    let layout = Layout::macrochip();
    let mut power = Table::new(&["Network", "Loss factor", "Laser (W)"]);
    for row in NetworkPower::table5(&layout) {
        power.row_owned(vec![
            row.network.name().to_string(),
            format!("{}x", fmt(row.loss_factor, 0)),
            fmt(row.laser.watts(), 1),
        ]);
    }
    println!("Table 5: network optical power\n\n{}", power.to_text());
    let mut counts = Table::new(&["Network", "Tx", "Rx", "Wgs", "Switches"]);
    for c in ComponentCounts::table6(&layout) {
        counts.row_owned(vec![
            c.network.name().to_string(),
            c.transmitters.to_string(),
            c.receivers.to_string(),
            c.waveguides.to_string(),
            c.switches.to_string(),
        ]);
    }
    println!("Table 6: component counts\n\n{}", counts.to_text());
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let config = MacrochipConfig::scaled();
    let kinds = parse_network(&flag(args, "--network").ok_or("missing --network")?)
        .ok_or("unknown network")?;
    let pattern = parse_pattern(&flag(args, "--pattern").ok_or("missing --pattern")?)
        .ok_or("unknown pattern")?;
    let loads: Vec<f64> = match flag(args, "--loads") {
        Some(s) => s
            .split(',')
            .map(|x| x.parse().map_err(|_| format!("bad load {x}")))
            .collect::<Result<_, _>>()?,
        None => macrochip::sweep::figure6_loads(pattern),
    };
    let mut table = Table::new(&["Network", "Load (%)", "Mean latency (ns)", "Saturated"]);
    for kind in kinds {
        for p in latency_vs_load(kind, pattern, &loads, &config, SweepOptions::default()) {
            table.row_owned(vec![
                kind.name().to_string(),
                fmt(p.offered * 100.0, 1),
                fmt(p.mean_latency_ns, 2),
                p.saturated.to_string(),
            ]);
        }
    }
    println!("{}", table.to_text());
    Ok(())
}

fn cmd_sustained(args: &[String]) -> Result<(), String> {
    let config = MacrochipConfig::scaled();
    let kinds = parse_network(&flag(args, "--network").ok_or("missing --network")?)
        .ok_or("unknown network")?;
    let pattern = parse_pattern(&flag(args, "--pattern").ok_or("missing --pattern")?)
        .ok_or("unknown pattern")?;
    for kind in kinds {
        let f = sustained_bandwidth(kind, pattern, &config, SweepOptions::default(), 0.01);
        println!("{:<24} {:>5.1}% of peak", kind.name(), f * 100.0);
    }
    Ok(())
}

fn cmd_coherent(args: &[String]) -> Result<(), String> {
    let config = MacrochipConfig::scaled();
    let ops: u32 = flag(args, "--ops")
        .map(|s| s.parse().map_err(|_| "bad --ops"))
        .transpose()?
        .unwrap_or(40);
    let spec = parse_workload(&flag(args, "--workload").ok_or("missing --workload")?, ops)
        .ok_or("unknown workload")?;
    let kinds = parse_network(&flag(args, "--network").ok_or("missing --network")?)
        .ok_or("unknown network")?;
    let model = NetworkEnergyModel::default();
    let mut table = Table::new(&["Network", "Makespan (us)", "Op latency (ns)", "EDP (nJ.s)"]);
    for kind in kinds {
        let run = run_coherent(kind, &spec, &config, 0xCAFE);
        table.row_owned(vec![
            kind.name().to_string(),
            fmt(run.makespan.as_ns_f64() / 1e3, 2),
            fmt(run.mean_op_latency.as_ns_f64(), 1),
            format!("{:.3e}", model.edp(&run) * 1e9),
        ]);
    }
    println!("Workload: {}\n\n{}", spec.name(), table.to_text());
    Ok(())
}

fn cmd_mp(args: &[String]) -> Result<(), String> {
    let config = MacrochipConfig::scaled();
    let collective = parse_collective(&flag(args, "--collective").ok_or("missing --collective")?)
        .ok_or("unknown collective")?;
    let bytes: u32 = flag(args, "--bytes")
        .map(|s| s.parse().map_err(|_| "bad --bytes"))
        .transpose()?
        .unwrap_or(1024);
    let rounds: usize = flag(args, "--rounds")
        .map(|s| s.parse().map_err(|_| "bad --rounds"))
        .transpose()?
        .unwrap_or(1);
    for kind in NetworkKind::ALL {
        let mut net = networks::build(kind, config);
        let mut w = MessagePassingWorkload::new(&config.grid, collective, bytes, rounds);
        let outcome = drive(
            net.as_mut(),
            &mut w,
            DriveLimits {
                deadline: Time::from_us(1_000_000),
                max_stalled: usize::MAX,
            },
        );
        if outcome.timed_out {
            return Err(format!("{} timed out", kind.name()));
        }
        println!(
            "{:<24} {:>9.2} us",
            kind.name(),
            w.finished_at().expect("completed").as_us_f64()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("tables") => cmd_tables(),
        Some("sweep") => cmd_sweep(&args),
        Some("sustained") => cmd_sustained(&args),
        Some("coherent") => cmd_coherent(&args),
        Some("mp") => cmd_mp(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
