//! Run provenance: what was run, with what configuration, and how it
//! ended.
//!
//! A [`RunManifest`] is emitted alongside exported metrics so a results
//! file is self-describing: the command, network selection, pattern, RNG
//! seed, drive limits, outcome, wall-clock duration and crate version are
//! all recorded. Simulation results for a given (seed, config) pair are
//! deterministic; the manifest captures the non-deterministic context
//! (wall-clock) separately from the metrics snapshot so snapshots stay
//! byte-identical across reruns.

use crate::runner::DriveLimits;
use netcore::metrics::{json_escape, json_f64};
use netcore::MacrochipConfig;
use std::fmt::Write as _;

/// Provenance of one simulator invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// The subcommand that produced the results (e.g. `sweep`).
    pub command: String,
    /// Server-assigned job identifier when the run was served by
    /// `macrochip serve`; empty for direct CLI runs.
    pub job_id: String,
    /// Network selection as given on the command line.
    pub network: String,
    /// Traffic pattern or workload name.
    pub pattern: String,
    /// Canonical fault-plan specification the run was subjected to, or
    /// `none` for fault-free runs.
    pub fault_plan: String,
    /// RNG seed for the traffic generator.
    pub seed: u64,
    /// Drive deadline, in nanoseconds of simulation time.
    pub deadline_ns: f64,
    /// Stalled-packet bound that declares saturation.
    pub max_stalled: usize,
    /// How the run(s) ended (e.g. `completed`, `3/10 points saturated`).
    pub outcome: String,
    /// Worker threads the campaign engine used (1 = serial). Parallel
    /// execution never changes results — this is provenance, not input.
    pub jobs: usize,
    /// Result-cache provenance: `disabled`, or `N/M points from cache`.
    pub cache: String,
    /// Directory the result cache lives in (the `MACROCHIP_CACHE_DIR`
    /// resolution at run time, whether or not the cache was consulted).
    pub cache_dir: String,
    /// Host wall-clock duration of the run, in milliseconds.
    pub wall_clock_ms: f64,
    /// Simulation events the run processed (deterministic; from the
    /// always-on [`desim::prof`] host counters).
    pub host_events: u64,
    /// Host throughput: `host_events / wall_clock`. Nondeterministic.
    pub host_events_per_sec: f64,
    /// Peak resident set size in bytes (`VmHWM`), 0 where unavailable.
    pub host_peak_rss_bytes: u64,
    /// Version of the `macrochip` crate that produced the results.
    pub version: &'static str,
    /// Simulated sites (the 8×8 grid).
    pub sites: usize,
    /// Cores per site.
    pub cores_per_site: usize,
    /// Data-message payload size in bytes.
    pub data_bytes: u32,
}

impl RunManifest {
    /// Creates a manifest for `command` under `config`, with empty
    /// context fields for the caller to fill in.
    pub fn new(command: &str, config: &MacrochipConfig) -> RunManifest {
        RunManifest {
            command: command.to_string(),
            job_id: String::new(),
            network: String::new(),
            pattern: String::new(),
            fault_plan: String::from("none"),
            seed: 0,
            deadline_ns: f64::INFINITY,
            max_stalled: 0,
            outcome: String::from("completed"),
            jobs: 1,
            cache: String::from("disabled"),
            cache_dir: crate::campaign::ResultCache::default_dir()
                .display()
                .to_string(),
            wall_clock_ms: 0.0,
            host_events: 0,
            host_events_per_sec: 0.0,
            host_peak_rss_bytes: 0,
            version: env!("CARGO_PKG_VERSION"),
            sites: config.grid.sites(),
            cores_per_site: config.cores_per_site,
            data_bytes: config.data_bytes,
        }
    }

    /// Records the drive limits the run used.
    pub fn set_limits(&mut self, limits: DriveLimits) {
        self.deadline_ns = limits.deadline.as_ns_f64();
        self.max_stalled = limits.max_stalled;
    }

    /// Records host observability figures: the wall clock, the simulation
    /// events processed since `events_base` (a [`desim::prof`] counter
    /// reading taken at command start), the derived events/sec, and the
    /// process peak RSS. Call once, right after the run finishes.
    pub fn set_host_stats(&mut self, wall_ms: f64, events_base: u64) {
        self.wall_clock_ms = wall_ms;
        self.host_events =
            desim::prof::counter(desim::prof::Counter::SimEvents).saturating_sub(events_base);
        self.host_events_per_sec = if wall_ms > 0.0 {
            self.host_events as f64 / (wall_ms / 1e3)
        } else {
            0.0
        };
        self.host_peak_rss_bytes = desim::prof::peak_rss_bytes();
    }

    /// Serializes the manifest as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\n  \"command\": \"{}\",", json_escape(&self.command));
        let _ = write!(out, "\n  \"job_id\": \"{}\",", json_escape(&self.job_id));
        let _ = write!(out, "\n  \"network\": \"{}\",", json_escape(&self.network));
        let _ = write!(out, "\n  \"pattern\": \"{}\",", json_escape(&self.pattern));
        let _ = write!(
            out,
            "\n  \"fault_plan\": \"{}\",",
            json_escape(&self.fault_plan)
        );
        let _ = write!(out, "\n  \"seed\": {},", self.seed);
        let _ = write!(out, "\n  \"deadline_ns\": {},", json_f64(self.deadline_ns));
        let _ = write!(out, "\n  \"max_stalled\": {},", self.max_stalled);
        let _ = write!(out, "\n  \"outcome\": \"{}\",", json_escape(&self.outcome));
        let _ = write!(out, "\n  \"jobs\": {},", self.jobs);
        let _ = write!(out, "\n  \"cache\": \"{}\",", json_escape(&self.cache));
        let _ = write!(
            out,
            "\n  \"cache_dir\": \"{}\",",
            json_escape(&self.cache_dir)
        );
        let _ = write!(
            out,
            "\n  \"wall_clock_ms\": {},",
            json_f64(self.wall_clock_ms)
        );
        let _ = write!(out, "\n  \"host_events\": {},", self.host_events);
        let _ = write!(
            out,
            "\n  \"host_events_per_sec\": {},",
            json_f64(self.host_events_per_sec)
        );
        let _ = write!(
            out,
            "\n  \"host_peak_rss_bytes\": {},",
            self.host_peak_rss_bytes
        );
        let _ = write!(out, "\n  \"version\": \"{}\",", json_escape(self.version));
        let _ = write!(out, "\n  \"sites\": {},", self.sites);
        let _ = write!(out, "\n  \"cores_per_site\": {},", self.cores_per_site);
        let _ = write!(out, "\n  \"data_bytes\": {}", self.data_bytes);
        out.push_str("\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::trace::validate_json;
    use desim::Time;

    #[test]
    fn manifest_json_is_valid_and_carries_context() {
        let config = MacrochipConfig::scaled();
        let mut m = RunManifest::new("sweep", &config);
        m.network = "two-phase".into();
        m.pattern = "uniform".into();
        m.seed = 0xC0FFEE;
        m.set_limits(DriveLimits {
            deadline: Time::from_us(25),
            max_stalled: 5_000,
        });
        m.wall_clock_ms = 12.5;
        let json = m.to_json();
        validate_json(&json).expect("manifest JSON must be well-formed");
        for key in [
            "\"host_events\": 0",
            "\"host_events_per_sec\": 0",
            "\"host_peak_rss_bytes\": ",
            "\"command\": \"sweep\"",
            "\"job_id\": \"\"",
            "\"network\": \"two-phase\"",
            "\"fault_plan\": \"none\"",
            "\"seed\": 12648430",
            "\"deadline_ns\": 25000",
            "\"sites\": 64",
            "\"version\": \"",
            "\"jobs\": 1",
            "\"cache\": \"disabled\"",
            "\"cache_dir\": \"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn infinite_deadline_serializes_as_null() {
        let m = RunManifest::new("sweep", &MacrochipConfig::scaled());
        let json = m.to_json();
        validate_json(&json).unwrap();
        assert!(json.contains("\"deadline_ns\": null"));
    }
}
