//! Closed-loop coherent experiments (Figures 7, 8, 9, 10).
//!
//! A coherent run plays one workload (an application model or a synthetic
//! pattern with a sharing mix) through the MOESI engine over one network,
//! to completion. Its *makespan* (time to finish the fixed amount of
//! work) yields Figure 7's speedups; its mean *latency per coherence
//! operation* is Figure 8; its traffic counters feed the energy model
//! behind Figures 9 and 10.

use crate::runner::{drive_observed, DriveLimits};
use coherence::ops::OpSource;
use coherence::{CoherenceEngine, EngineConfig, OpStats};
use desim::{Span, Time, Tracer};
use netcore::audit::{AuditReport, Auditor};
use netcore::{MacrochipConfig, Network, NetworkKind, Packet};
use std::cell::RefCell;
use std::rc::Rc;
use workloads::{AppProfile, AppWorkload, Pattern, SharingMix, SyntheticOpSource};

/// Which workload a coherent run executes.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// An application-kernel model (Table 2).
    App(AppProfile),
    /// A synthetic pattern with a sharing mix (Table 3 + §5).
    Synthetic {
        /// Message pattern directing request homes.
        pattern: Pattern,
        /// Sharing mix deciding invalidation fan-out.
        mix: SharingMix,
        /// Misses per core.
        ops_per_core: u32,
    },
}

impl WorkloadSpec {
    /// Display name matching the paper's figure columns.
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::App(p) => p.name.to_string(),
            WorkloadSpec::Synthetic { pattern, mix, .. } => {
                format!("{}{}", pattern.name(), mix.suffix())
            }
        }
    }

    /// The eleven columns of Figures 7/8/10: six application kernels,
    /// then All-to-all, Transpose, Transpose-MS, Neighbor, Butterfly.
    pub fn figure7_suite(ops_per_core: u32) -> Vec<WorkloadSpec> {
        let mut v: Vec<WorkloadSpec> = AppProfile::suite()
            .into_iter()
            .map(WorkloadSpec::App)
            .collect();
        let ls = SharingMix::LessSharing;
        v.push(WorkloadSpec::Synthetic {
            pattern: Pattern::AllToAll,
            mix: ls,
            ops_per_core,
        });
        v.push(WorkloadSpec::Synthetic {
            pattern: Pattern::Transpose,
            mix: ls,
            ops_per_core,
        });
        v.push(WorkloadSpec::Synthetic {
            pattern: Pattern::Transpose,
            mix: SharingMix::MoreSharing,
            ops_per_core,
        });
        v.push(WorkloadSpec::Synthetic {
            pattern: Pattern::Neighbor,
            mix: ls,
            ops_per_core,
        });
        v.push(WorkloadSpec::Synthetic {
            pattern: Pattern::Butterfly,
            mix: ls,
            ops_per_core,
        });
        v
    }
}

/// The measured outcome of one coherent run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoherentRun {
    /// The network architecture used.
    pub network: NetworkKind,
    /// Workload display name.
    pub workload: String,
    /// Time to complete the fixed work (Figure 7's inverse metric).
    pub makespan: Span,
    /// Mean latency per coherence operation (Figure 8).
    pub mean_op_latency: Span,
    /// Coherence operations completed.
    pub ops_completed: u64,
    /// Bytes delivered by the network.
    pub delivered_bytes: u64,
    /// Bytes that crossed an electronic router (limited point-to-point).
    pub routed_bytes: u64,
    /// Packets delivered.
    pub packets: u64,
}

impl CoherentRun {
    /// Speedup of this run relative to a baseline run of the same
    /// workload (the paper normalizes to the circuit-switched network).
    ///
    /// # Panics
    ///
    /// Panics if the runs executed different workloads or either makespan
    /// is zero.
    pub fn speedup_over(&self, baseline: &CoherentRun) -> f64 {
        assert_eq!(self.workload, baseline.workload, "workload mismatch");
        assert!(
            !self.makespan.is_zero() && !baseline.makespan.is_zero(),
            "degenerate makespan"
        );
        baseline.makespan.as_ns_f64() / self.makespan.as_ns_f64()
    }
}

/// Runs `spec` over network `kind` to completion.
///
/// # Example
///
/// ```
/// use macrochip::experiment::{run_coherent, WorkloadSpec};
/// use netcore::{MacrochipConfig, NetworkKind};
/// use workloads::{Pattern, SharingMix};
///
/// let spec = WorkloadSpec::Synthetic {
///     pattern: Pattern::Neighbor,
///     mix: SharingMix::LessSharing,
///     ops_per_core: 5,
/// };
/// let run = run_coherent(NetworkKind::PointToPoint, &spec,
///                        &MacrochipConfig::scaled(), 42);
/// assert_eq!(run.ops_completed, 64 * 8 * 5);
/// ```
pub fn run_coherent(
    kind: NetworkKind,
    spec: &WorkloadSpec,
    config: &MacrochipConfig,
    seed: u64,
) -> CoherentRun {
    run_coherent_with(kind, spec, config, EngineConfig::default(), seed)
}

/// Runs `spec` over network `kind` with a custom coherence-engine
/// configuration (memory latency, MSHR count, core issue policy) — the
/// entry point for the memory-technology and core-model ablations.
pub fn run_coherent_with(
    kind: NetworkKind,
    spec: &WorkloadSpec,
    config: &MacrochipConfig,
    engine_config: EngineConfig,
    seed: u64,
) -> CoherentRun {
    run_coherent_observed(kind, spec, config, engine_config, seed, |_| {})
}

/// [`run_coherent_with`] with a capture hook: `observer` sees every packet
/// the coherence engine injects (requests, forwards, invalidations, acks,
/// data), in emission order — so a closed-loop run can be captured into a
/// replayable trace. A no-op observer leaves the run untouched.
pub fn run_coherent_observed<F: FnMut(&Packet)>(
    kind: NetworkKind,
    spec: &WorkloadSpec,
    config: &MacrochipConfig,
    engine_config: EngineConfig,
    seed: u64,
    observer: F,
) -> CoherentRun {
    run_coherent_full(kind, spec, config, engine_config, seed, observer, false).0
}

/// [`run_coherent_with`] under the invariant auditor: the network's
/// flight-recorder stream feeds a [`netcore::Auditor`] and the coherence
/// engine's structural invariants (MSHR accounting, pending-line table,
/// directory owner/sharer exclusivity) are checked after the drain. The
/// returned report merges both layers' findings.
pub fn run_coherent_audited(
    kind: NetworkKind,
    spec: &WorkloadSpec,
    config: &MacrochipConfig,
    engine_config: EngineConfig,
    seed: u64,
) -> (CoherentRun, AuditReport) {
    let (run, report) = run_coherent_full(kind, spec, config, engine_config, seed, |_| {}, true);
    (run, report.expect("audit requested"))
}

#[allow(clippy::type_complexity)]
fn run_coherent_full<F: FnMut(&Packet)>(
    kind: NetworkKind,
    spec: &WorkloadSpec,
    config: &MacrochipConfig,
    engine_config: EngineConfig,
    seed: u64,
    observer: F,
    audit: bool,
) -> (CoherentRun, Option<AuditReport>) {
    let mut net = networks::build(kind, *config);
    let auditor = audit.then(|| Rc::new(RefCell::new(Auditor::new(kind, config))));
    let tracer = match &auditor {
        Some(a) => {
            let tracer = Tracer::shared(a);
            net.set_tracer(tracer.clone());
            tracer
        }
        None => Tracer::disabled(),
    };

    let (stats, completed, mut violations) = match spec {
        WorkloadSpec::App(profile) => drive_coherent(
            net.as_mut(),
            AppWorkload::new(&config.grid, *profile, seed),
            config,
            engine_config,
            tracer,
            observer,
            audit,
        ),
        WorkloadSpec::Synthetic {
            pattern,
            mix,
            ops_per_core,
        } => drive_coherent(
            net.as_mut(),
            SyntheticOpSource::new(&config.grid, *pattern, *mix, *ops_per_core, seed),
            config,
            engine_config,
            tracer,
            observer,
            audit,
        ),
    };

    let report = auditor.map(|a| {
        let end = stats.last_completion();
        let mut report = a.borrow_mut().finalize(net.stats(), 0, end);
        report.total_violations += violations.len() as u64;
        report.violations.append(&mut violations);
        report
    });

    let net_stats = net.stats();
    let run = CoherentRun {
        network: kind,
        workload: spec.name(),
        makespan: stats.last_completion().saturating_since(Time::ZERO),
        mean_op_latency: stats.latency().mean(),
        ops_completed: completed,
        delivered_bytes: net_stats.delivered_bytes(),
        routed_bytes: net_stats.routed_bytes(),
        packets: net_stats.delivered_packets(),
    };
    (run, report)
}

/// Drives one engine over `net` to completion; shared by the App and
/// Synthetic arms so their setup cannot drift apart. Returns the engine's
/// stats, its completed-op count, and (when `check` is set) any engine
/// invariant violations found after the drain.
fn drive_coherent<S: OpSource, F: FnMut(&Packet)>(
    net: &mut dyn Network,
    source: S,
    config: &MacrochipConfig,
    engine_config: EngineConfig,
    tracer: Tracer,
    observer: F,
    check: bool,
) -> (OpStats, u64, Vec<netcore::AuditViolation>) {
    let mut engine = CoherenceEngine::new(*config, engine_config, source);
    engine.set_tracer(tracer.clone());
    let outcome = drive_observed(net, &mut engine, coherent_limits(), tracer, observer);
    debug_assert!(!outcome.timed_out, "coherent run timed out");
    let violations = if check {
        engine.check_invariants(outcome.end)
    } else {
        Vec::new()
    };
    (
        engine.stats().clone(),
        engine.stats().completed(),
        violations,
    )
}

fn coherent_limits() -> DriveLimits {
    DriveLimits {
        // Closed-loop runs always converge; the deadline is a safety net.
        deadline: Time::from_us(1_000_000),
        max_stalled: usize::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MacrochipConfig {
        MacrochipConfig::scaled()
    }

    fn small_synth(pattern: Pattern) -> WorkloadSpec {
        WorkloadSpec::Synthetic {
            pattern,
            mix: SharingMix::LessSharing,
            ops_per_core: 5,
        }
    }

    #[test]
    fn all_networks_complete_a_small_synthetic_run() {
        let spec = small_synth(Pattern::Uniform);
        for kind in NetworkKind::ALL {
            let run = run_coherent(kind, &spec, &config(), 9);
            assert_eq!(run.ops_completed, 64 * 8 * 5, "{kind}");
            assert!(run.makespan > Span::ZERO, "{kind}");
            assert!(run.mean_op_latency > Span::ZERO, "{kind}");
        }
    }

    #[test]
    fn p2p_beats_circuit_switched_on_transpose() {
        let spec = small_synth(Pattern::Transpose);
        let p2p = run_coherent(NetworkKind::PointToPoint, &spec, &config(), 9);
        let circuit = run_coherent(NetworkKind::CircuitSwitched, &spec, &config(), 9);
        let speedup = p2p.speedup_over(&circuit);
        assert!(speedup > 1.0, "speedup {speedup}");
    }

    #[test]
    fn only_limited_p2p_routes_bytes_electronically() {
        let spec = small_synth(Pattern::Uniform);
        let limited = run_coherent(NetworkKind::LimitedPointToPoint, &spec, &config(), 9);
        assert!(limited.routed_bytes > 0);
        let p2p = run_coherent(NetworkKind::PointToPoint, &spec, &config(), 9);
        assert_eq!(p2p.routed_bytes, 0);
    }

    #[test]
    fn figure7_suite_has_eleven_columns() {
        let suite = WorkloadSpec::figure7_suite(10);
        assert_eq!(suite.len(), 11);
        let names: Vec<_> = suite.iter().map(WorkloadSpec::name).collect();
        assert!(names.contains(&"Radix".to_string()));
        assert!(names.contains(&"Transpose-MS".to_string()));
        assert!(names.contains(&"Butterfly".to_string()));
    }

    #[test]
    fn app_workload_runs_end_to_end() {
        let profile = AppProfile::suite()[2].with_ops_per_core(10); // Blackscholes
        let spec = WorkloadSpec::App(profile);
        let run = run_coherent(NetworkKind::PointToPoint, &spec, &config(), 4);
        assert!(run.ops_completed >= 64 * 8 * 9, "ops {}", run.ops_completed);
        assert!(run.delivered_bytes > 0);
    }

    #[test]
    #[should_panic(expected = "workload mismatch")]
    fn speedup_requires_matching_workloads() {
        let a = run_coherent(
            NetworkKind::PointToPoint,
            &small_synth(Pattern::Uniform),
            &config(),
            1,
        );
        let b = run_coherent(
            NetworkKind::PointToPoint,
            &small_synth(Pattern::Butterfly),
            &config(),
            1,
        );
        let _ = a.speedup_over(&b);
    }
}
