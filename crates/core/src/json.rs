//! A minimal recursive-descent JSON reader shared by every hand-rolled
//! consumer in the workspace — `BENCH_*.json` baselines ([`crate::bench`])
//! and the `macrochip serve` line-delimited protocol.
//!
//! The workspace deliberately has no serde; the writer sides are
//! hand-rolled (`netcore::metrics::{json_escape, json_f64}` plus
//! `format!`), so the reader is too. It parses strict JSON with no
//! extensions, rejects trailing bytes, and represents numbers as `f64`
//! (integers up to 2^53 round-trip exactly, which covers every field the
//! workspace serializes except 64-bit hashes — those travel as hex
//! strings).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one (non-negative, integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements of an array; `None` for other variants.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `text` as one complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(format!("bad object at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("bad array at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at offset {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {other:?} at offset {}", self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a
                    // &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_nesting_escapes_and_rejects_garbage() {
        let v = parse("{\"a\": [1, -2.5e1, true, null], \"s\": \"q\\\"\\u0041\", \"o\": {}}")
            .expect("valid");
        assert_eq!(
            v.get("a").and_then(|a| a.as_array().map(|i| i[1].as_f64())),
            Some(Some(-25.0))
        );
        assert_eq!(v.get("s").and_then(Value::as_str), Some("q\"A"));
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("\"42\"").unwrap().as_u64(), None);
    }
}
