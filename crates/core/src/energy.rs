//! Energy accounting and energy-delay products (§6.3, Figures 9 and 10).
//!
//! Total energy of a run is:
//!
//! * **static optical power** — lasers (Table 5) plus ring-tuning heaters,
//!   burned for the whole makespan; the two-phase configurations also pay
//!   for their arbitration network;
//! * **dynamic transceiver energy** — modulator + receiver, 100 fJ/bit on
//!   every byte the network delivered;
//! * **electronic router energy** — 60 pJ/byte on every byte the limited
//!   point-to-point network forwarded (Figure 9's numerator).
//!
//! The energy-delay product (Figure 10) multiplies total energy by the
//! run's makespan and is reported normalized to the point-to-point
//! network.

use crate::experiment::CoherentRun;
use netcore::NetworkKind;
use photonics::geometry::Layout;
use photonics::inventory::NetworkId;
use photonics::power::{dynamic_joules_per_byte, router_joules_per_byte, NetworkPower};

/// Energy totals of one coherent run, in joules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Laser + tuning energy over the makespan.
    pub static_j: f64,
    /// Modulator + receiver energy on delivered bytes.
    pub dynamic_j: f64,
    /// Electronic router energy on forwarded bytes.
    pub router_j: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.static_j + self.dynamic_j + self.router_j
    }

    /// Router energy as a fraction of the total (Figure 9's metric).
    pub fn router_fraction(&self) -> f64 {
        if self.total_j() == 0.0 {
            0.0
        } else {
            self.router_j / self.total_j()
        }
    }
}

/// The per-network energy model.
#[derive(Debug, Clone, Copy)]
pub struct NetworkEnergyModel {
    layout: Layout,
}

impl NetworkEnergyModel {
    /// Builds the model for a layout (Table 5 powers are layout-derived).
    pub fn new(layout: Layout) -> NetworkEnergyModel {
        NetworkEnergyModel { layout }
    }

    /// Static power of `kind` in watts: laser + tuning, plus the
    /// arbitration network for the two-phase configurations.
    pub fn static_watts(&self, kind: NetworkKind) -> f64 {
        let data = NetworkPower::for_network(kind.power_id(), &self.layout);
        let mut w = data.static_total(&self.layout).watts();
        if matches!(kind, NetworkKind::TwoPhase | NetworkKind::TwoPhaseAlt) {
            let arb = NetworkPower::for_network(NetworkId::TwoPhaseArbitration, &self.layout);
            w += arb.static_total(&self.layout).watts();
        }
        w
    }

    /// Full energy breakdown of a coherent run.
    pub fn energy(&self, run: &CoherentRun) -> EnergyBreakdown {
        let seconds = run.makespan.as_secs_f64();
        EnergyBreakdown {
            static_j: self.static_watts(run.network) * seconds,
            dynamic_j: dynamic_joules_per_byte() * run.delivered_bytes as f64,
            router_j: router_joules_per_byte() * run.routed_bytes as f64,
        }
    }

    /// Energy-delay product of a run, in joule-seconds.
    pub fn edp(&self, run: &CoherentRun) -> f64 {
        self.energy(run).total_j() * run.makespan.as_secs_f64()
    }
}

impl Default for NetworkEnergyModel {
    fn default() -> Self {
        NetworkEnergyModel::new(Layout::macrochip())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::Span;

    fn run_with(network: NetworkKind, makespan_us: u64, bytes: u64, routed: u64) -> CoherentRun {
        CoherentRun {
            network,
            workload: "test".to_string(),
            makespan: Span::from_us(makespan_us),
            mean_op_latency: Span::from_ns(100),
            ops_completed: 1,
            delivered_bytes: bytes,
            routed_bytes: routed,
            packets: 1,
        }
    }

    #[test]
    fn static_power_orders_like_table5() {
        let m = NetworkEnergyModel::default();
        let p2p = m.static_watts(NetworkKind::PointToPoint);
        assert!((p2p - 9.0112).abs() < 0.1, "p2p static {p2p}"); // 8.2 laser + 0.8 tuning
        assert!(m.static_watts(NetworkKind::TokenRing) > 10.0 * p2p);
        assert!(m.static_watts(NetworkKind::CircuitSwitched) > 20.0 * p2p);
        assert!(m.static_watts(NetworkKind::TwoPhase) > 4.0 * p2p);
    }

    #[test]
    fn two_phase_includes_arbitration_network() {
        let m = NetworkEnergyModel::default();
        let data_only = NetworkPower::for_network(NetworkId::TwoPhaseData, &Layout::macrochip())
            .static_total(&Layout::macrochip())
            .watts();
        assert!(m.static_watts(NetworkKind::TwoPhase) > data_only + 0.9);
    }

    #[test]
    fn dynamic_energy_scales_with_bytes() {
        let m = NetworkEnergyModel::default();
        let a = m.energy(&run_with(NetworkKind::PointToPoint, 1, 1_000_000, 0));
        let b = m.energy(&run_with(NetworkKind::PointToPoint, 1, 2_000_000, 0));
        assert!((b.dynamic_j / a.dynamic_j - 2.0).abs() < 1e-9);
        // 1 MB at 800 fJ/B = 0.8 uJ.
        assert!((a.dynamic_j - 0.8e-6).abs() < 1e-12);
    }

    #[test]
    fn router_energy_only_when_routed() {
        let m = NetworkEnergyModel::default();
        let none = m.energy(&run_with(NetworkKind::LimitedPointToPoint, 1, 1_000, 0));
        assert_eq!(none.router_j, 0.0);
        let routed = m.energy(&run_with(NetworkKind::LimitedPointToPoint, 1, 1_000, 1_000));
        // 1000 B at 60 pJ/B = 60 nJ.
        assert!((routed.router_j - 60e-9).abs() < 1e-15);
        assert!(routed.router_fraction() > 0.0);
    }

    #[test]
    fn edp_penalizes_slow_and_hungry_networks() {
        let m = NetworkEnergyModel::default();
        // Same work: the token ring takes 3x longer at ~18x the static
        // power; its EDP must be far worse than p2p's.
        let p2p = run_with(NetworkKind::PointToPoint, 10, 1_000_000, 0);
        let ring = run_with(NetworkKind::TokenRing, 30, 1_000_000, 0);
        let ratio = m.edp(&ring) / m.edp(&p2p);
        assert!(ratio > 100.0, "EDP ratio {ratio}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = NetworkEnergyModel::default();
        let e = m.energy(&run_with(
            NetworkKind::LimitedPointToPoint,
            5,
            500_000,
            100_000,
        ));
        assert!((e.total_j() - (e.static_j + e.dynamic_j + e.router_j)).abs() < 1e-18);
    }
}
