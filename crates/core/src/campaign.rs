//! Parallel campaign engine: deterministic sharded execution of
//! independent simulation points, with a content-addressed result cache.
//!
//! The paper's evaluation (§6) is a cross-product of {networks} ×
//! {patterns/workloads} × {offered loads, seeds, fault plans}. Every point
//! of that product is an **independent** simulation: it builds its own
//! network, drives its own `desim` event loop, and draws from its own
//! seeded RNG. This module shards such points across a work-stealing
//! `std::thread` pool and merges the results back in **canonical
//! (input-index) order**, so campaign output is byte-identical to the
//! serial path regardless of worker count or OS scheduling.
//!
//! Two layers:
//!
//! * [`run_indexed`] — the untyped engine: run `f(i, &items[i])` for every
//!   item on `jobs` workers, return outputs in input order. Workers steal
//!   the next unclaimed index from a shared atomic counter, so a slow
//!   point (a saturated network grinding to its stall bound) does not hold
//!   up the queue behind one unlucky worker.
//! * [`Campaign`] — the typed layer: a declarative [`CampaignPoint`] list
//!   (sweep / fault / coherent points) executed through [`run_point`],
//!   with results transparently persisted in a [`ResultCache`] keyed by a
//!   content hash of the full point specification, so repeated campaigns
//!   skip already-computed points.
//!
//! Determinism contract: for a fixed point list and configuration, the
//! returned vector — and any serialization of it — is identical for every
//! `jobs` value, with a cold or warm cache. The differential and property
//! tests in `tests/` enforce this.

use crate::experiment::{run_coherent, run_coherent_audited, CoherentRun, WorkloadSpec};
use crate::replay_run::{run_replay, run_replay_faulted, ReplayOptions, ReplaySummary};
use crate::runner::{drive_traced, DriveLimits};
use crate::sweep::{run_load_point_traced, LoadPoint, SweepOptions};
use desim::trace::{RingSink, TeeSink};
use desim::{Span, Time, TraceEvent, Tracer};
use faults::{FaultPlan, ResilientNetwork};
use netcore::audit::{AuditReport, Auditor};
use netcore::{
    FabricConfig, MacrochipConfig, MetricsRegistry, MetricsSnapshot, Network, NetworkKind,
};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use workloads::{OpenLoopTraffic, Pattern};

/// Bumped whenever the cache key derivation or value encoding changes, so
/// stale `results/cache/` entries from older binaries are never misread.
const CACHE_FORMAT: u32 = 1;

/// The number of workers to use when the caller asks for "auto" (`0`):
/// one per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a `--jobs` value: `0` means auto-detect, anything else is
/// taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        default_jobs()
    } else {
        jobs
    }
}

/// Runs `f(i, &items[i])` for every item, sharded across `jobs` worker
/// threads, and returns the outputs **in input order**.
///
/// Scheduling is work-stealing over the index space: each worker claims
/// the next unprocessed index from a shared atomic counter, computes its
/// point, and repeats until the space is exhausted. Results carry their
/// input index back to the merge step, so the output order (and therefore
/// any serialization of it) is independent of worker count and of how the
/// OS interleaves the workers. With `jobs <= 1` (or one item) the items
/// are processed inline on the calling thread — the exact code path the
/// parallel version must match byte-for-byte.
///
/// Panics in `f` propagate to the caller once all workers have stopped.
pub fn run_indexed<I, O, F>(items: &[I], jobs: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    let workers = resolve_jobs(jobs).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, O)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Batch the lock: each worker buffers its finished points
                // locally and publishes once, so the mutex is cold.
                let mut local: Vec<(usize, O)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected
                    .lock()
                    .expect("campaign worker poisoned the result lock")
                    .extend(local);
            });
        }
    });
    let mut pairs = collected
        .into_inner()
        .expect("campaign result lock poisoned");
    pairs.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(
        pairs.iter().enumerate().all(|(n, &(i, _))| n == i),
        "campaign merge lost or duplicated a point"
    );
    pairs.into_iter().map(|(_, o)| o).collect()
}

/// One independent simulation point of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignPoint {
    /// An open-loop latency/throughput measurement at one offered load
    /// (one cell of a Figure 6 curve).
    Sweep {
        kind: NetworkKind,
        pattern: Pattern,
        /// Offered load as a fraction of the per-site peak.
        offered: f64,
        options: SweepOptions,
    },
    /// An open-loop run under a fault plan (one cell of the degradation
    /// tables).
    Fault {
        kind: NetworkKind,
        pattern: Pattern,
        /// Offered load as a fraction of the per-site peak.
        load: f64,
        plan: FaultPlan,
        seed: u64,
        /// Traffic-generation window.
        sim: Span,
        /// Extra drain time after generation stops.
        drain: Span,
        /// Stalled-packet bound that declares saturation.
        max_stalled: usize,
    },
    /// A closed-loop coherent run to completion (one cell of the Figure
    /// 7–10 grid).
    Coherent {
        kind: NetworkKind,
        spec: WorkloadSpec,
        seed: u64,
    },
    /// A captured `.mtrc` trace replayed through one network, optionally
    /// under a fault plan (one cell of a cross-network comparison grid).
    Replay {
        kind: NetworkKind,
        /// Path to the `.mtrc` trace file.
        trace: String,
        /// Content hash from the trace header. The cache key covers this
        /// — not the path — so a renamed trace still hits, and an edited
        /// trace at the same path misses.
        content_hash: u64,
        /// Fault plan to replay under, if any.
        plan: Option<FaultPlan>,
        /// RNG seed for the fault plan (unused without one).
        seed: u64,
        /// Extra drain time after the last trace packet.
        drain: Span,
        /// Stalled-packet bound that declares saturation.
        max_stalled: usize,
    },
}

impl CampaignPoint {
    /// Stable one-word tag, used in cache files and progress reports.
    pub fn tag(&self) -> &'static str {
        match self {
            CampaignPoint::Sweep { .. } => "sweep",
            CampaignPoint::Fault { .. } => "fault",
            CampaignPoint::Coherent { .. } => "coherent",
            CampaignPoint::Replay { .. } => "replay",
        }
    }

    /// The network architecture this point exercises.
    pub fn kind(&self) -> NetworkKind {
        match *self {
            CampaignPoint::Sweep { kind, .. }
            | CampaignPoint::Fault { kind, .. }
            | CampaignPoint::Coherent { kind, .. }
            | CampaignPoint::Replay { kind, .. } => kind,
        }
    }
}

/// Resilience measurements of one fault campaign point — the fields the
/// degradation tables report, in cache-stable form.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSummary {
    /// Packets delivered clean through the resilience wrapper.
    pub clean_delivered: u64,
    /// Packets lost for good.
    pub lost: u64,
    /// Retransmissions re-injected.
    pub retries: u64,
    /// Fraction of deliveries that arrived clean.
    pub availability: f64,
    /// Bytes delivered clean.
    pub clean_bytes: u64,
    /// Simulated time spent with at least one unrepaired fault, ns.
    pub degraded_ns: f64,
    /// Simulation time when the run stopped, ns.
    pub end_ns: f64,
    /// The run hit its stalled-packet bound.
    pub saturated: bool,
}

impl FaultSummary {
    /// Clean goodput over the whole run, bytes per nanosecond.
    pub fn goodput_bytes_per_ns(&self) -> f64 {
        self.clean_bytes as f64 / self.end_ns.max(1.0)
    }
}

/// The measured result of one [`CampaignPoint`].
#[derive(Debug, Clone, PartialEq)]
pub enum PointResult {
    Sweep(LoadPoint),
    Fault(FaultSummary),
    Coherent(CoherentRun),
    Replay(ReplaySummary),
}

impl PointResult {
    /// Stable tag matching [`CampaignPoint::tag`].
    pub fn tag(&self) -> &'static str {
        match self {
            PointResult::Sweep(_) => "sweep",
            PointResult::Fault(_) => "fault",
            PointResult::Coherent(_) => "coherent",
            PointResult::Replay(_) => "replay",
        }
    }

    /// False for results that must not be persisted: a poisoned replay
    /// (corrupt trace) records *that* attempt, not the point's true value
    /// — caching it would mask the repaired trace forever.
    pub fn cacheable(&self) -> bool {
        match self {
            PointResult::Replay(r) => !r.poisoned,
            _ => true,
        }
    }

    /// Serializes the result into the cache value encoding.
    ///
    /// Floats are stored as the hexadecimal of their IEEE-754 bits, so a
    /// cache hit reproduces the original computation **bit-for-bit** — the
    /// property tests round-trip on exact bytes.
    pub fn to_cache_bytes(&self) -> String {
        let mut s = format!("macrochip-campaign-cache v{CACHE_FORMAT}\n{}\n", self.tag());
        let f64_field = |out: &mut String, name: &str, v: f64| {
            out.push_str(name);
            out.push(' ');
            out.push_str(&format!("{:016x}\n", v.to_bits()));
        };
        match self {
            PointResult::Sweep(p) => {
                f64_field(&mut s, "offered", p.offered);
                f64_field(&mut s, "mean_latency_ns", p.mean_latency_ns);
                f64_field(&mut s, "p99_latency_ns", p.p99_latency_ns);
                f64_field(&mut s, "delivered", p.delivered_bytes_per_ns_per_site);
                s.push_str(if p.saturated {
                    "saturated 1\n"
                } else {
                    "saturated 0\n"
                });
            }
            PointResult::Fault(f) => {
                s.push_str(&format!("clean_delivered {}\n", f.clean_delivered));
                s.push_str(&format!("lost {}\n", f.lost));
                s.push_str(&format!("retries {}\n", f.retries));
                f64_field(&mut s, "availability", f.availability);
                s.push_str(&format!("clean_bytes {}\n", f.clean_bytes));
                f64_field(&mut s, "degraded_ns", f.degraded_ns);
                f64_field(&mut s, "end_ns", f.end_ns);
                s.push_str(if f.saturated {
                    "saturated 1\n"
                } else {
                    "saturated 0\n"
                });
            }
            PointResult::Coherent(r) => {
                s.push_str(&format!("network {}\n", r.network.name()));
                s.push_str(&format!("workload {}\n", r.workload));
                s.push_str(&format!("makespan_ps {}\n", r.makespan.as_ps()));
                s.push_str(&format!(
                    "mean_op_latency_ps {}\n",
                    r.mean_op_latency.as_ps()
                ));
                s.push_str(&format!("ops_completed {}\n", r.ops_completed));
                s.push_str(&format!("delivered_bytes {}\n", r.delivered_bytes));
                s.push_str(&format!("routed_bytes {}\n", r.routed_bytes));
                s.push_str(&format!("packets {}\n", r.packets));
            }
            PointResult::Replay(r) => {
                s.push_str(&format!("trace_packets {}\n", r.trace_packets));
                s.push_str(&format!("emitted {}\n", r.emitted));
                s.push_str(&format!("delivered {}\n", r.delivered));
                s.push_str(&format!("delivered_bytes {}\n", r.delivered_bytes));
                f64_field(&mut s, "mean_latency_ns", r.mean_latency_ns);
                f64_field(&mut s, "p99_latency_ns", r.p99_latency_ns);
                f64_field(&mut s, "per_site", r.delivered_bytes_per_ns_per_site);
                f64_field(&mut s, "end_ns", r.end_ns);
                s.push_str(if r.saturated {
                    "saturated 1\n"
                } else {
                    "saturated 0\n"
                });
                s.push_str(if r.timed_out {
                    "timed_out 1\n"
                } else {
                    "timed_out 0\n"
                });
                s.push_str(&format!("trace_last_ps {}\n", r.trace_last_ps));
                s.push_str(&format!("content_hash {:016x}\n", r.content_hash));
            }
        }
        s
    }

    /// Parses a cache value back. Returns `None` for anything malformed
    /// or written by a different cache format.
    pub fn from_cache_bytes(bytes: &str) -> Option<PointResult> {
        let mut lines = bytes.lines();
        if lines.next()? != format!("macrochip-campaign-cache v{CACHE_FORMAT}") {
            return None;
        }
        let tag = lines.next()?;
        let mut fields = std::collections::BTreeMap::new();
        for line in lines {
            let (k, v) = line.split_once(' ')?;
            fields.insert(k, v);
        }
        let f64_field = |name: &str| -> Option<f64> {
            u64::from_str_radix(fields.get(name)?, 16)
                .ok()
                .map(f64::from_bits)
        };
        let u64_field = |name: &str| -> Option<u64> { fields.get(name)?.parse().ok() };
        let bool_field = |name: &str| -> Option<bool> {
            match *fields.get(name)? {
                "1" => Some(true),
                "0" => Some(false),
                _ => None,
            }
        };
        match tag {
            "sweep" => Some(PointResult::Sweep(LoadPoint {
                offered: f64_field("offered")?,
                mean_latency_ns: f64_field("mean_latency_ns")?,
                p99_latency_ns: f64_field("p99_latency_ns")?,
                delivered_bytes_per_ns_per_site: f64_field("delivered")?,
                saturated: bool_field("saturated")?,
            })),
            "fault" => Some(PointResult::Fault(FaultSummary {
                clean_delivered: u64_field("clean_delivered")?,
                lost: u64_field("lost")?,
                retries: u64_field("retries")?,
                availability: f64_field("availability")?,
                clean_bytes: u64_field("clean_bytes")?,
                degraded_ns: f64_field("degraded_ns")?,
                end_ns: f64_field("end_ns")?,
                saturated: bool_field("saturated")?,
            })),
            "coherent" => {
                let network_name = *fields.get("network")?;
                Some(PointResult::Coherent(CoherentRun {
                    network: NetworkKind::ALL
                        .into_iter()
                        .find(|k| k.name() == network_name)?,
                    workload: fields.get("workload")?.to_string(),
                    makespan: Span::from_ps(u64_field("makespan_ps")?),
                    mean_op_latency: Span::from_ps(u64_field("mean_op_latency_ps")?),
                    ops_completed: u64_field("ops_completed")?,
                    delivered_bytes: u64_field("delivered_bytes")?,
                    routed_bytes: u64_field("routed_bytes")?,
                    packets: u64_field("packets")?,
                }))
            }
            "replay" => Some(PointResult::Replay(ReplaySummary {
                trace_packets: u64_field("trace_packets")?,
                emitted: u64_field("emitted")?,
                delivered: u64_field("delivered")?,
                delivered_bytes: u64_field("delivered_bytes")?,
                mean_latency_ns: f64_field("mean_latency_ns")?,
                p99_latency_ns: f64_field("p99_latency_ns")?,
                delivered_bytes_per_ns_per_site: f64_field("per_site")?,
                end_ns: f64_field("end_ns")?,
                saturated: bool_field("saturated")?,
                timed_out: bool_field("timed_out")?,
                // Poisoned results are never cached, so a cache entry is
                // always a clean replay.
                poisoned: false,
                trace_last_ps: u64_field("trace_last_ps")?,
                content_hash: u64::from_str_radix(fields.get("content_hash")?, 16).ok()?,
            })),
            _ => None,
        }
    }
}

/// 64-bit FNV-1a over `bytes`, the cache's content hash.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash of a campaign point under `config`: every input that can
/// change the simulation result feeds the key — point kind, pattern, load
/// bits, seed, windows, fault plan, the full platform configuration, the
/// crate version and the cache format.
pub fn point_key(point: &CampaignPoint, config: &MacrochipConfig) -> u64 {
    let mut material = format!(
        "fmt{CACHE_FORMAT}|{}|cfg{:?}|",
        env!("CARGO_PKG_VERSION"),
        config
    );
    match point {
        CampaignPoint::Sweep {
            kind,
            pattern,
            offered,
            options,
        } => {
            material.push_str(&format!(
                "sweep|{:?}|{:?}|load{:016x}|{:?}",
                kind,
                pattern,
                offered.to_bits(),
                options
            ));
        }
        CampaignPoint::Fault {
            kind,
            pattern,
            load,
            plan,
            seed,
            sim,
            drain,
            max_stalled,
        } => {
            material.push_str(&format!(
                "fault|{:?}|{:?}|load{:016x}|plan{}|seed{}|sim{}|drain{}|stall{}",
                kind,
                pattern,
                load.to_bits(),
                plan.to_spec(),
                seed,
                sim.as_ps(),
                drain.as_ps(),
                max_stalled
            ));
        }
        CampaignPoint::Coherent { kind, spec, seed } => {
            material.push_str(&format!("coherent|{:?}|{:?}|seed{}", kind, spec, seed));
        }
        CampaignPoint::Replay {
            kind,
            trace: _, // the content hash identifies the trace, not its path
            content_hash,
            plan,
            seed,
            drain,
            max_stalled,
        } => {
            material.push_str(&format!(
                "replay|{:?}|hash{:016x}|plan{}|seed{}|drain{}|stall{}",
                kind,
                content_hash,
                plan.as_ref()
                    .map_or_else(|| "none".to_string(), |p| p.to_spec()),
                seed,
                drain.as_ps(),
                max_stalled
            ));
        }
    }
    fnv1a64(material.as_bytes())
}

/// Content hash of a campaign point over a multi-chip `fabric`.
///
/// A single-chip fabric returns exactly [`point_key`] of the chip config —
/// 1-chip campaigns hit the same cache entries with or without the fabric
/// layer. A multi-chip board folds the board geometry and inter-chip link
/// parameters into the key on top of the per-chip key, so a `2x2` sweep
/// never collides with a single-chip sweep of the same point.
pub fn fabric_point_key(point: &CampaignPoint, fabric: &FabricConfig) -> u64 {
    let chip_key = point_key(point, &fabric.chip);
    if fabric.is_single() {
        return chip_key;
    }
    let material = format!(
        "fabric{}|link{:?}|chip{:016x}",
        fabric.chips_per_side, fabric.link, chip_key
    );
    fnv1a64(material.as_bytes())
}

/// Side-channel outputs a point execution can capture alongside its
/// [`PointResult`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PointExecOptions {
    /// Record a flight-recorder event stream for the point.
    pub trace: bool,
    /// Snapshot the point's metrics registry.
    pub metrics: bool,
    /// Ring capacity used when `trace` is on.
    pub trace_capacity: usize,
    /// Run the point under the invariant auditor ([`netcore::audit`]) and
    /// return the reconciled [`AuditReport`]. With `metrics` also on, the
    /// snapshot additionally carries the `audit.*` counter family.
    pub audit: bool,
}

/// One executed point, with whatever side channels were requested. All
/// fields are `Send`, so a worker can hand the whole thing back across
/// the shard boundary (the per-worker `Tracer`/`RingSink` themselves never
/// leave the worker — only their snapshots do).
#[derive(Debug, Clone)]
pub struct PointRun {
    pub result: PointResult,
    /// Recorded trace events, oldest first (empty unless requested).
    pub trace: Vec<(Time, TraceEvent)>,
    /// Metrics snapshot (present only when requested).
    pub metrics: Option<MetricsSnapshot>,
    /// Invariant-audit report (present only when requested; absent for a
    /// replay point whose trace failed to open).
    pub audit: Option<AuditReport>,
}

/// Executes one campaign point to completion on the calling thread.
pub fn run_point(point: &CampaignPoint, config: &MacrochipConfig) -> PointResult {
    run_point_full(point, config, PointExecOptions::default()).result
}

/// [`run_point`] with optional flight-recorder, metrics, and invariant
/// audit capture.
///
/// Tracing and metrics are unsupported for [`CampaignPoint::Coherent`]
/// points (the coherent harness owns its network internally); their side
/// channels come back empty. Auditing **is** supported for coherent
/// points — it routes through [`run_coherent_audited`], which also checks
/// the coherence engine's structural invariants.
pub fn run_point_full(
    point: &CampaignPoint,
    config: &MacrochipConfig,
    exec: PointExecOptions,
) -> PointRun {
    let sink = Rc::new(RefCell::new(RingSink::new(exec.trace_capacity.max(1))));
    // Coherent points build their auditor inside run_coherent_audited.
    let auditor = (exec.audit && !matches!(point, CampaignPoint::Coherent { .. })).then(|| {
        let kind = match point {
            CampaignPoint::Sweep { kind, .. }
            | CampaignPoint::Fault { kind, .. }
            | CampaignPoint::Coherent { kind, .. }
            | CampaignPoint::Replay { kind, .. } => *kind,
        };
        Rc::new(RefCell::new(Auditor::new(kind, config)))
    });
    let tracer = match (&auditor, exec.trace) {
        (Some(a), true) => {
            let mut tee = TeeSink::new();
            tee.add(&sink);
            tee.add(a);
            Tracer::shared(&Rc::new(RefCell::new(tee)))
        }
        (Some(a), false) => Tracer::shared(a),
        (None, true) => Tracer::shared(&sink),
        (None, false) => Tracer::disabled(),
    };
    let (result, metrics, audit) = match point {
        CampaignPoint::Sweep {
            kind,
            pattern,
            offered,
            options,
        } => {
            let (p, net) = run_load_point_traced(
                networks::build(*kind, *config),
                *pattern,
                *offered,
                config,
                *options,
                tracer,
            );
            let audit = auditor.map(|a| {
                let end = Time::ZERO + options.sim + options.drain;
                a.borrow_mut().finalize(net.stats(), 0, end)
            });
            let metrics = exec.metrics.then(|| {
                let mut reg = MetricsRegistry::new();
                reg.record_net_stats(net.stats());
                reg.set_gauge("run.offered_load", *offered);
                if let Some(report) = &audit {
                    report.record_metrics(&mut reg);
                }
                reg.snapshot()
            });
            (PointResult::Sweep(p), metrics, audit)
        }
        CampaignPoint::Fault {
            kind,
            pattern,
            load,
            plan,
            seed,
            sim,
            drain,
            max_stalled,
        } => {
            let horizon = Time::ZERO + *sim;
            let mut net =
                ResilientNetwork::new(networks::build(*kind, *config), plan, *seed, horizon);
            net.set_tracer(tracer.clone());
            let peak = config.site_bandwidth_bytes_per_ns();
            let mut traffic = OpenLoopTraffic::new(
                &config.grid,
                *pattern,
                *load,
                peak,
                config.data_bytes,
                *seed,
            );
            traffic.set_horizon(horizon);
            let outcome = drive_traced(
                &mut net,
                &mut traffic,
                DriveLimits::for_window(*sim, *drain, *max_stalled),
                tracer,
            );
            let audit = auditor.map(|a| {
                a.borrow_mut()
                    .finalize(net.stats(), net.fault_stats().dropped, outcome.end)
            });
            let metrics = exec.metrics.then(|| {
                let mut reg = MetricsRegistry::new();
                net.record_metrics(&mut reg, outcome.end);
                reg.set_gauge("run.offered_load", *load);
                if let Some(report) = &audit {
                    report.record_metrics(&mut reg);
                }
                reg.snapshot()
            });
            let s = net.fault_stats();
            let result = PointResult::Fault(FaultSummary {
                clean_delivered: s.clean_delivered,
                lost: net.lost_packets(),
                retries: s.retries,
                availability: net.availability(),
                clean_bytes: s.clean_bytes,
                degraded_ns: s.time_degraded(outcome.end).as_ns_f64(),
                end_ns: outcome.end.as_ns_f64(),
                saturated: outcome.saturated,
            });
            (result, metrics, audit)
        }
        CampaignPoint::Coherent { kind, spec, seed } => {
            if exec.audit {
                let (run, report) = run_coherent_audited(
                    *kind,
                    spec,
                    config,
                    coherence::EngineConfig::default(),
                    *seed,
                );
                (PointResult::Coherent(run), None, Some(report))
            } else {
                (
                    PointResult::Coherent(run_coherent(*kind, spec, config, *seed)),
                    None,
                    None,
                )
            }
        }
        CampaignPoint::Replay {
            kind,
            trace,
            content_hash,
            plan,
            seed,
            drain,
            max_stalled,
        } => {
            let options = ReplayOptions {
                drain: *drain,
                max_stalled: *max_stalled,
            };
            let path = Path::new(trace);
            // A trace that cannot be opened or replayed cleanly yields a
            // poisoned (never-cached) summary instead of a panic — the
            // CLI pre-validates traces, so this is the defense in depth.
            let run = match plan {
                Some(plan) => {
                    run_replay_faulted(*kind, path, config, plan, *seed, options, tracer.clone())
                        .map(|(summary, net)| {
                            let audit = auditor.map(|a| {
                                let end = Time::ZERO + Span::from_ns_f64(summary.end_ns);
                                a.borrow_mut()
                                    .finalize(net.stats(), net.fault_stats().dropped, end)
                            });
                            let metrics = exec.metrics.then(|| {
                                let mut reg = MetricsRegistry::new();
                                crate::replay_run::record_replay_metrics(&mut reg, &net, &summary);
                                if let Some(report) = &audit {
                                    report.record_metrics(&mut reg);
                                }
                                reg.snapshot()
                            });
                            (summary, metrics, audit)
                        })
                }
                None => run_replay(*kind, path, config, options, tracer.clone()).map(
                    |(summary, net)| {
                        let audit = auditor.map(|a| {
                            let end = Time::ZERO + Span::from_ns_f64(summary.end_ns);
                            a.borrow_mut().finalize(net.stats(), 0, end)
                        });
                        let metrics = exec.metrics.then(|| {
                            let mut reg = MetricsRegistry::new();
                            crate::replay_run::record_replay_metrics(
                                &mut reg,
                                net.as_ref(),
                                &summary,
                            );
                            if let Some(report) = &audit {
                                report.record_metrics(&mut reg);
                            }
                            reg.snapshot()
                        });
                        (summary, metrics, audit)
                    },
                ),
            };
            match run {
                Ok((summary, metrics, audit)) => (PointResult::Replay(summary), metrics, audit),
                Err(_) => (
                    PointResult::Replay(ReplaySummary {
                        trace_packets: 0,
                        emitted: 0,
                        delivered: 0,
                        delivered_bytes: 0,
                        mean_latency_ns: 0.0,
                        p99_latency_ns: 0.0,
                        delivered_bytes_per_ns_per_site: 0.0,
                        end_ns: 0.0,
                        saturated: false,
                        timed_out: false,
                        poisoned: true,
                        trace_last_ps: 0,
                        content_hash: *content_hash,
                    }),
                    None,
                    None,
                ),
            }
        }
    };
    let trace = if exec.trace {
        sink.borrow().snapshot()
    } else {
        Vec::new()
    };
    // Audit finalization spans happen after the drive's own flush; roll
    // them up before this worker thread moves to its next point.
    desim::prof::flush();
    PointRun {
        result,
        trace,
        metrics,
        audit,
    }
}

/// Executes one campaign point over a multi-chip fabric on the calling
/// thread.
pub fn run_point_fabric(point: &CampaignPoint, fabric: &FabricConfig) -> PointResult {
    run_point_full_fabric(point, fabric, PointExecOptions::default()).result
}

/// [`run_point_full`] over a multi-chip fabric.
///
/// A single-chip fabric delegates straight to [`run_point_full`] with the
/// chip configuration — the same code path, results, and cache keys as a
/// campaign that never heard of fabrics. A multi-chip board builds the
/// whole-board network through [`networks::build_fabric`] and drives it as
/// one simulation: traffic and fault plans address the global
/// [`FabricConfig::global_config`] grid, and auditing runs in fabric mode
/// ([`Auditor::new_fabric`]), which adds the `fabric.inter-chip-bytes`
/// reconciliation invariant.
///
/// # Panics
///
/// Coherent and replay points are single-chip harnesses; calling this with
/// one on a multi-chip fabric panics. The CLI rejects `--chips` for those
/// subcommands before reaching this layer.
pub fn run_point_full_fabric(
    point: &CampaignPoint,
    fabric: &FabricConfig,
    exec: PointExecOptions,
) -> PointRun {
    if fabric.is_single() {
        return run_point_full(point, &fabric.chip, exec);
    }
    let global = fabric.global_config();
    let sink = Rc::new(RefCell::new(RingSink::new(exec.trace_capacity.max(1))));
    let auditor = exec
        .audit
        .then(|| Rc::new(RefCell::new(Auditor::new_fabric(point.kind(), fabric))));
    let tracer = match (&auditor, exec.trace) {
        (Some(a), true) => {
            let mut tee = TeeSink::new();
            tee.add(&sink);
            tee.add(a);
            Tracer::shared(&Rc::new(RefCell::new(tee)))
        }
        (Some(a), false) => Tracer::shared(a),
        (None, true) => Tracer::shared(&sink),
        (None, false) => Tracer::disabled(),
    };
    let (result, metrics, audit) = match point {
        CampaignPoint::Sweep {
            kind,
            pattern,
            offered,
            options,
        } => {
            let (p, net) = run_load_point_traced(
                networks::build_fabric(*kind, fabric),
                *pattern,
                *offered,
                &global,
                *options,
                tracer,
            );
            let audit = auditor.map(|a| {
                let end = Time::ZERO + options.sim + options.drain;
                a.borrow_mut().finalize(net.stats(), 0, end)
            });
            let metrics = exec.metrics.then(|| {
                let mut reg = MetricsRegistry::new();
                reg.record_net_stats(net.stats());
                reg.set_gauge("run.offered_load", *offered);
                if let Some(report) = &audit {
                    report.record_metrics(&mut reg);
                }
                reg.snapshot()
            });
            (PointResult::Sweep(p), metrics, audit)
        }
        CampaignPoint::Fault {
            kind,
            pattern,
            load,
            plan,
            seed,
            sim,
            drain,
            max_stalled,
        } => {
            let horizon = Time::ZERO + *sim;
            let mut net =
                ResilientNetwork::new(networks::build_fabric(*kind, fabric), plan, *seed, horizon);
            net.set_tracer(tracer.clone());
            let peak = global.site_bandwidth_bytes_per_ns();
            let mut traffic = OpenLoopTraffic::new(
                &global.grid,
                *pattern,
                *load,
                peak,
                global.data_bytes,
                *seed,
            );
            traffic.set_horizon(horizon);
            let outcome = drive_traced(
                &mut net,
                &mut traffic,
                DriveLimits::for_window(*sim, *drain, *max_stalled),
                tracer,
            );
            let audit = auditor.map(|a| {
                a.borrow_mut()
                    .finalize(net.stats(), net.fault_stats().dropped, outcome.end)
            });
            let metrics = exec.metrics.then(|| {
                let mut reg = MetricsRegistry::new();
                net.record_metrics(&mut reg, outcome.end);
                reg.set_gauge("run.offered_load", *load);
                if let Some(report) = &audit {
                    report.record_metrics(&mut reg);
                }
                reg.snapshot()
            });
            let s = net.fault_stats();
            let result = PointResult::Fault(FaultSummary {
                clean_delivered: s.clean_delivered,
                lost: net.lost_packets(),
                retries: s.retries,
                availability: net.availability(),
                clean_bytes: s.clean_bytes,
                degraded_ns: s.time_degraded(outcome.end).as_ns_f64(),
                end_ns: outcome.end.as_ns_f64(),
                saturated: outcome.saturated,
            });
            (result, metrics, audit)
        }
        CampaignPoint::Coherent { .. } | CampaignPoint::Replay { .. } => panic!(
            "{} points are single-chip harnesses; a {0} point cannot run on a {}x{} fabric",
            point.tag(),
            fabric.chips_per_side,
            fabric.chips_per_side
        ),
    };
    let trace = if exec.trace {
        sink.borrow().snapshot()
    } else {
        Vec::new()
    };
    desim::prof::flush();
    PointRun {
        result,
        trace,
        metrics,
        audit,
    }
}

/// Monotonic suffix for cache temp files, so concurrent workers (and
/// duplicate points) never collide mid-write.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A content-addressed store of campaign results on disk.
///
/// One file per point, named by the [`point_key`] hash; values are the
/// bit-exact [`PointResult::to_cache_bytes`] encoding. Writes go through a
/// temp file and an atomic rename, so a cache shared by concurrent workers
/// (or concurrent campaigns) never exposes a torn entry.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<ResultCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The default cache root: `$MACROCHIP_CACHE_DIR`, falling back to the
    /// legacy `$MACROCHIP_CACHE` name, then `results/cache`.
    pub fn default_dir() -> PathBuf {
        for var in ["MACROCHIP_CACHE_DIR", "MACROCHIP_CACHE"] {
            if let Ok(dir) = std::env::var(var) {
                if !dir.is_empty() {
                    return PathBuf::from(dir);
                }
            }
        }
        Path::new("results").join("cache")
    }

    /// Where the cache lives.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an entry with `key` is stored at.
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.v{CACHE_FORMAT}.txt"))
    }

    /// Loads the entry for `key`, if present and well-formed.
    ///
    /// Lookup wall-clock and the hit/miss verdict feed the `host.*`
    /// cache counters (a "hit" here means the entry decoded; callers may
    /// still reject it on a tag mismatch).
    pub fn load(&self, key: u64) -> Option<PointResult> {
        use desim::prof::{self, Counter};
        let start = std::time::Instant::now();
        let result = std::fs::read_to_string(self.path_for(key))
            .ok()
            .and_then(|bytes| PointResult::from_cache_bytes(&bytes));
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if result.is_some() {
            prof::add(Counter::CacheHits, 1);
            prof::add(Counter::CacheHitNs, ns);
        } else {
            prof::add(Counter::CacheMisses, 1);
            prof::add(Counter::CacheMissNs, ns);
        }
        result
    }

    /// Stores `result` under `key` (atomic write-then-rename).
    pub fn store(&self, key: u64, result: &PointResult) -> std::io::Result<()> {
        let tmp = self.dir.join(format!(
            "{key:016x}.tmp.{}.{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, result.to_cache_bytes())?;
        std::fs::rename(&tmp, self.path_for(key))
    }

    /// Lists every entry in the cache: `(path, bytes, modified)`. Files
    /// that are not cache entries (temp files, strays) are skipped.
    fn entries(&self) -> std::io::Result<Vec<(PathBuf, u64, std::time::SystemTime)>> {
        let mut out = Vec::new();
        for dirent in std::fs::read_dir(&self.dir)? {
            let dirent = dirent?;
            let path = dirent.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            // Entries are "<16 hex>.v<N>.txt"; anything else is a temp
            // file mid-write or unrelated, and not ours to account for.
            let is_entry = name.len() >= 16
                && name.as_bytes()[..16].iter().all(u8::is_ascii_hexdigit)
                && name[16..].starts_with(".v")
                && name.ends_with(".txt");
            if !is_entry {
                continue;
            }
            let meta = dirent.metadata()?;
            let modified = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
            out.push((path, meta.len(), modified));
        }
        Ok(out)
    }

    /// Entry count and total size of the cache.
    pub fn stats(&self) -> std::io::Result<CacheStats> {
        let entries = self.entries()?;
        Ok(CacheStats {
            entries: entries.len(),
            bytes: entries.iter().map(|(_, b, _)| b).sum(),
        })
    }

    /// Evicts entries: everything modified more than `older_than` ago,
    /// then (if still over) oldest-first until the cache holds at most
    /// `max_bytes`. Either bound may be `None` (no constraint). Returns
    /// what was removed.
    pub fn prune(
        &self,
        max_bytes: Option<u64>,
        older_than: Option<std::time::Duration>,
    ) -> std::io::Result<CacheStats> {
        let mut entries = self.entries()?;
        // Oldest first, path as a tie-break so same-mtime entries (coarse
        // filesystem clocks) evict in a stable order.
        entries.sort_by(|a, b| a.2.cmp(&b.2).then_with(|| a.0.cmp(&b.0)));
        let mut total: u64 = entries.iter().map(|(_, b, _)| b).sum();
        let cutoff = older_than.map(|age| std::time::SystemTime::now() - age);
        let mut removed = CacheStats {
            entries: 0,
            bytes: 0,
        };
        for (path, bytes, modified) in entries {
            let expired = cutoff.is_some_and(|c| modified <= c);
            let over = max_bytes.is_some_and(|cap| total > cap);
            if !expired && !over {
                if max_bytes.is_none() {
                    break; // age-only prune and this entry is young enough
                }
                continue;
            }
            std::fs::remove_file(&path)?;
            total -= bytes;
            removed.entries += 1;
            removed.bytes += bytes;
        }
        Ok(removed)
    }
}

/// Entry count and total bytes, as reported by [`ResultCache::stats`] and
/// (for the removed set) [`ResultCache::prune`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    pub entries: usize,
    pub bytes: u64,
}

/// One executed campaign point: its result and whether it came from cache.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    pub result: PointResult,
    /// True if the result was served from the cache without simulating.
    pub cached: bool,
}

/// A configured campaign executor: worker count, optional cache, platform
/// configuration.
#[derive(Debug)]
pub struct Campaign {
    /// Worker threads; `0` auto-detects, `1` is strictly serial.
    pub jobs: usize,
    /// Result cache, or `None` to always simulate.
    pub cache: Option<ResultCache>,
    /// Platform configuration shared by every point.
    pub config: MacrochipConfig,
}

impl Campaign {
    /// A serial, uncached campaign under `config`.
    pub fn serial(config: MacrochipConfig) -> Campaign {
        Campaign {
            jobs: 1,
            cache: None,
            config,
        }
    }

    /// Executes every point, sharded across [`Campaign::jobs`] workers,
    /// returning outcomes in input order (byte-identical to `jobs = 1`).
    ///
    /// Cache consultation happens inside the worker: a hit skips the
    /// simulation entirely, a miss simulates and persists the result. On a
    /// key collision where the stored entry's type does not match the
    /// point's, the entry is ignored and recomputed.
    pub fn run(&self, points: &[CampaignPoint]) -> Vec<CampaignOutcome> {
        run_indexed(points, self.jobs, |_, point| {
            let key = point_key(point, &self.config);
            if let Some(cache) = &self.cache {
                if let Some(hit) = cache.load(key) {
                    if hit.tag() == point.tag() {
                        desim::prof::add(desim::prof::Counter::PointsDone, 1);
                        return CampaignOutcome {
                            result: hit,
                            cached: true,
                        };
                    }
                }
            }
            let result = run_point(point, &self.config);
            if let Some(cache) = &self.cache {
                if result.cacheable() {
                    // A failed store (read-only results dir, disk full)
                    // only costs future recomputation; the campaign still
                    // succeeds.
                    let _ = cache.store(key, &result);
                }
            }
            desim::prof::add(desim::prof::Counter::PointsDone, 1);
            CampaignOutcome {
                result,
                cached: false,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MacrochipConfig {
        MacrochipConfig::scaled()
    }

    fn temp_cache(label: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!(
            "macrochip-campaign-{label}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        ResultCache::new(dir).expect("temp cache dir")
    }

    #[test]
    fn run_indexed_preserves_input_order_for_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for jobs in [0, 1, 2, 3, 4, 8, 64] {
            let out = run_indexed(&items, jobs, |_, &x| x * x + 1);
            assert_eq!(out, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_single_item() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_indexed(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(run_indexed(&[9u32], 4, |i, &x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn sweep_point_round_trips_through_cache_bytes_exactly() {
        let p = PointResult::Sweep(LoadPoint {
            offered: 0.1,
            mean_latency_ns: 17.348_222_1,
            p99_latency_ns: 88.125,
            delivered_bytes_per_ns_per_site: 31.999_999_999,
            saturated: false,
        });
        let bytes = p.to_cache_bytes();
        let back = PointResult::from_cache_bytes(&bytes).expect("parses");
        assert_eq!(back, p);
        assert_eq!(back.to_cache_bytes(), bytes);
    }

    #[test]
    fn malformed_cache_bytes_are_rejected() {
        assert!(PointResult::from_cache_bytes("").is_none());
        assert!(PointResult::from_cache_bytes("macrochip-campaign-cache v999\nsweep\n").is_none());
        let truncated = "macrochip-campaign-cache v1\nsweep\noffered zz\n";
        assert!(PointResult::from_cache_bytes(truncated).is_none());
    }

    #[test]
    fn point_key_separates_distinct_points() {
        let config = config();
        let sweep = |kind: NetworkKind, offered: f64| CampaignPoint::Sweep {
            kind,
            pattern: Pattern::Uniform,
            offered,
            options: SweepOptions::default(),
        };
        let base = sweep(NetworkKind::PointToPoint, 0.1);
        let other_load = sweep(NetworkKind::PointToPoint, 0.2);
        let other_net = sweep(NetworkKind::TokenRing, 0.1);
        let k0 = point_key(&base, &config);
        assert_ne!(k0, point_key(&other_load, &config));
        assert_ne!(k0, point_key(&other_net, &config));
        // Stable within a process/version.
        assert_eq!(k0, point_key(&base, &config));
    }

    #[test]
    fn fabric_point_key_is_point_key_for_a_single_chip() {
        // The load-bearing cache guarantee: adding the fabric layer must
        // not invalidate (or fork) any existing single-chip cache entry.
        let config = config();
        let point = CampaignPoint::Sweep {
            kind: NetworkKind::Hierarchical,
            pattern: Pattern::Uniform,
            offered: 0.1,
            options: SweepOptions::default(),
        };
        let single = FabricConfig::single(config);
        assert_eq!(
            fabric_point_key(&point, &single),
            point_key(&point, &config)
        );
    }

    #[test]
    fn fabric_point_key_separates_board_geometries() {
        let config = config();
        let point = CampaignPoint::Sweep {
            kind: NetworkKind::TokenRing,
            pattern: Pattern::Uniform,
            offered: 0.1,
            options: SweepOptions::default(),
        };
        let k1 = fabric_point_key(&point, &FabricConfig::single(config));
        let k2 = fabric_point_key(&point, &FabricConfig::grid(2, config));
        let k3 = fabric_point_key(&point, &FabricConfig::grid(3, config));
        assert_ne!(k1, k2);
        assert_ne!(k2, k3);
        let mut longer = FabricConfig::grid(2, config);
        longer.link.chip_pitch_cm *= 2.0;
        assert_ne!(k2, fabric_point_key(&point, &longer));
    }

    #[test]
    fn fabric_sweep_point_runs_audited_on_a_two_by_two_board() {
        let chip = MacrochipConfig::with_side(4);
        let fabric = FabricConfig::grid(2, chip);
        let point = CampaignPoint::Sweep {
            kind: NetworkKind::TokenRing,
            pattern: Pattern::Uniform,
            offered: 0.05,
            options: SweepOptions {
                sim: Span::from_ns(500),
                drain: Span::from_us(5),
                ..SweepOptions::default()
            },
        };
        let run = run_point_full_fabric(
            &point,
            &fabric,
            PointExecOptions {
                audit: true,
                ..PointExecOptions::default()
            },
        );
        let report = run.audit.expect("audit requested");
        assert!(
            report.is_clean(),
            "fabric sweep audit violations: {:?}",
            report.violations
        );
        match run.result {
            PointResult::Sweep(p) => assert!(p.delivered_bytes_per_ns_per_site > 0.0),
            other => panic!("expected a sweep result, got {other:?}"),
        }
    }

    #[test]
    fn cache_store_load_round_trips() {
        let cache = temp_cache("roundtrip");
        let result = PointResult::Fault(FaultSummary {
            clean_delivered: 1000,
            lost: 3,
            retries: 17,
            availability: 0.997,
            clean_bytes: 64_000,
            degraded_ns: 1_234.5,
            end_ns: 25_000.0,
            saturated: false,
        });
        assert!(cache.load(42).is_none());
        cache.store(42, &result).expect("store");
        assert_eq!(cache.load(42), Some(result));
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cache_stats_count_entries_and_ignore_strays() {
        let cache = temp_cache("stats");
        let empty = cache.stats().expect("stats");
        assert_eq!((empty.entries, empty.bytes), (0, 0));
        let result = PointResult::Sweep(LoadPoint {
            offered: 0.1,
            mean_latency_ns: 10.0,
            p99_latency_ns: 20.0,
            delivered_bytes_per_ns_per_site: 1.0,
            saturated: false,
        });
        cache.store(1, &result).expect("store");
        cache.store(2, &result).expect("store");
        // Strays — a temp file mid-write and an unrelated file — are not
        // entries and must not be counted (or pruned).
        std::fs::write(cache.dir().join("deadbeef.tmp.1.2"), "partial").unwrap();
        std::fs::write(cache.dir().join("README"), "not a cache entry").unwrap();
        let stats = cache.stats().expect("stats");
        assert_eq!(stats.entries, 2);
        assert_eq!(
            stats.bytes,
            2 * result.to_cache_bytes().len() as u64,
            "bytes must sum entry file sizes"
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn cache_prune_respects_size_and_age_bounds() {
        let cache = temp_cache("prune");
        let result = PointResult::Sweep(LoadPoint {
            offered: 0.2,
            mean_latency_ns: 11.0,
            p99_latency_ns: 21.0,
            delivered_bytes_per_ns_per_site: 2.0,
            saturated: true,
        });
        let entry_bytes = result.to_cache_bytes().len() as u64;
        for key in 0..4 {
            cache.store(key, &result).expect("store");
        }
        std::fs::write(cache.dir().join("README"), "stray").unwrap();

        // No bounds: nothing to do.
        let noop = cache.prune(None, None).expect("prune");
        assert_eq!(noop.entries, 0);
        // A huge age cutoff removes nothing.
        let young = cache
            .prune(None, Some(std::time::Duration::from_secs(1 << 20)))
            .expect("prune");
        assert_eq!(young.entries, 0);
        // Cap at two entries' worth: the two oldest go.
        let trimmed = cache.prune(Some(2 * entry_bytes), None).expect("prune");
        assert_eq!(trimmed.entries, 2);
        assert_eq!(trimmed.bytes, 2 * entry_bytes);
        assert_eq!(cache.stats().unwrap().entries, 2);
        // Zero age removes everything that remains; the stray survives.
        let rest = cache
            .prune(None, Some(std::time::Duration::ZERO))
            .expect("prune");
        assert_eq!(rest.entries, 2);
        assert_eq!(cache.stats().unwrap().entries, 0);
        assert!(cache.dir().join("README").exists());
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn campaign_cache_hit_skips_simulation_and_matches_miss() {
        let points = vec![
            CampaignPoint::Sweep {
                kind: NetworkKind::PointToPoint,
                pattern: Pattern::Uniform,
                offered: 0.05,
                options: SweepOptions {
                    sim: Span::from_ns(500),
                    drain: Span::from_us(2),
                    max_stalled: 2_000,
                    seed: 7,
                },
            },
            CampaignPoint::Fault {
                kind: NetworkKind::PointToPoint,
                pattern: Pattern::Uniform,
                load: 0.02,
                plan: FaultPlan::parse("transient=0.01").expect("plan"),
                seed: 7,
                sim: Span::from_ns(500),
                drain: Span::from_us(2),
                max_stalled: 2_000,
            },
        ];
        let campaign = Campaign {
            jobs: 1,
            cache: Some(temp_cache("hit")),
            config: config(),
        };
        let cold = campaign.run(&points);
        assert!(cold.iter().all(|o| !o.cached), "cold run must simulate");
        let warm = campaign.run(&points);
        assert!(warm.iter().all(|o| o.cached), "warm run must hit");
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.result, b.result);
            assert_eq!(a.result.to_cache_bytes(), b.result.to_cache_bytes());
        }
        let _ = std::fs::remove_dir_all(campaign.cache.as_ref().unwrap().dir());
    }

    #[test]
    fn resolve_jobs_auto_detects_zero() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(3), 3);
    }

    /// Captures a tiny uniform run to a temp `.mtrc` file.
    fn temp_trace(label: &str) -> (PathBuf, u64) {
        use crate::sweep::run_load_point_observed;
        let cfg = config();
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "macrochip-replay-{label}-{}-{}.mtrc",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let meta = replay::TraceMeta {
            grid_side: cfg.grid.side() as u16,
            seed: 5,
            description: "campaign test".into(),
        };
        let mut writer = Some(replay::create_file(&path, &meta).expect("create"));
        let _ = run_load_point_observed(
            networks::build(NetworkKind::PointToPoint, cfg),
            Pattern::Uniform,
            0.02,
            &cfg,
            SweepOptions {
                sim: Span::from_ns(300),
                drain: Span::from_us(2),
                max_stalled: 2_000,
                seed: 5,
            },
            Tracer::disabled(),
            |p| {
                writer.as_mut().expect("live").record(p).expect("record");
            },
        );
        let (_, header) = writer.take().expect("writer").finish().expect("finish");
        (path, header.content_hash)
    }

    #[test]
    fn replay_points_run_cache_and_round_trip() {
        let (path, content_hash) = temp_trace("point");
        let point = CampaignPoint::Replay {
            kind: NetworkKind::PointToPoint,
            trace: path.to_string_lossy().into_owned(),
            content_hash,
            plan: None,
            seed: 0,
            drain: Span::from_us(2),
            max_stalled: 2_000,
        };
        let campaign = Campaign {
            jobs: 1,
            cache: Some(temp_cache("replay")),
            config: config(),
        };
        let cold = campaign.run(std::slice::from_ref(&point));
        assert!(!cold[0].cached);
        let PointResult::Replay(ref summary) = cold[0].result else {
            panic!("expected replay result");
        };
        assert!(!summary.poisoned);
        assert!(summary.delivered > 0);
        assert_eq!(summary.emitted, summary.trace_packets);
        assert_eq!(summary.content_hash, content_hash);

        // Warm: served from cache, byte-identical encoding.
        let warm = campaign.run(std::slice::from_ref(&point));
        assert!(warm[0].cached);
        assert_eq!(warm[0].result, cold[0].result);
        assert_eq!(
            warm[0].result.to_cache_bytes(),
            cold[0].result.to_cache_bytes()
        );

        // The key covers the content hash, not the path: a renamed trace
        // still hits the same entry.
        let moved = path.with_extension("moved.mtrc");
        std::fs::rename(&path, &moved).expect("rename");
        let renamed = CampaignPoint::Replay {
            kind: NetworkKind::PointToPoint,
            trace: moved.to_string_lossy().into_owned(),
            content_hash,
            plan: None,
            seed: 0,
            drain: Span::from_us(2),
            max_stalled: 2_000,
        };
        assert_eq!(
            point_key(&point, &campaign.config),
            point_key(&renamed, &campaign.config)
        );
        let hit = campaign.run(std::slice::from_ref(&renamed));
        assert!(hit[0].cached);

        let _ = std::fs::remove_file(&moved);
        let _ = std::fs::remove_dir_all(campaign.cache.as_ref().unwrap().dir());
    }

    #[test]
    fn missing_trace_poisons_and_is_never_cached() {
        let point = CampaignPoint::Replay {
            kind: NetworkKind::PointToPoint,
            trace: "/nonexistent/never.mtrc".into(),
            content_hash: 0xDEAD,
            plan: None,
            seed: 0,
            drain: Span::from_us(2),
            max_stalled: 2_000,
        };
        let campaign = Campaign {
            jobs: 1,
            cache: Some(temp_cache("poison")),
            config: config(),
        };
        let out = campaign.run(std::slice::from_ref(&point));
        let PointResult::Replay(ref summary) = out[0].result else {
            panic!("expected replay result");
        };
        assert!(summary.poisoned);
        assert!(!out[0].result.cacheable());
        // Second run must recompute, not hit a poisoned cache entry.
        let again = campaign.run(std::slice::from_ref(&point));
        assert!(!again[0].cached);
        let _ = std::fs::remove_dir_all(campaign.cache.as_ref().unwrap().dir());
    }

    #[test]
    fn replay_summary_round_trips_through_cache_bytes() {
        let r = PointResult::Replay(ReplaySummary {
            trace_packets: 12_345,
            emitted: 12_345,
            delivered: 12_340,
            delivered_bytes: 790_080,
            mean_latency_ns: 17.25,
            p99_latency_ns: 99.5,
            delivered_bytes_per_ns_per_site: 3.2,
            end_ns: 25_000.0,
            saturated: false,
            timed_out: true,
            poisoned: false,
            trace_last_ps: 4_999_850,
            content_hash: 0x0123_4567_89ab_cdef,
        });
        let bytes = r.to_cache_bytes();
        let back = PointResult::from_cache_bytes(&bytes).expect("parses");
        assert_eq!(back, r);
        assert_eq!(back.to_cache_bytes(), bytes);
    }

    #[test]
    fn cache_dir_env_override_order() {
        // Serialized via a lock-free convention: this test is the only
        // one touching these env vars.
        std::env::remove_var("MACROCHIP_CACHE_DIR");
        std::env::remove_var("MACROCHIP_CACHE");
        assert_eq!(
            ResultCache::default_dir(),
            Path::new("results").join("cache")
        );
        std::env::set_var("MACROCHIP_CACHE", "legacy-dir");
        assert_eq!(ResultCache::default_dir(), PathBuf::from("legacy-dir"));
        std::env::set_var("MACROCHIP_CACHE_DIR", "new-dir");
        assert_eq!(ResultCache::default_dir(), PathBuf::from("new-dir"));
        std::env::remove_var("MACROCHIP_CACHE_DIR");
        std::env::remove_var("MACROCHIP_CACHE");
    }
}
