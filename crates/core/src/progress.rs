//! Live progress streaming for long campaigns (`--progress`).
//!
//! A [`ProgressReporter`] is a background thread that periodically prints
//! one status line to stderr while a campaign runs:
//!
//! ```text
//! [progress] sweep: 12/60 points, sim 25.0 us, 4.3M events, 1.2M ev/s, ETA 8s
//! ```
//!
//! The figures come entirely from the always-on host counters in
//! [`desim::prof`] — points completed, simulation events processed, the
//! furthest simulation time reached — so reporting never touches, locks
//! or perturbs the simulation itself. Determinism is untouched: the
//! reporter only *reads* atomics that the drivers publish regardless.
//!
//! The reporter stops (and prints a final line) when dropped, so callers
//! wrap the campaign in its scope:
//!
//! ```
//! use macrochip::progress::ProgressReporter;
//! {
//!     let _progress = ProgressReporter::start("sweep", 60, false);
//!     // ... run the campaign ...
//! } // final line printed here
//! ```

use desim::prof::{self, Counter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Interval between progress lines.
const TICK: Duration = Duration::from_millis(500);

/// A point-in-time reading of the always-on host counters.
///
/// The serve subsystem takes one of these when a job starts and diffs
/// against later snapshots to stream per-job progress events (points
/// done, events processed, cache hits) without touching the simulation.
/// The counters are process-global, so under concurrent jobs the deltas
/// attribute all workers' activity to whichever jobs are in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostCounters {
    pub points_done: u64,
    pub sim_events: u64,
    pub packets: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
}

impl HostCounters {
    /// Reads the current counter values.
    pub fn snapshot() -> HostCounters {
        HostCounters {
            points_done: prof::counter(Counter::PointsDone),
            sim_events: prof::counter(Counter::SimEvents),
            packets: prof::counter(Counter::Packets),
            cache_hits: prof::counter(Counter::CacheHits),
            cache_misses: prof::counter(Counter::CacheMisses),
        }
    }

    /// Component-wise `self - base`, saturating at zero.
    pub fn since(&self, base: &HostCounters) -> HostCounters {
        HostCounters {
            points_done: self.points_done.saturating_sub(base.points_done),
            sim_events: self.sim_events.saturating_sub(base.sim_events),
            packets: self.packets.saturating_sub(base.packets),
            cache_hits: self.cache_hits.saturating_sub(base.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(base.cache_misses),
        }
    }
}

/// A background stderr progress printer; stops on drop.
pub struct ProgressReporter {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressReporter {
    /// Starts reporting for a campaign of `total` points under `label`.
    /// When `enabled` is false this is a no-op shell (so call sites can
    /// construct one unconditionally and let the flag decide).
    pub fn start(label: &str, total: usize, enabled: bool) -> ProgressReporter {
        if !enabled {
            return ProgressReporter {
                stop: Arc::new(AtomicBool::new(true)),
                handle: None,
            };
        }
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let label = label.to_string();
        let base_points = prof::counter(Counter::PointsDone);
        let base_events = prof::counter(Counter::SimEvents);
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let mut last_line_points = u64::MAX;
            let mut last_line_events = u64::MAX;
            while !thread_stop.load(Ordering::Relaxed) {
                std::thread::park_timeout(TICK);
                let done = prof::counter(Counter::PointsDone).saturating_sub(base_points);
                let events = prof::counter(Counter::SimEvents).saturating_sub(base_events);
                // Don't repeat identical lines while a slow point runs.
                if done == last_line_points && events == last_line_events {
                    continue;
                }
                last_line_points = done;
                last_line_events = events;
                eprintln!("{}", render(&label, done, total, events, started.elapsed()));
            }
            let done = prof::counter(Counter::PointsDone).saturating_sub(base_points);
            let events = prof::counter(Counter::SimEvents).saturating_sub(base_events);
            eprintln!("{}", render(&label, done, total, events, started.elapsed()));
        });
        ProgressReporter {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

/// Renders one status line: points, furthest sim time, events, events/sec
/// and an ETA extrapolated from completed points.
fn render(label: &str, done: u64, total: usize, events: u64, elapsed: Duration) -> String {
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 {
        events as f64 / secs
    } else {
        0.0
    };
    let eta = if done > 0 && (done as usize) < total {
        let remaining = secs * (total as f64 - done as f64) / done as f64;
        format!(", ETA {}", human_secs(remaining))
    } else {
        String::new()
    };
    format!(
        "[progress] {label}: {done}/{total} points, sim {:.1} us, {} events, {} ev/s{eta}",
        prof::sim_time_ps() as f64 / 1e6,
        human_count(events as f64),
        human_count(rate),
    )
}

/// `1234567.0` → `"1.2M"`.
fn human_count(n: f64) -> String {
    if n >= 1e9 {
        format!("{:.1}G", n / 1e9)
    } else if n >= 1e6 {
        format!("{:.1}M", n / 1e6)
    } else if n >= 1e3 {
        format!("{:.1}k", n / 1e3)
    } else {
        format!("{n:.0}")
    }
}

/// `83.0` → `"1m23s"`.
fn human_secs(s: f64) -> String {
    if s >= 60.0 {
        format!("{}m{:02}s", (s / 60.0) as u64, (s % 60.0) as u64)
    } else {
        format!("{s:.0}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_reporter_is_inert() {
        let reporter = ProgressReporter::start("noop", 10, false);
        assert!(reporter.handle.is_none());
        drop(reporter); // must not hang or print
    }

    #[test]
    fn enabled_reporter_starts_and_stops() {
        let reporter = ProgressReporter::start("test", 2, true);
        prof::add(Counter::PointsDone, 1);
        std::thread::sleep(Duration::from_millis(10));
        drop(reporter); // joins the thread; the final line prints to stderr
    }

    #[test]
    fn render_includes_rate_and_eta() {
        let line = render("sweep", 5, 10, 2_500_000, Duration::from_secs(2));
        assert!(line.contains("5/10 points"), "{line}");
        assert!(line.contains("2.5M events"), "{line}");
        assert!(line.contains("1.2M ev/s"), "{line}");
        assert!(line.contains("ETA 2s"), "{line}");
    }

    #[test]
    fn render_omits_eta_when_done_or_empty() {
        let all_done = render("x", 10, 10, 100, Duration::from_secs(1));
        assert!(!all_done.contains("ETA"), "{all_done}");
        let nothing_yet = render("x", 0, 10, 0, Duration::from_secs(1));
        assert!(!nothing_yet.contains("ETA"), "{nothing_yet}");
    }

    #[test]
    fn human_units_round_trip() {
        assert_eq!(human_count(950.0), "950");
        assert_eq!(human_count(1_500.0), "1.5k");
        assert_eq!(human_count(2_500_000.0), "2.5M");
        assert_eq!(human_count(3_000_000_000.0), "3.0G");
        assert_eq!(human_secs(5.0), "5s");
        assert_eq!(human_secs(83.0), "1m23s");
    }
}
