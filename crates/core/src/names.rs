//! Canonical short names for CLI arguments and wire protocols.
//!
//! The `macrochip` binary, the serve protocol and the tests all need the
//! same name ↔ value mappings (`"p2p"` ↔ [`NetworkKind::PointToPoint`],
//! `"uniform"` ↔ [`Pattern::Uniform`], …). Keeping them here means a
//! job submitted over the wire and a flag typed on the command line are
//! parsed by literally the same code, so the two paths cannot drift.

use crate::experiment::WorkloadSpec;
use netcore::{MessageKind, NetworkKind};
use workloads::{AppProfile, Collective, Pattern, SharingMix};

/// The CLI/wire code for a network (`"p2p"`, `"two-phase"`, …).
pub fn network_code(kind: NetworkKind) -> &'static str {
    match kind {
        NetworkKind::PointToPoint => "p2p",
        NetworkKind::LimitedPointToPoint => "limited",
        NetworkKind::TokenRing => "token",
        NetworkKind::CircuitSwitched => "circuit",
        NetworkKind::TwoPhase => "two-phase",
        NetworkKind::TwoPhaseAlt => "two-phase-alt",
        NetworkKind::Hierarchical => "hierarchical",
    }
}

/// Parses one network code; `"all"` is rejected here — use
/// [`parse_networks`] where a set is acceptable.
pub fn parse_network(name: &str) -> Option<NetworkKind> {
    NetworkKind::ALL
        .into_iter()
        .find(|&k| network_code(k) == name)
}

/// Parses a network argument that may be `"all"`.
pub fn parse_networks(name: &str) -> Option<Vec<NetworkKind>> {
    if name == "all" {
        return Some(NetworkKind::ALL.to_vec());
    }
    parse_network(name).map(|k| vec![k])
}

/// The CLI/wire code for a traffic pattern (`"uniform"`, `"hotspot"`, …).
pub fn pattern_code(pattern: Pattern) -> &'static str {
    match pattern {
        Pattern::Uniform => "uniform",
        Pattern::Transpose => "transpose",
        Pattern::Butterfly => "butterfly",
        Pattern::Neighbor => "neighbor",
        Pattern::AllToAll => "all-to-all",
        Pattern::HotSpot => "hotspot",
    }
}

/// Parses a traffic-pattern code.
pub fn parse_pattern(name: &str) -> Option<Pattern> {
    [
        Pattern::Uniform,
        Pattern::Transpose,
        Pattern::Butterfly,
        Pattern::Neighbor,
        Pattern::AllToAll,
        Pattern::HotSpot,
    ]
    .into_iter()
    .find(|&p| pattern_code(p) == name)
}

/// Parses a message-passing collective name.
pub fn parse_collective(name: &str) -> Option<Collective> {
    Some(match name {
        "ring" => Collective::RingAllReduce,
        "butterfly" => Collective::ButterflyExchange,
        "halo" => Collective::HaloExchange,
        "all-to-all" => Collective::AllToAllPersonalized,
        _ => return None,
    })
}

/// Resolves a workload name: an [`AppProfile`] from the paper's suite
/// (by exact name) or a synthetic pattern workload (LS sharing mix).
pub fn parse_workload(name: &str, ops: u32) -> Option<WorkloadSpec> {
    if let Some(profile) = AppProfile::suite().into_iter().find(|p| p.name == name) {
        return Some(WorkloadSpec::App(profile.with_ops_per_core(ops)));
    }
    parse_pattern(&name.to_lowercase()).map(|pattern| WorkloadSpec::Synthetic {
        pattern,
        mix: SharingMix::LessSharing,
        ops_per_core: ops,
    })
}

/// Parses a message kind for trace filtering (case-insensitive).
pub fn parse_message_kind(name: &str) -> Option<MessageKind> {
    Some(match name.to_ascii_lowercase().as_str() {
        "data" => MessageKind::Data,
        "request" => MessageKind::Request,
        "forward" => MessageKind::Forward,
        "invalidate" => MessageKind::Invalidate,
        "ack" => MessageKind::Ack,
        "control" => MessageKind::Control,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_codes_round_trip() {
        for kind in NetworkKind::ALL {
            assert_eq!(parse_network(network_code(kind)), Some(kind));
        }
        assert_eq!(parse_networks("all"), Some(NetworkKind::ALL.to_vec()));
        assert_eq!(parse_network("all"), None);
        assert_eq!(parse_network("bogus"), None);
    }

    #[test]
    fn pattern_codes_round_trip() {
        for name in [
            "uniform",
            "transpose",
            "butterfly",
            "neighbor",
            "all-to-all",
            "hotspot",
        ] {
            let p = parse_pattern(name).expect(name);
            assert_eq!(pattern_code(p), name);
        }
        assert_eq!(parse_pattern("Uniform"), None);
    }

    #[test]
    fn workloads_resolve_suite_and_synthetic() {
        let app = parse_workload("Swaptions", 40).expect("suite name");
        assert!(matches!(app, WorkloadSpec::App(_)));
        let synth = parse_workload("uniform", 10).expect("pattern name");
        assert!(matches!(
            synth,
            WorkloadSpec::Synthetic {
                pattern: Pattern::Uniform,
                ops_per_core: 10,
                ..
            }
        ));
        assert!(parse_workload("nope", 1).is_none());
    }
}
