//! Trace-driven experiments: capture a run into a `.mtrc` trace, and play
//! a trace back through any network — the cross-network comparison
//! harness of the paper's §5 methodology.
//!
//! Capture taps the driver through [`run_load_point_observed`] /
//! [`run_coherent_observed`] with a [`replay::CaptureSink`]-backed
//! observer, so the recorded stream is exactly what the network was asked
//! to carry. Replay wraps a [`replay::TraceSource`] around the same
//! [`drive`](crate::runner::drive) loop, so a trace plays through any of
//! the five networks — bare or under a fault plan — and every
//! architecture is judged on *identical* traffic, packet for packet.
//!
//! [`run_load_point_observed`]: crate::sweep::run_load_point_observed
//! [`run_coherent_observed`]: crate::experiment::run_coherent_observed

use crate::runner::{drive_traced, DriveLimits};
use desim::{Span, Tracer};
use faults::{FaultPlan, ResilientNetwork};
use netcore::{MacrochipConfig, MetricsRegistry, Network, NetworkKind};
use replay::{ReplayStats, TraceError, TraceSource};
use std::io::Read;
use std::path::Path;

/// Knobs for a replay run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOptions {
    /// Extra drain time after the last trace packet's creation instant.
    pub drain: Span,
    /// Stalled-packet bound that declares saturation.
    pub max_stalled: usize,
}

impl Default for ReplayOptions {
    fn default() -> ReplayOptions {
        ReplayOptions {
            drain: Span::from_us(20),
            max_stalled: 5_000,
        }
    }
}

/// The measured outcome of replaying one trace through one network, in
/// cache-stable form.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySummary {
    /// Packets in the source trace.
    pub trace_packets: u64,
    /// Packets actually injected (== `trace_packets` unless the run
    /// saturated, timed out or the trace was corrupt).
    pub emitted: u64,
    /// Packets the network delivered.
    pub delivered: u64,
    /// Bytes the network delivered.
    pub delivered_bytes: u64,
    /// Mean end-to-end latency, nanoseconds.
    pub mean_latency_ns: f64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_latency_ns: f64,
    /// Delivered throughput per site, bytes/ns.
    pub delivered_bytes_per_ns_per_site: f64,
    /// Simulation time when the run stopped, ns.
    pub end_ns: f64,
    /// The run hit its stalled-packet bound.
    pub saturated: bool,
    /// The run hit its deadline with work pending.
    pub timed_out: bool,
    /// Replay stopped early on a corrupt trace block.
    pub poisoned: bool,
    /// Creation instant of the last trace packet, picoseconds.
    pub trace_last_ps: u64,
    /// FNV-1a content hash of the trace body (the replay cache key).
    pub content_hash: u64,
}

impl ReplaySummary {
    /// Fraction of trace packets that made it to their destination.
    pub fn delivery_ratio(&self) -> f64 {
        if self.trace_packets == 0 {
            1.0
        } else {
            self.delivered as f64 / self.trace_packets as f64
        }
    }
}

/// Replays `source` through `net` on the calling thread.
///
/// The deadline is the trace's last creation instant plus
/// [`ReplayOptions::drain`]; a clean trace on an unsaturated network
/// injects every packet and drains completely. The driven network is left
/// in its end-of-run state so callers can export its stats.
pub fn drive_replay<R: Read>(
    net: &mut dyn Network,
    source: &mut TraceSource<R>,
    config: &MacrochipConfig,
    options: ReplayOptions,
    tracer: Tracer,
) -> ReplaySummary {
    let deadline = source.header().last_time() + options.drain;
    let outcome = drive_traced(
        net,
        source,
        DriveLimits {
            deadline,
            max_stalled: options.max_stalled,
        },
        tracer,
    );
    let stats = net.stats();
    ReplaySummary {
        trace_packets: source.header().packets,
        emitted: source.emitted(),
        delivered: stats.delivered_packets(),
        delivered_bytes: stats.delivered_bytes(),
        mean_latency_ns: stats.mean_latency().as_ns_f64(),
        p99_latency_ns: stats.latency().percentile(0.99).as_ns_f64(),
        delivered_bytes_per_ns_per_site: stats.delivered_bytes_per_ns()
            / config.grid.sites() as f64,
        end_ns: outcome.end.as_ns_f64(),
        saturated: outcome.saturated,
        timed_out: outcome.timed_out,
        poisoned: source.is_poisoned(),
        trace_last_ps: source.header().last_ps,
        content_hash: source.header().content_hash,
    }
}

/// Opens the trace at `path` and replays it through a fresh `kind`
/// network. Returns the summary and the driven network (for stats and
/// metrics export).
#[allow(clippy::type_complexity)]
pub fn run_replay(
    kind: NetworkKind,
    path: &Path,
    config: &MacrochipConfig,
    options: ReplayOptions,
    tracer: Tracer,
) -> Result<(ReplaySummary, Box<dyn Network>), TraceError> {
    let mut source = TraceSource::open(path)?;
    check_grid(&source, config)?;
    let mut net = networks::build(kind, *config);
    net.set_tracer(tracer.clone());
    let summary = drive_replay(net.as_mut(), &mut source, config, options, tracer);
    Ok((summary, net))
}

/// Replays the trace at `path` through `kind` wrapped in a
/// [`ResilientNetwork`] executing `plan` — identical traffic under
/// injected faults. The fault horizon is the trace's duration.
pub fn run_replay_faulted(
    kind: NetworkKind,
    path: &Path,
    config: &MacrochipConfig,
    plan: &FaultPlan,
    seed: u64,
    options: ReplayOptions,
    tracer: Tracer,
) -> Result<(ReplaySummary, ResilientNetwork), TraceError> {
    let mut source = TraceSource::open(path)?;
    check_grid(&source, config)?;
    let horizon = source.header().last_time();
    let mut net = ResilientNetwork::new(networks::build(kind, *config), plan, seed, horizon);
    net.set_tracer(tracer.clone());
    let summary = drive_replay(&mut net, &mut source, config, options, tracer);
    Ok((summary, net))
}

/// Flattens a replay run into `reg`: the `net.*` family from the driven
/// network plus the `replay.*` family describing trace coverage.
pub fn record_replay_metrics(
    reg: &mut MetricsRegistry,
    net: &dyn Network,
    summary: &ReplaySummary,
) {
    reg.record_net_stats(net.stats());
    ReplayStats {
        trace_packets: summary.trace_packets,
        emitted: summary.emitted,
        delivered: summary.delivered,
        trace_last_ps: summary.trace_last_ps,
        content_hash: summary.content_hash,
        poisoned: summary.poisoned,
    }
    .record_metrics(reg);
}

fn check_grid<R: Read>(
    source: &TraceSource<R>,
    config: &MacrochipConfig,
) -> Result<(), TraceError> {
    let side = source.header().meta.grid_side as usize;
    if side != config.grid.side() {
        return Err(TraceError::BadHeader(format!(
            "trace was captured on a {side}x{side} grid, configuration is {}x{}",
            config.grid.side(),
            config.grid.side()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_load_point_observed, SweepOptions};
    use desim::Span;
    use replay::{TraceMeta, TraceReader, TraceWriter};
    use std::io::Cursor;
    use workloads::Pattern;

    fn config() -> MacrochipConfig {
        MacrochipConfig::scaled()
    }

    fn fast_sweep() -> SweepOptions {
        SweepOptions {
            sim: Span::from_ns(500),
            drain: Span::from_us(5),
            max_stalled: 5_000,
            seed: 77,
        }
    }

    /// Captures a short uniform p2p run in memory, returning the trace
    /// bytes and the live network (for its end-of-run stats).
    fn capture_uniform() -> (Vec<u8>, Box<dyn Network>) {
        let cfg = config();
        let meta = TraceMeta {
            grid_side: cfg.grid.side() as u16,
            seed: 77,
            description: "test capture".into(),
        };
        let mut writer = Some(TraceWriter::create(Cursor::new(Vec::new()), &meta).expect("writer"));
        let (point, net) = run_load_point_observed(
            networks::build(NetworkKind::PointToPoint, cfg),
            Pattern::Uniform,
            0.05,
            &cfg,
            fast_sweep(),
            Tracer::disabled(),
            |p| {
                writer.as_mut().expect("live").record(p).expect("record");
            },
        );
        assert!(!point.saturated);
        let bytes = writer
            .take()
            .expect("writer")
            .finish()
            .expect("finish")
            .0
            .into_inner();
        (bytes, net)
    }

    fn source_from(bytes: &[u8]) -> TraceSource<Cursor<Vec<u8>>> {
        TraceSource::new(TraceReader::new(Cursor::new(bytes.to_vec())).expect("reader"))
    }

    #[test]
    fn replay_reproduces_live_delivery_counts() {
        let cfg = config();
        let (bytes, live_net) = capture_uniform();
        let mut source = source_from(&bytes);
        let trace_packets = source.header().packets;
        assert!(trace_packets > 1_000);

        let mut net = networks::build(NetworkKind::PointToPoint, cfg);
        let summary = drive_replay(
            net.as_mut(),
            &mut source,
            &cfg,
            ReplayOptions::default(),
            Tracer::disabled(),
        );
        assert!(!summary.saturated && !summary.timed_out && !summary.poisoned);
        assert_eq!(summary.trace_packets, trace_packets);
        assert_eq!(summary.emitted, trace_packets);
        assert_eq!(summary.delivered, live_net.stats().delivered_packets());
        assert_eq!(summary.delivered_bytes, live_net.stats().delivered_bytes());
        assert_eq!(
            summary.mean_latency_ns,
            live_net.stats().mean_latency().as_ns_f64(),
            "replay must reproduce live latency exactly"
        );

        // The same trace plays through a different architecture too.
        let mut source2 = source_from(&bytes);
        let mut ring = networks::build(NetworkKind::TokenRing, cfg);
        let ring_summary = drive_replay(
            ring.as_mut(),
            &mut source2,
            &cfg,
            ReplayOptions::default(),
            Tracer::disabled(),
        );
        assert_eq!(ring_summary.emitted, trace_packets);
        assert!(ring_summary.delivered > 0);
        // Identical traffic, different architecture: latency differs.
        assert_ne!(ring_summary.mean_latency_ns, summary.mean_latency_ns);
    }

    #[test]
    fn capture_is_deterministic() {
        let (a, _) = capture_uniform();
        let (b, _) = capture_uniform();
        assert_eq!(a, b, "same seed and pattern must capture identical bytes");
    }

    #[test]
    fn replay_metrics_cover_both_families() {
        let cfg = config();
        let (bytes, _) = capture_uniform();
        let mut source = source_from(&bytes);
        let mut net = networks::build(NetworkKind::PointToPoint, cfg);
        let summary = drive_replay(
            net.as_mut(),
            &mut source,
            &cfg,
            ReplayOptions::default(),
            Tracer::disabled(),
        );
        let mut reg = MetricsRegistry::new();
        record_replay_metrics(&mut reg, net.as_ref(), &summary);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"net.delivered\""), "{json}");
        assert!(json.contains("\"replay.trace_packets\""), "{json}");
        assert!(json.contains("\"replay.poisoned\": 0"), "{json}");
    }

    #[test]
    fn grid_mismatch_is_a_clear_error() {
        let meta = TraceMeta {
            grid_side: 4,
            seed: 1,
            description: "small grid".into(),
        };
        let w = TraceWriter::create(Cursor::new(Vec::new()), &meta).expect("writer");
        let bytes = w.finish().expect("finish").0.into_inner();
        let source = source_from(&bytes);
        let err = check_grid(&source, &config()).expect_err("grid mismatch");
        assert!(err.to_string().contains("4x4"), "{err}");
    }
}
