//! Open-loop latency-vs-offered-load sweeps (Figure 6).
//!
//! A sweep drives one network with one synthetic pattern at a series of
//! offered loads (fractions of the 320 bytes/ns per-site peak — Figure
//! 6's x-axis) and records the mean packet latency and delivered
//! throughput at each point. The vertical asymptote of the resulting
//! curve is the network's maximum sustainable bandwidth (§6.1).

use crate::runner::{drive_observed, DriveLimits};
use desim::{Span, Time, Tracer};
use netcore::{MacrochipConfig, NetworkKind, Packet};
use workloads::{OpenLoopTraffic, Pattern};

/// One measured point of a latency-load curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load as a fraction of the per-site peak (320 B/ns).
    pub offered: f64,
    /// Mean end-to-end packet latency, in nanoseconds.
    pub mean_latency_ns: f64,
    /// 99th-percentile latency, in nanoseconds.
    pub p99_latency_ns: f64,
    /// Delivered throughput per site, in bytes/ns.
    pub delivered_bytes_per_ns_per_site: f64,
    /// The network could not absorb this load.
    pub saturated: bool,
}

/// Knobs for a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepOptions {
    /// Traffic-generation window per load point.
    pub sim: Span,
    /// Extra drain time after generation stops.
    pub drain: Span,
    /// Stalled-packet bound that declares saturation.
    pub max_stalled: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            sim: Span::from_us(5),
            drain: Span::from_us(20),
            max_stalled: 5_000,
            seed: 0xC0FFEE,
        }
    }
}

/// Runs one load point: one network, one pattern, one offered load.
pub fn run_load_point(
    kind: NetworkKind,
    pattern: Pattern,
    offered: f64,
    config: &MacrochipConfig,
    options: SweepOptions,
) -> LoadPoint {
    run_load_point_on(
        networks::build(kind, *config),
        pattern,
        offered,
        config,
        options,
    )
}

/// Runs one load point on an already-built (possibly custom-configured)
/// network — the entry point for the ablation sweeps.
pub fn run_load_point_on(
    net: Box<dyn netcore::Network>,
    pattern: Pattern,
    offered: f64,
    config: &MacrochipConfig,
    options: SweepOptions,
) -> LoadPoint {
    run_load_point_traced(net, pattern, offered, config, options, Tracer::disabled()).0
}

/// [`run_load_point_on`] with a flight recorder attached.
///
/// The tracer is installed on the network (via [`netcore::Network::set_tracer`])
/// **and** handed to the driver, so one sink sees the full event stream:
/// injects, stalls/retries, arbitration, hops and deliveries. The driven
/// network is returned alongside the measured point so callers can export
/// its [`netcore::NetStats`] (per-phase latency, throughput) into a
/// metrics registry.
pub fn run_load_point_traced(
    net: Box<dyn netcore::Network>,
    pattern: Pattern,
    offered: f64,
    config: &MacrochipConfig,
    options: SweepOptions,
    tracer: Tracer,
) -> (LoadPoint, Box<dyn netcore::Network>) {
    run_load_point_observed(net, pattern, offered, config, options, tracer, |_| {})
}

/// [`run_load_point_traced`] with a capture hook: `observer` sees every
/// packet the traffic generator emits, in emission order (the trace
/// subsystem's `CaptureSink` plugs in here). A no-op observer leaves the
/// run's behavior and results untouched.
pub fn run_load_point_observed<F: FnMut(&Packet)>(
    mut net: Box<dyn netcore::Network>,
    pattern: Pattern,
    offered: f64,
    config: &MacrochipConfig,
    options: SweepOptions,
    tracer: Tracer,
    observer: F,
) -> (LoadPoint, Box<dyn netcore::Network>) {
    net.set_tracer(tracer.clone());
    let peak = config.site_bandwidth_bytes_per_ns();
    let mut traffic = OpenLoopTraffic::new(
        &config.grid,
        pattern,
        offered,
        peak,
        config.data_bytes,
        options.seed,
    );
    let horizon = Time::ZERO + options.sim;
    traffic.set_horizon(horizon);
    let outcome = drive_observed(
        net.as_mut(),
        &mut traffic,
        DriveLimits {
            deadline: horizon + options.drain,
            max_stalled: options.max_stalled,
        },
        tracer,
        observer,
    );
    let stats = net.stats();
    let delivered_rate = stats.delivered_bytes_per_ns() / config.grid.sites() as f64;
    // Saturation: the driver said so, drainage timed out, or the network
    // delivered well under what was offered.
    let offered_rate = offered * peak;
    let undelivered = traffic.emitted() > 0
        && (stats.delivered_packets() as f64) < 0.85 * traffic.emitted() as f64;
    let point = LoadPoint {
        offered,
        mean_latency_ns: stats.mean_latency().as_ns_f64(),
        p99_latency_ns: stats.latency().percentile(0.99).as_ns_f64(),
        delivered_bytes_per_ns_per_site: delivered_rate.min(offered_rate),
        saturated: outcome.saturated || outcome.timed_out || undelivered,
    };
    (point, net)
}

/// Runs a whole latency-load curve over `loads`.
pub fn latency_vs_load(
    kind: NetworkKind,
    pattern: Pattern,
    loads: &[f64],
    config: &MacrochipConfig,
    options: SweepOptions,
) -> Vec<LoadPoint> {
    loads
        .iter()
        .map(|&l| run_load_point(kind, pattern, l, config, options))
        .collect()
}

/// Estimates the maximum sustainable bandwidth (fraction of peak) by
/// bisection between the largest unsaturated and the smallest saturated
/// load, to `tolerance` (fraction of peak).
pub fn sustained_bandwidth(
    kind: NetworkKind,
    pattern: Pattern,
    config: &MacrochipConfig,
    options: SweepOptions,
    tolerance: f64,
) -> f64 {
    let mut lo = 0.0; // known sustainable
    let mut hi = 1.0; // known (or assumed) saturated
                      // Establish whether full load is sustainable at all.
    if !run_load_point(kind, pattern, 1.0, config, options).saturated {
        return 1.0;
    }
    while hi - lo > tolerance {
        let mid = 0.5 * (lo + hi);
        let p = run_load_point(kind, pattern, mid, config, options);
        if p.saturated {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// Like [`sustained_bandwidth`], but over custom-configured networks
/// produced by `factory` (the entry point for the ablation sweeps).
pub fn sustained_bandwidth_on<F>(
    factory: F,
    pattern: Pattern,
    config: &MacrochipConfig,
    options: SweepOptions,
    tolerance: f64,
) -> f64
where
    F: Fn() -> Box<dyn netcore::Network>,
{
    let mut lo = 0.0;
    let mut hi = 1.0;
    if !run_load_point_on(factory(), pattern, 1.0, config, options).saturated {
        return 1.0;
    }
    while hi - lo > tolerance {
        let mid = 0.5 * (lo + hi);
        if run_load_point_on(factory(), pattern, mid, config, options).saturated {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    lo
}

/// The canonical Figure 6 load grids per pattern, mirroring the paper's
/// x-axis ranges (uniform sweeps to 100%, transpose/butterfly to ~6%,
/// nearest-neighbor to ~25%).
pub fn figure6_loads(pattern: Pattern) -> Vec<f64> {
    let max = match pattern {
        Pattern::Uniform | Pattern::AllToAll => 1.0,
        Pattern::Neighbor => 0.25,
        Pattern::Transpose | Pattern::Butterfly => 0.06,
        // Extension pattern: the hot site's ingress saturates early.
        Pattern::HotSpot => 0.25,
    };
    (1..=10).map(|i| max * i as f64 / 10.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_options() -> SweepOptions {
        SweepOptions {
            sim: Span::from_us(2),
            drain: Span::from_us(10),
            max_stalled: 10_000,
            seed: 1,
        }
    }

    fn config() -> MacrochipConfig {
        MacrochipConfig::scaled()
    }

    #[test]
    fn p2p_sustains_low_uniform_load_with_low_latency() {
        let p = run_load_point(
            NetworkKind::PointToPoint,
            Pattern::Uniform,
            0.10,
            &config(),
            fast_options(),
        );
        assert!(!p.saturated);
        // Near-empty channels: serialization (12.8) + flight (~2).
        assert!(p.mean_latency_ns < 25.0, "latency {}", p.mean_latency_ns);
    }

    #[test]
    fn latency_rises_with_load() {
        let pts = latency_vs_load(
            NetworkKind::PointToPoint,
            Pattern::Uniform,
            &[0.1, 0.5, 0.8],
            &config(),
            fast_options(),
        );
        assert!(pts[0].mean_latency_ns < pts[1].mean_latency_ns);
        assert!(pts[1].mean_latency_ns < pts[2].mean_latency_ns);
    }

    #[test]
    fn circuit_switched_saturates_early_on_uniform() {
        let p = run_load_point(
            NetworkKind::CircuitSwitched,
            Pattern::Uniform,
            0.10,
            &config(),
            fast_options(),
        );
        assert!(p.saturated, "circuit-switched sustained 10% uniform");
    }

    #[test]
    fn figure6_load_grids_match_paper_axes() {
        assert_eq!(figure6_loads(Pattern::Uniform).last(), Some(&1.0));
        assert!(figure6_loads(Pattern::Transpose).last().unwrap() <= &0.06);
        assert_eq!(figure6_loads(Pattern::Neighbor).len(), 10);
    }

    #[test]
    fn delivered_rate_tracks_offered_rate_when_unsaturated() {
        let p = run_load_point(
            NetworkKind::PointToPoint,
            Pattern::Uniform,
            0.2,
            &config(),
            fast_options(),
        );
        let offered_rate = 0.2 * 320.0;
        assert!(
            (p.delivered_bytes_per_ns_per_site - offered_rate).abs() < 0.15 * offered_rate,
            "delivered {} vs offered {}",
            p.delivered_bytes_per_ns_per_site,
            offered_rate
        );
    }
}
