//! The standing host-performance baseline: `macrochip bench`.
//!
//! Runs a fixed-seed open-loop workload on each of the five Figure 6
//! networks plus the hierarchical network ([`BENCH_NETWORKS`]), repeats
//! it for several trials, and reports the **median**
//! wall-clock plus derived events/sec — the simulator's host throughput.
//! Results serialize as a schema-versioned `BENCH_<n>.json` that later
//! performance PRs diff against ([`compare`]): the workload, seed and
//! simulated window are pinned, so two checkouts measuring the same
//! `BENCH` file contents (minus the timing fields) are running the same
//! experiment.
//!
//! Simulation outputs are deterministic, so every trial must agree on
//! events, injections and deliveries — [`run_bench`] asserts this, which
//! doubles as a cheap determinism check on every bench run. Wall-clock
//! and anything derived from it (`wall_ms_*`, `events_per_sec`,
//! `packets_per_sec`, `peak_rss_bytes`) are the only fields allowed to
//! differ between runs.

use crate::json;
use crate::sweep::{run_load_point_observed, SweepOptions};
use desim::prof;
use desim::trace::RingSink;
use desim::{Span, Tracer};
use netcore::metrics::{json_escape, json_f64};
use netcore::{FabricConfig, MacrochipConfig, NetworkKind};
use std::fmt::Write as _;
use std::time::Instant;
use workloads::Pattern;

/// Schema version of the emitted `BENCH_*.json`. Bump when fields change
/// incompatibly; [`compare`] warns across versions.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Identifies the document as a macrochip bench baseline.
pub const BENCH_SCHEMA: &str = "macrochip-bench";

/// Fixed RNG seed for every bench workload.
pub const BENCH_SEED: u64 = 0xC0FFEE;

/// Default regression threshold for [`compare`]: a network fails when its
/// events/sec falls more than this factor below the baseline.
pub const DEFAULT_MAX_REGRESSION: f64 = 2.0;

/// Ring capacity when benching with the flight recorder attached.
const BENCH_TRACE_CAPACITY: usize = 1 << 16;

/// Offered load (fraction of per-site peak) each network is benched at —
/// comfortably below its measured saturation point so the run exercises
/// the steady-state event loop rather than stall churn.
pub fn bench_load(kind: NetworkKind) -> f64 {
    match kind {
        NetworkKind::PointToPoint => 0.30,
        NetworkKind::LimitedPointToPoint => 0.20,
        NetworkKind::TokenRing | NetworkKind::TwoPhaseAlt => 0.15,
        NetworkKind::TwoPhase => 0.03,
        NetworkKind::CircuitSwitched => 0.01,
        // Each cluster's shared bundle serializes its 16 sites' traffic.
        NetworkKind::Hierarchical => 0.05,
    }
}

/// The networks `macrochip bench` measures: the five Figure 6
/// architectures plus the hierarchical network appended last, so a
/// baseline written before the sixth existed still lines up entry by
/// entry ([`compare`] warn-skips networks missing from a baseline).
pub const BENCH_NETWORKS: [NetworkKind; 6] = [
    NetworkKind::TokenRing,
    NetworkKind::CircuitSwitched,
    NetworkKind::PointToPoint,
    NetworkKind::LimitedPointToPoint,
    NetworkKind::TwoPhase,
    NetworkKind::Hierarchical,
];

/// Knobs for a bench run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchOptions {
    /// Trials per network; the reported wall-clock is their median.
    pub trials: usize,
    /// Traffic-generation window per trial.
    pub sim: Span,
    /// Extra drain time after generation stops.
    pub drain: Span,
    /// Attach a ring-buffer flight recorder during trials (measures the
    /// tracer-enabled overhead; default is disabled, the production
    /// fast path).
    pub trace: bool,
    /// Print a per-trial line to stderr as results come in.
    pub progress: bool,
    /// Regression threshold recorded in the report and used by
    /// `--against` comparisons ([`DEFAULT_MAX_REGRESSION`] unless
    /// overridden with `--max-regression`).
    pub max_regression: f64,
}

impl BenchOptions {
    /// The full baseline: 5 trials over a 5 µs window.
    pub fn full() -> BenchOptions {
        BenchOptions {
            trials: 5,
            sim: Span::from_us(5),
            drain: Span::from_us(20),
            trace: false,
            progress: false,
            max_regression: DEFAULT_MAX_REGRESSION,
        }
    }

    /// CI smoke sizing: 3 trials over a 1 µs window.
    pub fn quick() -> BenchOptions {
        BenchOptions {
            trials: 3,
            sim: Span::from_us(1),
            drain: Span::from_us(5),
            ..BenchOptions::full()
        }
    }
}

/// Median wall-clock and deterministic work figures for one network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkBench {
    pub kind: NetworkKind,
    pub offered_load: f64,
    /// Simulation events processed per trial (identical across trials).
    pub events: u64,
    pub injected: u64,
    pub delivered: u64,
    pub saturated: bool,
    /// Simulation end time, nanoseconds (deterministic).
    pub end_ns: f64,
    /// Per-trial wall-clock, milliseconds, in execution order.
    pub wall_ms_trials: Vec<f64>,
}

impl NetworkBench {
    /// Median of the per-trial wall-clocks, milliseconds.
    pub fn wall_ms_median(&self) -> f64 {
        median(&self.wall_ms_trials)
    }

    /// Host throughput at the median trial: simulation events per
    /// wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        per_sec(self.events, self.wall_ms_median())
    }

    /// Delivered packets per wall-clock second at the median trial.
    pub fn packets_per_sec(&self) -> f64 {
        per_sec(self.delivered, self.wall_ms_median())
    }
}

/// A complete bench baseline, ready to serialize.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    pub schema_version: u64,
    /// Git commit of the benched tree, or `"unknown"`.
    pub commit: String,
    /// `macrochip` crate version.
    pub version: String,
    pub quick: bool,
    pub trials: usize,
    pub seed: u64,
    pub sim_ns: f64,
    pub drain_ns: f64,
    pub sites: usize,
    /// Macrochips on the benched board (`1` = the classic single-chip
    /// bench; baselines written before multi-chip fabrics existed parse
    /// as `1`).
    pub chips: usize,
    pub cores_per_site: usize,
    pub data_bytes: u32,
    /// `"ring"` when benched with the flight recorder attached,
    /// `"disabled"` for the production fast path.
    pub tracer: String,
    /// The `--max-regression` factor this report was produced under, so
    /// a baseline records the gate it expects to be compared with.
    pub max_regression: f64,
    pub peak_rss_bytes: u64,
    pub networks: Vec<NetworkBench>,
}

/// Runs the bench workload on every [`BENCH_NETWORKS`] entry.
///
/// # Panics
///
/// Panics if any two trials of the same network disagree on a
/// deterministic field — that would mean the simulator itself broke
/// determinism, which no bench number could be trusted over.
pub fn run_bench(config: &MacrochipConfig, options: &BenchOptions) -> BenchReport {
    run_bench_on(&FabricConfig::single(*config), options)
}

/// [`run_bench`] over a multi-chip fabric: the same pinned workload driven
/// across the whole board through [`networks::build_fabric`]. A one-chip
/// fabric is exactly the classic bench (same network objects, same
/// numbers); a larger board stresses the fabric event loop and board
/// links, and stamps its chip count into the report so [`compare`] can
/// warn when a diff crosses board sizes.
pub fn run_bench_on(fabric: &FabricConfig, options: &BenchOptions) -> BenchReport {
    assert!(options.trials >= 1, "bench needs at least one trial");
    let config = if fabric.is_single() {
        fabric.chip
    } else {
        fabric.global_config()
    };
    let config = &config;
    let sweep = SweepOptions {
        sim: options.sim,
        drain: options.drain,
        max_stalled: 5_000,
        seed: BENCH_SEED,
    };
    let mut networks_out = Vec::new();
    for kind in BENCH_NETWORKS {
        let load = bench_load(kind);
        let mut bench: Option<NetworkBench> = None;
        for trial in 0..options.trials {
            let net = networks::build_fabric(kind, fabric);
            let tracer = if options.trace {
                Tracer::new(RingSink::new(BENCH_TRACE_CAPACITY))
            } else {
                Tracer::disabled()
            };
            let started = Instant::now();
            let (point, net) =
                run_load_point_observed(net, Pattern::Uniform, load, config, sweep, tracer, |_| {});
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            let measured = NetworkBench {
                kind,
                offered_load: load,
                events: net.events_processed(),
                injected: net.stats().injected_packets(),
                delivered: net.stats().delivered_packets(),
                saturated: point.saturated,
                end_ns: options.sim.as_ns_f64() + options.drain.as_ns_f64(),
                wall_ms_trials: vec![wall_ms],
            };
            if options.progress {
                eprintln!(
                    "[bench] {}: trial {}/{}: {:.1} ms, {:.2}M ev/s",
                    kind.name(),
                    trial + 1,
                    options.trials,
                    wall_ms,
                    per_sec(measured.events, wall_ms) / 1e6,
                );
            }
            match &mut bench {
                None => bench = Some(measured),
                Some(prev) => {
                    assert_eq!(
                        (prev.events, prev.injected, prev.delivered, prev.saturated),
                        (
                            measured.events,
                            measured.injected,
                            measured.delivered,
                            measured.saturated
                        ),
                        "{} trial {} disagrees with trial 1 on deterministic fields",
                        kind.name(),
                        trial + 1
                    );
                    prev.wall_ms_trials.push(wall_ms);
                }
            }
        }
        networks_out.push(bench.expect("trials >= 1"));
    }
    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        commit: current_commit(),
        version: env!("CARGO_PKG_VERSION").to_string(),
        quick: *options == BenchOptions::quick(),
        trials: options.trials,
        seed: BENCH_SEED,
        sim_ns: options.sim.as_ns_f64(),
        drain_ns: options.drain.as_ns_f64(),
        sites: config.grid.sites(),
        chips: fabric.chips(),
        cores_per_site: config.cores_per_site,
        data_bytes: config.data_bytes,
        tracer: if options.trace { "ring" } else { "disabled" }.to_string(),
        max_regression: options.max_regression,
        peak_rss_bytes: prof::peak_rss_bytes(),
        networks: networks_out,
    }
}

/// The benched tree's commit: `$MACROCHIP_COMMIT` if set, else
/// `git rev-parse --short=12 HEAD`, else `"unknown"`.
fn current_commit() -> String {
    if let Ok(commit) = std::env::var("MACROCHIP_COMMIT") {
        if !commit.is_empty() {
            return commit;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

impl BenchReport {
    /// Serializes the report as the `BENCH_*.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\n  \"schema\": \"{BENCH_SCHEMA}\",");
        let _ = write!(out, "\n  \"schema_version\": {},", self.schema_version);
        let _ = write!(out, "\n  \"commit\": \"{}\",", json_escape(&self.commit));
        let _ = write!(out, "\n  \"version\": \"{}\",", json_escape(&self.version));
        let _ = write!(out, "\n  \"quick\": {},", self.quick);
        let _ = write!(out, "\n  \"trials\": {},", self.trials);
        let _ = write!(out, "\n  \"seed\": {},", self.seed);
        let _ = write!(out, "\n  \"sim_ns\": {},", json_f64(self.sim_ns));
        let _ = write!(out, "\n  \"drain_ns\": {},", json_f64(self.drain_ns));
        let _ = write!(out, "\n  \"sites\": {},", self.sites);
        let _ = write!(out, "\n  \"chips\": {},", self.chips);
        let _ = write!(out, "\n  \"cores_per_site\": {},", self.cores_per_site);
        let _ = write!(out, "\n  \"data_bytes\": {},", self.data_bytes);
        let _ = write!(out, "\n  \"tracer\": \"{}\",", json_escape(&self.tracer));
        let _ = write!(
            out,
            "\n  \"max_regression\": {},",
            json_f64(self.max_regression)
        );
        let _ = write!(out, "\n  \"peak_rss_bytes\": {},", self.peak_rss_bytes);
        out.push_str("\n  \"networks\": [");
        for (i, n) in self.networks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{");
            let _ = write!(
                out,
                "\n      \"network\": \"{}\",",
                json_escape(n.kind.name())
            );
            let _ = write!(
                out,
                "\n      \"offered_load\": {},",
                json_f64(n.offered_load)
            );
            let _ = write!(out, "\n      \"events\": {},", n.events);
            let _ = write!(out, "\n      \"injected\": {},", n.injected);
            let _ = write!(out, "\n      \"delivered\": {},", n.delivered);
            let _ = write!(out, "\n      \"saturated\": {},", n.saturated);
            let _ = write!(out, "\n      \"end_ns\": {},", json_f64(n.end_ns));
            let trials: Vec<String> = n
                .wall_ms_trials
                .iter()
                .map(|&w| json_f64(w).to_string())
                .collect();
            let _ = write!(out, "\n      \"wall_ms_trials\": [{}],", trials.join(", "));
            let _ = write!(
                out,
                "\n      \"wall_ms_median\": {},",
                json_f64(n.wall_ms_median())
            );
            let _ = write!(
                out,
                "\n      \"events_per_sec\": {},",
                json_f64(n.events_per_sec())
            );
            let _ = write!(
                out,
                "\n      \"packets_per_sec\": {}",
                json_f64(n.packets_per_sec())
            );
            let _ = write!(out, "\n    }}");
        }
        out.push_str("\n  ]\n}");
        out
    }

    /// Renders the human-readable summary table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "network", "load", "events", "wall(ms)", "ev/s", "pkt/s"
        );
        for n in &self.networks {
            let _ = writeln!(
                out,
                "{:<24} {:>7.0}% {:>12} {:>12.2} {:>12.0} {:>12.0}",
                n.kind.name(),
                n.offered_load * 100.0,
                n.events,
                n.wall_ms_median(),
                n.events_per_sec(),
                n.packets_per_sec(),
            );
        }
        out
    }

    /// Parses a previously written `BENCH_*.json` (only the fields
    /// [`compare`] needs: schema, version, and per-network deterministic
    /// + throughput figures).
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = json::parse(text)?;
        if doc.get("schema").and_then(json::Value::as_str) != Some(BENCH_SCHEMA) {
            return Err(format!("not a {BENCH_SCHEMA} document"));
        }
        let num = |k: &str| -> f64 { doc.get(k).and_then(json::Value::as_f64).unwrap_or(0.0) };
        let text_field = |k: &str| -> String {
            doc.get(k)
                .and_then(json::Value::as_str)
                .unwrap_or("unknown")
                .to_string()
        };
        let mut networks = Vec::new();
        if let Some(json::Value::Array(items)) = doc.get("networks") {
            for item in items {
                let name = item
                    .get("network")
                    .and_then(json::Value::as_str)
                    .ok_or("network entry without a name")?;
                let kind = NetworkKind::ALL
                    .into_iter()
                    .find(|k| k.name() == name)
                    .ok_or_else(|| format!("unknown network {name:?}"))?;
                let n = |k: &str| item.get(k).and_then(json::Value::as_f64).unwrap_or(0.0);
                let trials = match item.get("wall_ms_trials") {
                    Some(json::Value::Array(ws)) => {
                        ws.iter().filter_map(json::Value::as_f64).collect()
                    }
                    _ => Vec::new(),
                };
                networks.push(NetworkBench {
                    kind,
                    offered_load: n("offered_load"),
                    events: n("events") as u64,
                    injected: n("injected") as u64,
                    delivered: n("delivered") as u64,
                    saturated: item.get("saturated").and_then(json::Value::as_bool) == Some(true),
                    end_ns: n("end_ns"),
                    wall_ms_trials: trials,
                });
            }
        }
        let max_regression = doc
            .get("max_regression")
            .and_then(json::Value::as_f64)
            .unwrap_or(DEFAULT_MAX_REGRESSION);
        Ok(BenchReport {
            schema_version: num("schema_version") as u64,
            commit: text_field("commit"),
            version: text_field("version"),
            quick: doc.get("quick").and_then(json::Value::as_bool) == Some(true),
            trials: num("trials") as usize,
            seed: num("seed") as u64,
            sim_ns: num("sim_ns"),
            drain_ns: num("drain_ns"),
            sites: num("sites") as usize,
            // Baselines written before multi-chip fabrics have no "chips"
            // field; they benched exactly one chip.
            chips: doc
                .get("chips")
                .and_then(json::Value::as_f64)
                .map_or(1, |v| v as usize),
            cores_per_site: num("cores_per_site") as usize,
            data_bytes: num("data_bytes") as u32,
            tracer: text_field("tracer"),
            max_regression,
            peak_rss_bytes: num("peak_rss_bytes") as u64,
            networks,
        })
    }
}

/// The verdict of diffing a fresh bench against a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// One human-readable line per compared network.
    pub lines: Vec<String>,
    /// Networks whose events/sec regressed by more than the factor.
    pub regressions: Vec<String>,
    /// Cross-schema or cross-workload caveats.
    pub warnings: Vec<String>,
}

impl BenchComparison {
    /// True when no network regressed beyond the allowed factor.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Diffs `fresh` against `baseline`: a network regresses when its
/// events/sec falls below `baseline / factor` (factor 2.0 = "more than
/// 2x slower fails"). Networks absent from the baseline are skipped with
/// a warning, as are schema or workload mismatches. A board-size
/// mismatch (different `chips`) disarms the gate entirely: the ratios
/// are still printed for orientation, but a 2x2-fabric bench held to a
/// single-chip baseline (or vice versa) would fail on the workload
/// difference, not a regression, so it can only warn.
pub fn compare(fresh: &BenchReport, baseline: &BenchReport, factor: f64) -> BenchComparison {
    let mut out = BenchComparison {
        lines: Vec::new(),
        regressions: Vec::new(),
        warnings: Vec::new(),
    };
    let gate_armed = fresh.chips == baseline.chips;
    if fresh.schema_version != baseline.schema_version {
        out.warnings.push(format!(
            "schema_version differs: {} vs baseline {}",
            fresh.schema_version, baseline.schema_version
        ));
    }
    if fresh.chips != baseline.chips {
        out.warnings.push(format!(
            "board size differs: {} chip(s) vs baseline {}; ratios compare \
             different simulations",
            fresh.chips, baseline.chips
        ));
    }
    if (fresh.sim_ns, fresh.seed) != (baseline.sim_ns, baseline.seed) {
        out.warnings.push(
            "workload differs from baseline (sim window or seed); ratios are not like-for-like"
                .to_string(),
        );
    }
    for n in &fresh.networks {
        let Some(base) = baseline.networks.iter().find(|b| b.kind == n.kind) else {
            out.warnings
                .push(format!("{} missing from baseline, skipped", n.kind.name()));
            continue;
        };
        if n.events != base.events {
            out.warnings.push(format!(
                "{}: event count changed {} -> {} (different workload or simulator \
                 behavior; the ratio below compares throughput, not identical work)",
                n.kind.name(),
                base.events,
                n.events
            ));
        }
        let fresh_eps = n.events_per_sec();
        let base_eps = base.events_per_sec();
        let ratio = if base_eps > 0.0 {
            fresh_eps / base_eps
        } else {
            1.0
        };
        out.lines.push(format!(
            "{:<24} {:>12.0} ev/s vs {:>12.0} baseline ({:+.1}%)",
            n.kind.name(),
            fresh_eps,
            base_eps,
            (ratio - 1.0) * 100.0
        ));
        if gate_armed && base_eps > 0.0 && fresh_eps * factor < base_eps {
            out.regressions.push(format!(
                "{}: {:.0} ev/s is more than {factor}x below baseline {:.0} ev/s",
                n.kind.name(),
                fresh_eps,
                base_eps
            ));
        }
    }
    out
}

fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

fn per_sec(count: u64, wall_ms: f64) -> f64 {
    if wall_ms > 0.0 {
        count as f64 / (wall_ms / 1e3)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::trace::validate_json;

    fn tiny_options() -> BenchOptions {
        BenchOptions {
            trials: 3,
            sim: Span::from_ns(100),
            drain: Span::from_us(2),
            trace: false,
            progress: false,
            max_regression: DEFAULT_MAX_REGRESSION,
        }
    }

    #[test]
    fn bench_loads_stay_below_saturation_margins() {
        for kind in BENCH_NETWORKS {
            assert!(bench_load(kind) > 0.0 && bench_load(kind) < 1.0);
        }
    }

    #[test]
    fn bench_covers_figure6_plus_hierarchical() {
        assert_eq!(&BENCH_NETWORKS[..5], &NetworkKind::FIGURE6[..]);
        assert_eq!(BENCH_NETWORKS[5], NetworkKind::Hierarchical);
    }

    #[test]
    fn bench_runs_all_six_networks_and_round_trips_json() {
        let config = MacrochipConfig::scaled();
        let report = run_bench(&config, &tiny_options());
        assert_eq!(report.networks.len(), 6);
        for n in &report.networks {
            assert!(n.events > 0, "{} processed no events", n.kind.name());
            assert!(!n.saturated, "{} saturated at bench load", n.kind.name());
            assert_eq!(n.wall_ms_trials.len(), 3);
        }
        let json = report.to_json();
        validate_json(&json).expect("bench JSON must be well-formed");
        let parsed = BenchReport::from_json(&json).expect("round trip");
        assert_eq!(parsed.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(parsed.networks.len(), 6);
        for (a, b) in parsed.networks.iter().zip(&report.networks) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.events, b.events);
            assert_eq!(a.delivered, b.delivered);
        }
    }

    #[test]
    fn consecutive_runs_agree_on_non_timing_fields() {
        let config = MacrochipConfig::scaled();
        let a = run_bench(&config, &tiny_options());
        let b = run_bench(&config, &tiny_options());
        for (x, y) in a.networks.iter().zip(&b.networks) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.events, y.events, "{}", x.kind.name());
            assert_eq!(x.injected, y.injected);
            assert_eq!(x.delivered, y.delivered);
            assert_eq!(x.saturated, y.saturated);
            assert_eq!(x.end_ns, y.end_ns);
        }
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.sim_ns, b.sim_ns);
        assert_eq!(a.commit, b.commit);
    }

    #[test]
    fn compare_flags_large_regressions_only() {
        let config = MacrochipConfig::scaled();
        let baseline = run_bench(&config, &tiny_options());
        // Same run compared to itself: no regression.
        let same = compare(&baseline, &baseline, 2.0);
        assert!(same.passed(), "{:?}", same.regressions);
        assert_eq!(same.lines.len(), 6);

        // A 10x slowdown on one network must be flagged.
        let mut slow = baseline.clone();
        slow.networks[0].wall_ms_trials = baseline.networks[0]
            .wall_ms_trials
            .iter()
            .map(|w| w * 10.0)
            .collect();
        let diff = compare(&slow, &baseline, 2.0);
        assert!(!diff.passed());
        assert_eq!(diff.regressions.len(), 1);
        assert!(diff.regressions[0].contains(slow.networks[0].kind.name()));
    }

    #[test]
    fn compare_warns_on_workload_mismatch() {
        let config = MacrochipConfig::scaled();
        let baseline = run_bench(&config, &tiny_options());
        let mut other = baseline.clone();
        other.sim_ns += 1.0;
        other.networks[0].events += 7;
        let diff = compare(&other, &baseline, 2.0);
        assert!(diff.warnings.iter().any(|w| w.contains("workload differs")));
        assert!(diff
            .warnings
            .iter()
            .any(|w| w.contains("event count changed")));
    }

    #[test]
    fn median_handles_odd_even_and_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        assert!(BenchReport::from_json("{\"schema\": \"other\"}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
    }

    /// Loads one of the repo's checked-in baselines (written before either
    /// the hierarchical network or multi-chip fabrics existed).
    fn repo_baseline(name: &str) -> BenchReport {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../bench")
            .join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        BenchReport::from_json(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
    }

    #[test]
    fn against_pre_fabric_baselines_gates_only_shared_networks() {
        // The `bench --against` regression: a baseline predating newer
        // networks (both checked-in files carry only the five Figure 6
        // architectures) must neither panic nor mis-gate. The candidate's
        // sixth network warn-skips; the five shared ones still compare.
        let config = MacrochipConfig::scaled();
        let fresh = run_bench(&config, &tiny_options());
        assert_eq!(fresh.networks.len(), 6);
        let newest = fresh.networks[5].kind.name();
        for name in ["BENCH_seed.json", "BENCH_1.json"] {
            let baseline = repo_baseline(name);
            assert_eq!(baseline.networks.len(), 5, "{name}");
            assert_eq!(baseline.chips, 1, "{name}: pre-fabric baseline is one chip");
            // An enormous allowance isolates the structural behavior from
            // host speed; the real gate is exercised elsewhere.
            let diff = compare(&fresh, &baseline, 1e9);
            assert_eq!(diff.lines.len(), 5, "{name}: shared networks compared");
            assert!(
                diff.warnings
                    .iter()
                    .any(|w| w.contains(newest) && w.contains("missing from baseline")),
                "{name}: candidate-only network must warn-skip, got {:?}",
                diff.warnings
            );
            assert!(diff.passed(), "{name}: {:?}", diff.regressions);
        }
    }

    #[test]
    fn multi_chip_bench_stamps_chips_and_round_trips() {
        let fabric = FabricConfig::grid(2, MacrochipConfig::with_side(4));
        let options = BenchOptions {
            trials: 1,
            ..tiny_options()
        };
        let report = run_bench_on(&fabric, &options);
        assert_eq!(report.chips, 4);
        assert_eq!(report.sites, 64);
        for n in &report.networks {
            assert!(n.delivered > 0, "{} delivered nothing", n.kind.name());
        }
        let parsed = BenchReport::from_json(&report.to_json()).expect("round trip");
        assert_eq!(parsed.chips, 4);

        // Diffing across board sizes is allowed but must say so — and
        // must never gate: even a baseline claiming absurd throughput
        // cannot fail a fresh report simulating a different board.
        let mut single = report.clone();
        single.chips = 1;
        for n in &mut single.networks {
            n.wall_ms_trials = vec![1e-9];
        }
        let diff = compare(&report, &single, 2.0);
        assert!(
            diff.warnings.iter().any(|w| w.contains("board size")),
            "{:?}",
            diff.warnings
        );
        assert!(
            diff.passed(),
            "cross-board-size comparison must warn, not gate: {:?}",
            diff.regressions
        );
    }
}
