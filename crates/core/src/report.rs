//! Plain-text, markdown and CSV table rendering for the regeneration
//! binaries.

use std::fmt::Write as _;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use macrochip::report::Table;
///
/// let mut t = Table::new(&["Network", "Laser (W)"]);
/// t.row(&["Point-to-Point", "8.2"]);
/// let text = t.to_text();
/// assert!(text.contains("Point-to-Point"));
/// assert_eq!(t.to_csv().lines().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if no headers are given.
    pub fn new(header: &[&str]) -> Table {
        assert!(!header.is_empty(), "a table needs at least one column");
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: &[&str]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Column-aligned plain text.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| -> String {
            cells
                .iter()
                .zip(w)
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &w));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(w.iter().sum::<usize>() + 2 * (w.len() - 1))
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &w));
        }
        out
    }

    /// GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// RFC-4180-ish CSV (quotes cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let escape = |c: &String| -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header.iter().map(escape).collect::<Vec<_>>().join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(escape).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with `digits` decimal places (helper for binaries).
pub fn fmt(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

// Shared result-table renderers.
//
// The direct CLI subcommands and the serve client (`macrochip submit
// --wait`) both print campaign results; routing them through one set of
// builders is what makes "served output is byte-identical to the direct
// run" checkable with `cmp` rather than a judgement call.

/// The `sweep` result table (header only; fill with [`sweep_row`]).
pub fn sweep_table() -> Table {
    Table::new(&[
        "Network",
        "Load (%)",
        "Mean latency (ns)",
        "p99 (ns)",
        "Saturated",
    ])
}

/// One sweep result row.
pub fn sweep_row(table: &mut Table, kind: netcore::NetworkKind, p: &crate::sweep::LoadPoint) {
    table.row_owned(vec![
        kind.name().to_string(),
        fmt(p.offered * 100.0, 1),
        fmt(p.mean_latency_ns, 2),
        fmt(p.p99_latency_ns, 2),
        p.saturated.to_string(),
    ]);
}

/// The `faults` result table (header only; fill with [`fault_row`]).
pub fn fault_table() -> Table {
    Table::new(&[
        "Network",
        "Delivered",
        "Dropped",
        "Retries",
        "Availability",
        "Goodput (B/ns)",
        "Degraded (us)",
    ])
}

/// One fault-campaign result row.
pub fn fault_row(table: &mut Table, kind: netcore::NetworkKind, f: &crate::campaign::FaultSummary) {
    table.row_owned(vec![
        kind.name().to_string(),
        f.clean_delivered.to_string(),
        f.lost.to_string(),
        f.retries.to_string(),
        fmt(f.availability, 4),
        fmt(f.goodput_bytes_per_ns(), 2),
        fmt(f.degraded_ns / 1e3, 2),
    ]);
}

/// The `replay` result table (header only; fill with [`replay_row`]).
pub fn replay_table() -> Table {
    Table::new(&[
        "Network",
        "Delivered",
        "Delivery (%)",
        "Mean latency (ns)",
        "p99 (ns)",
        "Saturated",
    ])
}

/// One replay result row.
pub fn replay_row(
    table: &mut Table,
    kind: netcore::NetworkKind,
    r: &crate::replay_run::ReplaySummary,
) {
    table.row_owned(vec![
        kind.name().to_string(),
        r.delivered.to_string(),
        fmt(r.delivery_ratio() * 100.0, 1),
        fmt(r.mean_latency_ns, 2),
        fmt(r.p99_latency_ns, 2),
        r.saturated.to_string(),
    ]);
}

/// The `coherent` result table (header only; fill with [`coherent_row`]).
pub fn coherent_table() -> Table {
    Table::new(&["Network", "Makespan (us)", "Op latency (ns)", "EDP (nJ.s)"])
}

/// One coherent-workload result row.
pub fn coherent_row(
    table: &mut Table,
    model: &crate::energy::NetworkEnergyModel,
    run: &crate::experiment::CoherentRun,
) {
    table.row_owned(vec![
        run.network.name().to_string(),
        fmt(run.makespan.as_ns_f64() / 1e3, 2),
        fmt(run.mean_op_latency.as_ns_f64(), 1),
        format!("{:.3e}", model.edp(run) * 1e9),
    ]);
}

/// Renders an n×n grid of per-site values as an ASCII heatmap with a
/// min/max legend. Values are normalized across the grid; darker glyphs
/// mean larger values.
///
/// # Example
///
/// ```
/// use macrochip::report::heatmap;
/// let values: Vec<f64> = (0..64).map(|i| i as f64).collect();
/// let map = heatmap(8, &values);
/// assert_eq!(map.lines().count(), 9); // 8 rows + legend
/// ```
///
/// # Panics
///
/// Panics if `values.len() != side * side` or the grid is empty.
pub fn heatmap(side: usize, values: &[f64]) -> String {
    assert!(side > 0, "empty grid");
    assert_eq!(values.len(), side * side, "value count mismatch");
    const SHADES: &[u8] = b" .:-=+*#%@";
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for y in 0..side {
        for x in 0..side {
            let v = values[y * side + x];
            let idx = (((v - lo) / span) * (SHADES.len() - 1) as f64).round() as usize;
            let c = SHADES[idx.min(SHADES.len() - 1)] as char;
            out.push(c);
            out.push(c); // double width: terminal cells are ~2:1
        }
        out.push('\n');
    }
    let _ = writeln!(out, "[' '={lo:.1} .. '@'={hi:.1}]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1", "hello"]).row(&["22", "x"]);
        t
    }

    #[test]
    fn text_is_aligned() {
        let text = sample().to_text();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[2].starts_with("1 "));
    }

    #[test]
    fn markdown_has_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 22 | x |"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(&["x"]);
        t.row(&["a,b"]).row(&["say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn heatmap_shape_and_extremes() {
        let mut v = vec![1.0; 16];
        v[0] = 0.0;
        v[15] = 10.0;
        let map = heatmap(4, &v);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("  "), "min renders as blank");
        assert!(lines[3].ends_with("@@"), "max renders as @");
        assert!(lines[4].contains("0.0") && lines[4].contains("10.0"));
    }

    #[test]
    fn heatmap_of_constant_values_does_not_panic() {
        let map = heatmap(2, &[3.0; 4]);
        assert_eq!(map.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "value count mismatch")]
    fn heatmap_checks_dimensions() {
        let _ = heatmap(3, &[0.0; 4]);
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(2.71911, 2), "2.72");
        assert_eq!(fmt(10.0, 0), "10");
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new(&["a"]).is_empty());
        assert_eq!(sample().len(), 2);
    }
}
