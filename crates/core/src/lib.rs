//! # macrochip — a silicon-photonic multi-chip network simulator
//!
//! A full reproduction of *"Silicon-Photonic Network Architectures for
//! Scalable, Power-Efficient Multi-Chip Systems"* (Koka et al., ISCA
//! 2010): the macrochip platform, its five inter-site photonic network
//! architectures, the MOESI coherence traffic that drives them, and the
//! power/complexity models behind the paper's tables.
//!
//! This crate is the facade. It ties the substrates together:
//!
//! * [`runner`] — the event loop driving any [`netcore::Network`] from
//!   any [`netcore::PacketSource`], with injection backpressure;
//! * [`audit_run`] — invariant-audited runs and the cross-network
//!   differential oracle behind the `--audit` flag;
//! * [`campaign`] — the parallel campaign engine: deterministic sharded
//!   execution of independent simulation points across a work-stealing
//!   thread pool, with a content-addressed result cache;
//! * [`sweep`] — open-loop latency-vs-offered-load sweeps (Figure 6) and
//!   saturation detection;
//! * [`experiment`] — closed-loop coherent runs over application and
//!   synthetic workloads (Figures 7 and 8);
//! * [`energy`] — laser/tuning/transceiver/router energy accounting and
//!   energy-delay products (Table 5, Figures 9 and 10);
//! * [`report`] — plain-text/markdown/CSV table rendering for the
//!   regeneration binaries;
//! * [`manifest`] — run provenance (config, seed, limits, outcome,
//!   version) emitted alongside exported metrics;
//! * [`replay_run`] — trace-driven experiments: capture any run into a
//!   `.mtrc` trace and play it back through any network, bare or under a
//!   fault plan (the §5 trace-driven comparison methodology);
//! * [`bench`] — the standing host-performance baseline behind
//!   `macrochip bench`: fixed-seed workloads on all five networks,
//!   median-of-trials wall-clock and events/sec, schema-versioned
//!   `BENCH_*.json` with regression comparison;
//! * [`progress`] — live `--progress` status lines streamed from the
//!   always-on [`desim::prof`] host counters.
//!
//! ## Quickstart
//!
//! ```
//! use macrochip::prelude::*;
//!
//! // Run a small uniform-random load point on the point-to-point network.
//! let config = MacrochipConfig::scaled();
//! let point = macrochip::sweep::run_load_point(
//!     NetworkKind::PointToPoint,
//!     Pattern::Uniform,
//!     0.10,               // 10% of the 320 B/ns per-site peak
//!     &config,
//!     SweepOptions { sim: desim::Span::from_us(2), ..SweepOptions::default() },
//! );
//! assert!(!point.saturated);
//! assert!(point.mean_latency_ns < 30.0);
//! ```

pub mod audit_run;
pub mod bench;
pub mod campaign;
pub mod energy;
pub mod experiment;
pub mod json;
pub mod manifest;
pub mod names;
pub mod progress;
pub mod replay_run;
pub mod report;
pub mod runner;
pub mod sweep;

/// One-stop imports for examples and binaries.
pub mod prelude {
    pub use crate::audit_run::{
        differential_replay, run_load_point_audited, run_replay_audited, DifferentialReport,
    };
    pub use crate::bench::{run_bench, run_bench_on, BenchOptions, BenchReport};
    pub use crate::campaign::{
        run_indexed, Campaign, CampaignOutcome, CampaignPoint, FaultSummary, PointResult,
        ResultCache,
    };
    pub use crate::energy::{EnergyBreakdown, NetworkEnergyModel};
    pub use crate::experiment::{run_coherent, CoherentRun, WorkloadSpec};
    pub use crate::manifest::RunManifest;
    pub use crate::progress::ProgressReporter;
    pub use crate::replay_run::{
        drive_replay, run_replay, run_replay_faulted, ReplayOptions, ReplaySummary,
    };
    pub use crate::report::Table;
    pub use crate::runner::{drive, drive_observed, drive_traced, DriveLimits, RunOutcome};
    pub use crate::sweep::{
        run_load_point, run_load_point_traced, sustained_bandwidth, LoadPoint, SweepOptions,
    };
    pub use netcore::{MacrochipConfig, Network, NetworkKind};
    pub use workloads::{AppProfile, Pattern, SharingMix};
}
