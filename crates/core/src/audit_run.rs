//! Audited run harnesses: every entry point here wires a
//! [`netcore::Auditor`] into the flight-recorder stream of a run and
//! returns the reconciled [`AuditReport`] alongside the run's normal
//! result — the `--audit` flag's engine room.
//!
//! The [`differential_replay`] oracle is the strongest check: it replays
//! one captured `.mtrc` trace through **all five** network architectures
//! under audit and asserts that every network conserved the *same*
//! injected packet set — a bug that silently drops or duplicates packets
//! in one architecture cannot hide behind that architecture's own
//! (equally buggy) counters.

use crate::replay_run::{run_replay, run_replay_faulted, ReplayOptions, ReplaySummary};
use crate::sweep::{run_load_point_traced, LoadPoint, SweepOptions};
use desim::{Span, Time, Tracer};
use faults::FaultPlan;
use netcore::audit::{AuditReport, Auditor};
use netcore::{MacrochipConfig, Network, NetworkKind};
use replay::TraceError;
use std::cell::RefCell;
use std::path::Path;
use std::rc::Rc;
use workloads::Pattern;

/// A shared auditor handle ready to be installed as a [`Tracer`] sink.
pub fn shared_auditor(kind: NetworkKind, config: &MacrochipConfig) -> Rc<RefCell<Auditor>> {
    Rc::new(RefCell::new(Auditor::new(kind, config)))
}

/// [`crate::sweep::run_load_point`] under the invariant auditor.
pub fn run_load_point_audited(
    kind: NetworkKind,
    pattern: Pattern,
    offered: f64,
    config: &MacrochipConfig,
    options: SweepOptions,
) -> (LoadPoint, AuditReport) {
    let auditor = shared_auditor(kind, config);
    let (point, net) = run_load_point_traced(
        networks::build(kind, *config),
        pattern,
        offered,
        config,
        options,
        Tracer::shared(&auditor),
    );
    let end = Time::ZERO + options.sim + options.drain;
    if net.next_event().is_none() {
        auditor.borrow_mut().check_slab_idle(net.slab_stats(), end);
    }
    let report = auditor.borrow_mut().finalize(net.stats(), 0, end);
    (point, report)
}

/// [`run_replay`] under the invariant auditor.
pub fn run_replay_audited(
    kind: NetworkKind,
    path: &Path,
    config: &MacrochipConfig,
    options: ReplayOptions,
) -> Result<(ReplaySummary, AuditReport), TraceError> {
    let auditor = shared_auditor(kind, config);
    let (summary, net) = run_replay(kind, path, config, options, Tracer::shared(&auditor))?;
    let end = Time::ZERO + Span::from_ns_f64(summary.end_ns);
    if net.next_event().is_none() {
        auditor.borrow_mut().check_slab_idle(net.slab_stats(), end);
    }
    let report = auditor.borrow_mut().finalize(net.stats(), 0, end);
    Ok((summary, report))
}

/// [`run_replay_faulted`] under the invariant auditor. The fault
/// wrapper's permanent-drop counter reconciles against the wrapper-reason
/// drop events, so a faulted packet that simply vanished (accounted
/// nowhere) is flagged.
pub fn run_replay_faulted_audited(
    kind: NetworkKind,
    path: &Path,
    config: &MacrochipConfig,
    plan: &FaultPlan,
    seed: u64,
    options: ReplayOptions,
) -> Result<(ReplaySummary, AuditReport), TraceError> {
    let auditor = shared_auditor(kind, config);
    let (summary, net) = run_replay_faulted(
        kind,
        path,
        config,
        plan,
        seed,
        options,
        Tracer::shared(&auditor),
    )?;
    let end = Time::ZERO + Span::from_ns_f64(summary.end_ns);
    if net.next_event().is_none() {
        auditor.borrow_mut().check_slab_idle(net.slab_stats(), end);
    }
    let report = auditor
        .borrow_mut()
        .finalize(net.stats(), net.fault_stats().dropped, end);
    Ok((summary, report))
}

/// One network's leg of the differential oracle.
#[derive(Debug, Clone)]
pub struct DifferentialRun {
    pub kind: NetworkKind,
    pub summary: ReplaySummary,
    pub report: AuditReport,
    /// Order-independent digest of the injected packet-id set:
    /// `(count, xor-folded id hash)`.
    pub injected: (u64, u64),
}

/// The cross-network differential oracle's verdict.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    pub runs: Vec<DifferentialRun>,
}

impl DifferentialReport {
    /// True when every network saw the identical injected packet set.
    pub fn conserved(&self) -> bool {
        let mut digests = self.runs.iter().map(|r| r.injected);
        match digests.next() {
            Some(first) => digests.all(|d| d == first),
            None => true,
        }
    }

    /// True when every per-network audit came back violation-free.
    pub fn clean(&self) -> bool {
        self.runs.iter().all(|r| r.report.is_clean())
    }

    /// Total violations across all legs.
    pub fn total_violations(&self) -> u64 {
        self.runs.iter().map(|r| r.report.total_violations).sum()
    }
}

/// Replays the `.mtrc` trace at `path` through all five architectures
/// under audit. Every leg gets a fresh network and a fresh auditor; the
/// caller asserts [`DifferentialReport::conserved`] and
/// [`DifferentialReport::clean`].
pub fn differential_replay(
    path: &Path,
    config: &MacrochipConfig,
    options: ReplayOptions,
) -> Result<DifferentialReport, TraceError> {
    let mut runs = Vec::with_capacity(NetworkKind::FIGURE6.len());
    for kind in NetworkKind::FIGURE6 {
        let auditor = shared_auditor(kind, config);
        let (summary, net) = run_replay(kind, path, config, options, Tracer::shared(&auditor))?;
        let end = Time::ZERO + Span::from_ns_f64(summary.end_ns);
        if net.next_event().is_none() {
            auditor.borrow_mut().check_slab_idle(net.slab_stats(), end);
        }
        let injected = auditor.borrow().injected_set_digest();
        let report = auditor.borrow_mut().finalize(net.stats(), 0, end);
        runs.push(DifferentialRun {
            kind,
            summary,
            report,
            injected,
        });
    }
    Ok(DifferentialReport { runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_load_point_observed;
    use desim::trace::{TeeSink, TraceEvent, TraceSink};
    use replay::{TraceMeta, TraceWriter};
    use std::io::Cursor;

    fn config() -> MacrochipConfig {
        MacrochipConfig::scaled()
    }

    fn fast_options() -> SweepOptions {
        SweepOptions {
            sim: Span::from_us(1),
            drain: Span::from_us(10),
            max_stalled: 10_000,
            seed: 3,
        }
    }

    #[test]
    fn all_five_networks_audit_clean_at_low_load() {
        for kind in NetworkKind::FIGURE6 {
            let (point, report) =
                run_load_point_audited(kind, Pattern::Uniform, 0.02, &config(), fast_options());
            assert!(!point.saturated, "{kind} saturated at 2% load");
            assert!(
                report.is_clean(),
                "{kind} violations: {:?}",
                report.violation_lines()
            );
            assert!(report.conservation_holds(), "{kind}");
            assert!(report.packets_tracked > 0, "{kind} audited nothing");
        }
    }

    #[test]
    fn audits_stay_clean_at_saturation() {
        // Uniform traffic at full peak saturates every architecture; the
        // audit must still reconcile (packets stalled in the driver's
        // queue were never injected, so they are not in the audited set).
        for kind in NetworkKind::FIGURE6 {
            let options = SweepOptions {
                sim: Span::from_us(1),
                drain: Span::from_us(2),
                max_stalled: 500,
                seed: 5,
            };
            let (_, report) =
                run_load_point_audited(kind, Pattern::Uniform, 1.0, &config(), options);
            assert!(
                report.is_clean(),
                "{kind} violations at saturation: {:?}",
                report.violation_lines()
            );
        }
    }

    /// The acceptance canary: an intentionally forged duplicate-delivery
    /// event must be caught and reported with packet id, site, and time.
    #[test]
    fn a_forged_duplicate_delivery_is_caught_with_full_context() {
        let kind = NetworkKind::PointToPoint;
        let cfg = config();
        let auditor = shared_auditor(kind, &cfg);
        let saboteur = Rc::new(RefCell::new(ForgeOnDeliver {
            auditor: Rc::clone(&auditor),
            forged: None,
        }));
        let mut tee = TeeSink::new();
        tee.add(&saboteur);
        let tee = Rc::new(RefCell::new(tee));
        let (_, net) = run_load_point_traced(
            networks::build(kind, cfg),
            Pattern::Uniform,
            0.02,
            &cfg,
            fast_options(),
            Tracer::shared(&tee),
        );
        let forged = saboteur.borrow().forged.expect("a delivery was forged");
        let report = auditor
            .borrow_mut()
            .finalize(net.stats(), 0, Time::from_us(11));
        assert!(!report.is_clean());
        let v = report
            .violations
            .iter()
            .find(|v| v.check == "conservation.double-deliver")
            .expect("forged duplicate flagged");
        assert_eq!(v.packet, Some(forged.0));
        assert_eq!(v.site, Some(forged.1));
        assert_eq!(v.at, forged.2);

        // The saboteur forwards everything and re-records the first
        // delivery a second time — the accounting bug every conservation
        // check exists to catch.
        struct ForgeOnDeliver {
            auditor: Rc<RefCell<Auditor>>,
            forged: Option<(u64, usize, Time)>,
        }
        impl TraceSink for ForgeOnDeliver {
            fn record(&mut self, at: Time, event: TraceEvent) {
                self.auditor.borrow_mut().record(at, event);
                if self.forged.is_none() {
                    if let TraceEvent::Deliver { packet, dst, .. } = event {
                        self.auditor.borrow_mut().record(at, event);
                        self.forged = Some((packet, dst, at));
                    }
                }
            }
        }
    }

    fn capture_trace(kind: NetworkKind, load: f64) -> Vec<u8> {
        let cfg = config();
        let meta = TraceMeta {
            grid_side: cfg.grid.side() as u16,
            seed: 3,
            description: "differential oracle capture".into(),
        };
        let mut writer = Some(TraceWriter::create(Cursor::new(Vec::new()), &meta).expect("writer"));
        run_load_point_observed(
            networks::build(kind, cfg),
            Pattern::Uniform,
            load,
            &cfg,
            fast_options(),
            Tracer::disabled(),
            |p| {
                writer.as_mut().expect("live").record(p).expect("record");
            },
        );
        writer
            .take()
            .expect("writer")
            .finish()
            .expect("finish")
            .0
            .into_inner()
    }

    #[test]
    fn differential_oracle_agrees_across_all_five_networks() {
        let bytes = capture_trace(NetworkKind::PointToPoint, 0.01);
        let dir = std::env::temp_dir().join(format!("mtrc-diff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("light.mtrc");
        std::fs::write(&path, &bytes).expect("trace written");
        let report =
            differential_replay(&path, &config(), ReplayOptions::default()).expect("replayable");
        std::fs::remove_file(&path).ok();
        assert_eq!(report.runs.len(), 5);
        assert!(
            report.clean(),
            "violations: {:?}",
            report
                .runs
                .iter()
                .flat_map(|r| r.report.violation_lines())
                .collect::<Vec<_>>()
        );
        assert!(report.conserved(), "networks disagree on the injected set");
        let first = report.runs[0].injected;
        assert!(first.0 > 0, "oracle audited an empty trace");
    }
}
