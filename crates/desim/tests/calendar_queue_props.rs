//! Property tests proving the calendar queue equivalent to the reference
//! `BinaryHeap` backend, pop for pop, under arbitrary push/pop
//! interleavings — including FIFO order among equal timestamps and the
//! `popped()`/`len()` counters.

use desim::{Backend, EventQueue, Time};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
    PopDue(u64),
    PeekTime,
}

/// Clustered timestamps: the shape real simulations produce — small
/// positive deltas around a slowly advancing clock.
fn clustered_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..200_000).prop_map(Op::Push),
            (0u64..200_000).prop_map(Op::Push),
            (0u64..200_000).prop_map(Op::Push),
            (0u64..200_000).prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Pop),
            (0u64..200_000).prop_map(Op::PopDue),
            Just(Op::PeekTime),
        ],
        0..400,
    )
}

/// Pathological: every timestamp lands in the same calendar bucket, so
/// ordering is decided purely by the in-bucket (time, seq) scan.
fn same_bucket_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..4_096).prop_map(Op::Push),
            (0u64..4_096).prop_map(Op::Push),
            (0u64..4_096).prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Pop),
        ],
        0..400,
    )
}

/// Pathological: maximum spread — timestamps across many calendar years,
/// exercising the overflow list, year advance, and past-time rebuilds.
fn max_spread_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..u64::MAX / 2).prop_map(Op::Push),
            (0u64..u64::MAX / 2).prop_map(Op::Push),
            (0u64..u64::MAX / 2).prop_map(Op::Push),
            (0u64..u64::MAX / 2).prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Pop),
            (0u64..u64::MAX / 2).prop_map(Op::PopDue),
        ],
        0..400,
    )
}

/// One calendar "year" in picoseconds: the queue's 8192 buckets × 32 ps
/// width. Events scheduled past `base + YEAR` sit in the overflow list
/// until the calendar advances into their year.
const YEAR_PS: u64 = 8192 << 5;

/// Operations for the year-advance differential, phrased relative to an
/// advancing simulation clock rather than absolute times.
#[derive(Debug, Clone)]
enum YearOp {
    /// Schedule within the current year of the clock.
    PushNear(u64),
    /// Schedule `years` (1..=4) calendar years past the clock — lands in
    /// the overflow list until the calendar advances that far.
    PushFar { years: u32, offset: u64 },
    /// Advance the clock without popping (later pop_dues see a jump).
    Advance(u64),
    /// Pop one event due at the current clock.
    PopDue,
    /// Unconditional pop.
    Pop,
}

/// A starting clock anywhere in the first four years plus an op mix that
/// keeps the overflow list busy while the clock sweeps forward.
fn year_boundary_ops() -> impl Strategy<Value = (u64, Vec<YearOp>)> {
    let op = prop_oneof![
        (0u64..YEAR_PS).prop_map(YearOp::PushNear),
        (0u64..YEAR_PS).prop_map(YearOp::PushNear),
        (1u32..5, 0u64..YEAR_PS).prop_map(|(years, offset)| YearOp::PushFar { years, offset }),
        (1u64..2 * YEAR_PS).prop_map(YearOp::Advance),
        Just(YearOp::PopDue),
        Just(YearOp::PopDue),
        Just(YearOp::Pop),
    ];
    (0u64..4 * YEAR_PS, proptest::collection::vec(op, 20..200))
}

/// The year-advance regression (far-future schedules): a simulation
/// clock that starts at an arbitrary point and crosses several
/// calendar years, with pushes landing both inside the current year
/// and one-to-four years ahead (the overflow list), must pop
/// identically to the reference heap at every step — and must keep
/// doing so across the deterministic tail below, which forces at
/// least three more year boundaries with overflow still populated.
fn run_year_differential(start: u64, ops: &[YearOp]) {
    let mut calendar: EventQueue<u32> = EventQueue::with_backend(Backend::Calendar);
    let mut heap: EventQueue<u32> = EventQueue::with_backend(Backend::Heap);
    let mut now = start;
    let mut payload = 0u32;
    for (step, op) in ops.iter().enumerate() {
        match op {
            YearOp::PushNear(d) => {
                let t = Time::from_ps(now + d);
                calendar.push(t, payload);
                heap.push(t, payload);
                payload += 1;
            }
            YearOp::PushFar { years, offset } => {
                let t = Time::from_ps(now + u64::from(*years) * YEAR_PS + offset);
                calendar.push(t, payload);
                heap.push(t, payload);
                payload += 1;
            }
            YearOp::Advance(d) => now += d,
            YearOp::PopDue => {
                assert_eq!(
                    calendar.pop_due(Time::from_ps(now)),
                    heap.pop_due(Time::from_ps(now)),
                    "pop_due diverged at step {} (now {} ps, year {})",
                    step,
                    now,
                    now / YEAR_PS
                );
            }
            YearOp::Pop => {
                assert_eq!(calendar.pop(), heap.pop(), "pop diverged at step {}", step);
            }
        }
        assert_eq!(calendar.len(), heap.len(), "len diverged at step {}", step);
        assert_eq!(calendar.peek_time(), heap.peek_time());
    }
    // Deterministic tail: march the clock across four more year
    // boundaries, each year re-seeding one near and one far event, and
    // drain everything due — the lazy overflow redistribution runs at
    // least three times no matter what the generator produced.
    let tail_years = 4;
    for _ in 0..tail_years {
        let near = Time::from_ps(now + 7);
        let far = Time::from_ps(now + 2 * YEAR_PS + 13);
        calendar.push(near, payload);
        heap.push(near, payload);
        calendar.push(far, payload + 1);
        heap.push(far, payload + 1);
        payload += 2;
        now += YEAR_PS;
        loop {
            let (c, h) = (
                calendar.pop_due(Time::from_ps(now)),
                heap.pop_due(Time::from_ps(now)),
            );
            assert_eq!(c, h, "tail pop_due diverged at year {}", now / YEAR_PS);
            if c.is_none() {
                break;
            }
        }
    }
    assert!(
        now / YEAR_PS >= start / YEAR_PS + 3,
        "harness must cross at least three year boundaries"
    );
    loop {
        let (c, h) = (calendar.pop(), heap.pop());
        assert_eq!(c, h, "final drain diverged");
        if c.is_none() {
            break;
        }
    }
    assert_eq!(calendar.popped(), heap.popped());
    assert_eq!(calendar.last_popped(), heap.last_popped());
}

fn run_differential(ops: &[Op]) {
    let mut calendar: EventQueue<u32> = EventQueue::with_backend(Backend::Calendar);
    let mut heap: EventQueue<u32> = EventQueue::with_backend(Backend::Heap);
    let mut payload = 0u32;
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Push(ps) => {
                calendar.push(Time::from_ps(*ps), payload);
                heap.push(Time::from_ps(*ps), payload);
                payload += 1;
            }
            Op::Pop => {
                assert_eq!(calendar.pop(), heap.pop(), "pop diverged at step {step}");
            }
            Op::PopDue(now) => {
                assert_eq!(
                    calendar.pop_due(Time::from_ps(*now)),
                    heap.pop_due(Time::from_ps(*now)),
                    "pop_due diverged at step {step}"
                );
            }
            Op::PeekTime => {
                assert_eq!(
                    calendar.peek_time(),
                    heap.peek_time(),
                    "peek_time diverged at step {step}"
                );
            }
        }
        assert_eq!(calendar.len(), heap.len(), "len diverged at step {step}");
        assert_eq!(
            calendar.popped(),
            heap.popped(),
            "popped diverged at step {step}"
        );
        assert_eq!(calendar.is_empty(), heap.is_empty());
    }
    // Drain both to the end: the full residual order must agree too.
    loop {
        let (c, h) = (calendar.pop(), heap.pop());
        assert_eq!(c, h, "drain diverged");
        if c.is_none() {
            break;
        }
    }
    assert_eq!(calendar.popped(), heap.popped());
    assert_eq!(calendar.last_popped(), heap.last_popped());
}

proptest! {
    #[test]
    fn clustered_interleavings_match_heap(ops in clustered_ops()) {
        run_differential(&ops);
    }

    #[test]
    fn same_bucket_interleavings_match_heap(ops in same_bucket_ops()) {
        run_differential(&ops);
    }

    #[test]
    fn max_spread_interleavings_match_heap(ops in max_spread_ops()) {
        run_differential(&ops);
    }

    /// The year-advance regression (far-future schedules): a simulation
    /// clock that starts at an arbitrary point and crosses several
    /// calendar years, with pushes landing both inside the current year
    /// and one-to-four years ahead (the overflow list), must pop
    /// identically to the reference heap at every step. The body lives in
    /// [`run_year_differential`]; a shrunk failure reprints its inputs.
    #[test]
    fn year_advances_with_overflow_match_heap(case in year_boundary_ops()) {
        let (start, ops) = case;
        run_year_differential(start, &ops);
    }
}

proptest! {
    /// Equal-timestamp pushes must drain in insertion order regardless of
    /// how many distinct timestamps interleave between them.
    #[test]
    fn fifo_among_equal_times(times in proptest::collection::vec(0u64..64, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::with_backend(Backend::Calendar);
        // Map each op into one of 64 shared timestamps so collisions are dense.
        for (i, t) in times.iter().enumerate() {
            q.push(Time::from_ps(*t * 4_096), i);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li),
                    "FIFO violated: ({lt:?},{li}) then ({t:?},{i})");
            }
            last = Some((t, i));
        }
    }
}
