//! Property tests proving the calendar queue equivalent to the reference
//! `BinaryHeap` backend, pop for pop, under arbitrary push/pop
//! interleavings — including FIFO order among equal timestamps and the
//! `popped()`/`len()` counters.

use desim::{Backend, EventQueue, Time};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
    PopDue(u64),
    PeekTime,
}

/// Clustered timestamps: the shape real simulations produce — small
/// positive deltas around a slowly advancing clock.
fn clustered_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..200_000).prop_map(Op::Push),
            (0u64..200_000).prop_map(Op::Push),
            (0u64..200_000).prop_map(Op::Push),
            (0u64..200_000).prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Pop),
            (0u64..200_000).prop_map(Op::PopDue),
            Just(Op::PeekTime),
        ],
        0..400,
    )
}

/// Pathological: every timestamp lands in the same calendar bucket, so
/// ordering is decided purely by the in-bucket (time, seq) scan.
fn same_bucket_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..4_096).prop_map(Op::Push),
            (0u64..4_096).prop_map(Op::Push),
            (0u64..4_096).prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Pop),
        ],
        0..400,
    )
}

/// Pathological: maximum spread — timestamps across many calendar years,
/// exercising the overflow list, year advance, and past-time rebuilds.
fn max_spread_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..u64::MAX / 2).prop_map(Op::Push),
            (0u64..u64::MAX / 2).prop_map(Op::Push),
            (0u64..u64::MAX / 2).prop_map(Op::Push),
            (0u64..u64::MAX / 2).prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Pop),
            (0u64..u64::MAX / 2).prop_map(Op::PopDue),
        ],
        0..400,
    )
}

fn run_differential(ops: &[Op]) {
    let mut calendar: EventQueue<u32> = EventQueue::with_backend(Backend::Calendar);
    let mut heap: EventQueue<u32> = EventQueue::with_backend(Backend::Heap);
    let mut payload = 0u32;
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Push(ps) => {
                calendar.push(Time::from_ps(*ps), payload);
                heap.push(Time::from_ps(*ps), payload);
                payload += 1;
            }
            Op::Pop => {
                assert_eq!(calendar.pop(), heap.pop(), "pop diverged at step {step}");
            }
            Op::PopDue(now) => {
                assert_eq!(
                    calendar.pop_due(Time::from_ps(*now)),
                    heap.pop_due(Time::from_ps(*now)),
                    "pop_due diverged at step {step}"
                );
            }
            Op::PeekTime => {
                assert_eq!(
                    calendar.peek_time(),
                    heap.peek_time(),
                    "peek_time diverged at step {step}"
                );
            }
        }
        assert_eq!(calendar.len(), heap.len(), "len diverged at step {step}");
        assert_eq!(
            calendar.popped(),
            heap.popped(),
            "popped diverged at step {step}"
        );
        assert_eq!(calendar.is_empty(), heap.is_empty());
    }
    // Drain both to the end: the full residual order must agree too.
    loop {
        let (c, h) = (calendar.pop(), heap.pop());
        assert_eq!(c, h, "drain diverged");
        if c.is_none() {
            break;
        }
    }
    assert_eq!(calendar.popped(), heap.popped());
    assert_eq!(calendar.last_popped(), heap.last_popped());
}

proptest! {
    #[test]
    fn clustered_interleavings_match_heap(ops in clustered_ops()) {
        run_differential(&ops);
    }

    #[test]
    fn same_bucket_interleavings_match_heap(ops in same_bucket_ops()) {
        run_differential(&ops);
    }

    #[test]
    fn max_spread_interleavings_match_heap(ops in max_spread_ops()) {
        run_differential(&ops);
    }

    /// Equal-timestamp pushes must drain in insertion order regardless of
    /// how many distinct timestamps interleave between them.
    #[test]
    fn fifo_among_equal_times(times in proptest::collection::vec(0u64..64, 1..200)) {
        let mut q: EventQueue<usize> = EventQueue::with_backend(Backend::Calendar);
        // Map each op into one of 64 shared timestamps so collisions are dense.
        for (i, t) in times.iter().enumerate() {
            q.push(Time::from_ps(*t * 4_096), i);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li),
                    "FIFO violated: ({lt:?},{li}) then ({t:?},{i})");
            }
            last = Some((t, i));
        }
    }
}
