//! Property-based tests of the simulation kernel's invariants.

use desim::stats::{LatencyHistogram, Mean};
use desim::{EventQueue, Span, Time};
use proptest::prelude::*;

proptest! {
    /// Popping an event queue always yields a non-decreasing time
    /// sequence, whatever the insertion order.
    #[test]
    fn event_queue_pops_in_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_ps(t), i);
        }
        let mut last = Time::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Same-timestamp events pop in insertion (FIFO) order.
    #[test]
    fn event_queue_is_fifo_within_a_timestamp(
        groups in proptest::collection::vec((0u64..100, 1usize..10), 1..20)
    ) {
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        for &(t, n) in &groups {
            for _ in 0..n {
                q.push(Time::from_ps(t), seq);
                seq += 1;
            }
        }
        let mut per_time: std::collections::HashMap<Time, u64> = std::collections::HashMap::new();
        while let Some((t, s)) = q.pop() {
            if let Some(&prev) = per_time.get(&t) {
                prop_assert!(s > prev, "not FIFO at {t}: {s} after {prev}");
            }
            per_time.insert(t, s);
        }
    }

    /// Time/Span arithmetic is consistent: (t + a) + b == (t + b) + a and
    /// subtraction inverts addition.
    #[test]
    fn time_span_arithmetic(t in 0u64..1u64 << 40, a in 0u64..1u64 << 30, b in 0u64..1u64 << 30) {
        let t = Time::from_ps(t);
        let (a, b) = (Span::from_ps(a), Span::from_ps(b));
        prop_assert_eq!((t + a) + b, (t + b) + a);
        prop_assert_eq!((t + a) - a, t);
        prop_assert_eq!((t + a) - t, a);
    }

    /// Span scaling distributes over addition.
    #[test]
    fn span_scaling_distributes(a in 0u64..1u64 << 30, b in 0u64..1u64 << 30, k in 0u64..1000) {
        let (a, b) = (Span::from_ps(a), Span::from_ps(b));
        prop_assert_eq!((a + b) * k, a * k + b * k);
    }

    /// A histogram's percentile is monotone in the quantile and brackets
    /// its samples.
    #[test]
    fn histogram_percentiles_are_monotone(
        samples in proptest::collection::vec(1u64..1_000_000, 1..300)
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(Span::from_ns(s));
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p100 = h.percentile(1.0);
        prop_assert!(p50 <= p90);
        prop_assert!(p90 <= p100);
        let max = *samples.iter().max().expect("non-empty");
        prop_assert!(p100 >= Span::from_ns(max) || p100.as_ns_f64() >= max as f64);
    }

    /// A merged histogram's percentiles bracket the single-stream
    /// percentiles: the merged distribution is a mixture of the two
    /// components, so for any quantile q its value lies between the
    /// components' values at q.
    #[test]
    fn merged_histogram_percentiles_bracket_components(
        a in proptest::collection::vec(1u64..1_000_000, 1..200),
        b in proptest::collection::vec(1u64..1_000_000, 1..200)
    ) {
        let (mut ha, mut hb) = (LatencyHistogram::new(), LatencyHistogram::new());
        for &s in &a {
            ha.record(Span::from_ns(s));
        }
        for &s in &b {
            hb.record(Span::from_ns(s));
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        for q in [0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let (pa, pb, pm) = (ha.percentile(q), hb.percentile(q), merged.percentile(q));
            prop_assert!(pa.min(pb) <= pm, "q={q}: merged {pm} below both {pa}, {pb}");
            prop_assert!(pm <= pa.max(pb), "q={q}: merged {pm} above both {pa}, {pb}");
        }
        prop_assert_eq!(merged.p95(), merged.percentile(0.95));
        prop_assert_eq!(merged.p99(), merged.percentile(0.99));
    }

    /// `percentile` is monotone in the quantile for *arbitrary* quantile
    /// pairs, not just a fixed ladder: for q1 <= q2, p(q1) <= p(q2).
    #[test]
    fn histogram_percentile_is_monotone_in_arbitrary_q(
        samples in proptest::collection::vec(0u64..10_000_000, 1..300),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(Span::from_ns(s));
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(
            h.percentile(lo) <= h.percentile(hi),
            "p({lo}) = {} > p({hi}) = {}",
            h.percentile(lo),
            h.percentile(hi)
        );
        prop_assert!(h.percentile(hi) <= h.percentile(1.0));
    }

    /// The mean lies between the extreme percentiles at bucket
    /// granularity: the *lower* bound of the first occupied bucket
    /// (`percentile(0.0)` reports its upper bound, one power of two
    /// above) can never exceed the mean, and the upper bound of the last
    /// occupied bucket (`percentile(1.0)`) can never undercut it.
    #[test]
    fn histogram_mean_sits_between_extreme_buckets(
        samples in proptest::collection::vec(0u64..10_000_000, 1..300)
    ) {
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record(Span::from_ns(s));
        }
        let mean = h.mean().as_ns_f64();
        let p0 = h.percentile(0.0).as_ns_f64();
        let p100 = h.percentile(1.0).as_ns_f64();
        // Bucket 0 is [0,1) ns and reports upper bound 1; every later
        // bucket [2^(i-1), 2^i) reports 2^i, so halving recovers the
        // lower bound.
        let floor = if p0 <= 1.0 { 0.0 } else { p0 / 2.0 };
        prop_assert!(floor <= mean, "first-bucket floor {floor} > mean {mean}");
        prop_assert!(mean <= p100, "mean {mean} > last-bucket bound {p100}");
    }

    /// Merging histograms is exactly equivalent to recording the
    /// concatenated sample stream: every quantile agrees to the bucket
    /// boundary, not merely within a bracket.
    #[test]
    fn merge_then_percentile_equals_concatenated(
        a in proptest::collection::vec(0u64..10_000_000, 1..200),
        b in proptest::collection::vec(0u64..10_000_000, 0..200),
        qs in proptest::collection::vec(0.0f64..1.0, 1..8)
    ) {
        let (mut ha, mut hb, mut whole) =
            (LatencyHistogram::new(), LatencyHistogram::new(), LatencyHistogram::new());
        for &s in &a {
            ha.record(Span::from_ns(s));
            whole.record(Span::from_ns(s));
        }
        for &s in &b {
            hb.record(Span::from_ns(s));
            whole.record(Span::from_ns(s));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), whole.count());
        for &q in &qs {
            prop_assert_eq!(
                ha.percentile(q),
                whole.percentile(q),
                "q={} diverged after merge",
                q
            );
        }
        prop_assert_eq!(ha.percentile(1.0), whole.percentile(1.0));
    }

    /// The running mean matches a direct computation and merging two
    /// halves matches the whole.
    #[test]
    fn mean_matches_reference(samples in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut m = Mean::new();
        for &s in &samples {
            m.record(s);
        }
        let reference = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((m.mean() - reference).abs() < 1e-6 * (1.0 + reference.abs()));

        let cut = samples.len() / 2;
        let (mut l, mut r) = (Mean::new(), Mean::new());
        for &s in &samples[..cut] {
            l.record(s);
        }
        for &s in &samples[cut..] {
            r.record(s);
        }
        l.merge(&r);
        prop_assert!((l.mean() - m.mean()).abs() < 1e-9 * (1.0 + m.mean().abs()));
        prop_assert!((l.variance() - m.variance()).abs() < 1e-6 * (1.0 + m.variance()));
    }
}
