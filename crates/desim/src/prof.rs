//! Host-side span profiler and throughput counters.
//!
//! Everything else in `desim` measures *simulated* time; this module
//! measures *host* time — where the simulator's own wall-clock goes and
//! how fast it chews through events. Two facilities share the module:
//!
//! * **Scoped spans** ([`span`]): RAII guards around the kernel's hot
//!   sites (event-queue pop, dispatch, network step, trace-sink fan-out,
//!   audit checks). Spans aggregate per-thread into fixed-size arrays —
//!   no allocation on the hot path — and roll up into process-wide
//!   totals on [`flush`]. When profiling is disabled (the default) a
//!   span is a single relaxed atomic load and an empty drop: safe to
//!   leave in release builds.
//! * **Host counters** ([`add`]/[`counter`]): monotone process-wide
//!   totals (events simulated, packets delivered, campaign points done,
//!   cache hits/misses and their latency). Counters are always on; they
//!   are bumped coarsely — once per run or per campaign point, never per
//!   event — so their cost is unmeasurable.
//!
//! Profiling never touches simulation state: enabling it changes host
//! timing only, and sim results stay byte-identical (the regression
//! tests in `tests/` assert this).
//!
//! # Example
//!
//! ```
//! use desim::prof::{self, Site};
//!
//! prof::reset_local();
//! prof::set_enabled(true);
//! {
//!     let _outer = prof::span(Site::Dispatch);
//!     let _inner = prof::span(Site::QueuePop);
//! } // guards close innermost-first
//! prof::set_enabled(false);
//! let report = prof::local_report();
//! let pop = report.site(Site::QueuePop).unwrap();
//! assert_eq!(pop.count, 1);
//! assert!(pop.self_ns <= pop.total_ns);
//! ```

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Instrumented sites in the simulation kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// One driver-loop iteration: pick the next instant, advance, drain,
    /// re-offer stalls, inject. Parent of most other sites.
    Dispatch,
    /// `EventQueue::pop` / `pop_due` — the heap operation itself.
    QueuePop,
    /// `Network::advance` — the architecture's internal event dispatch.
    NetworkStep,
    /// Source emission (`PacketSource::emit_due`).
    SourceEmit,
    /// Injection attempts, including stalled-packet retries.
    Inject,
    /// Draining delivered packets back to the source.
    Drain,
    /// `Tracer::emit` — building the payload and fanning out to sinks.
    TraceFanout,
    /// Invariant-auditor checks riding the trace stream.
    Audit,
}

impl Site {
    /// Number of instrumented sites.
    pub const COUNT: usize = 8;

    /// All sites, in display order.
    pub const ALL: [Site; Site::COUNT] = [
        Site::Dispatch,
        Site::QueuePop,
        Site::NetworkStep,
        Site::SourceEmit,
        Site::Inject,
        Site::Drain,
        Site::TraceFanout,
        Site::Audit,
    ];

    /// Stable dotted name used in metrics and reports.
    pub fn name(self) -> &'static str {
        match self {
            Site::Dispatch => "dispatch",
            Site::QueuePop => "queue_pop",
            Site::NetworkStep => "network_step",
            Site::SourceEmit => "source_emit",
            Site::Inject => "inject",
            Site::Drain => "drain",
            Site::TraceFanout => "trace_fanout",
            Site::Audit => "audit",
        }
    }
}

/// Monotone process-wide host counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Simulation events processed (event-queue pops across all
    /// networks driven by this process).
    SimEvents,
    /// Packets delivered across all runs.
    Packets,
    /// Campaign points completed (executed or served from cache).
    PointsDone,
    /// Campaign result-cache hits.
    CacheHits,
    /// Campaign result-cache misses.
    CacheMisses,
    /// Cumulative wall-clock spent on cache hits, nanoseconds.
    CacheHitNs,
    /// Cumulative wall-clock spent on cache misses (lookup only, not the
    /// recomputation), nanoseconds.
    CacheMissNs,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 7;

    /// All counters, in display order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::SimEvents,
        Counter::Packets,
        Counter::PointsDone,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheHitNs,
        Counter::CacheMissNs,
    ];

    /// Stable dotted name used in metrics and reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::SimEvents => "events",
            Counter::Packets => "packets",
            Counter::PointsDone => "points_done",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheHitNs => "cache_hit_ns",
            Counter::CacheMissNs => "cache_miss_ns",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COUNTERS: [AtomicU64; Counter::COUNT] = [const { AtomicU64::new(0) }; Counter::COUNT];
/// Furthest simulation time any driver has reached, picoseconds
/// (a high-water mark for progress reporting, not a counter).
static SIM_TIME_PS: AtomicU64 = AtomicU64::new(0);
/// Process-wide span roll-up: [count, total_ns, self_ns] per site.
static SPANS: [[AtomicU64; 3]; Site::COUNT] =
    [const { [const { AtomicU64::new(0) }; 3] }; Site::COUNT];

#[derive(Default)]
struct LocalProf {
    /// [count, total_ns, self_ns] per site, this thread only.
    stats: [[u64; 3]; Site::COUNT],
    /// Child-time accumulator per open span, innermost last.
    open: Vec<u64>,
}

thread_local! {
    static LOCAL: RefCell<LocalProf> = RefCell::new(LocalProf::default());
}

/// Turns span profiling on or off process-wide. Counters are unaffected
/// (always on).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when span profiling is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// An open profiling span; closes (and records) on drop.
///
/// Must be dropped in strict LIFO order — which the RAII scoping rule
/// gives for free. Holding one across a thread boundary is not possible
/// (`Instant` is `Send`, but the guard deliberately is not).
pub struct SpanGuard {
    site: Site,
    start: Option<Instant>,
    /// !Send + !Sync: per-thread aggregation assumes the guard closes on
    /// the thread that opened it.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Opens a span at `site`. When profiling is disabled this is one
/// relaxed atomic load and the returned guard's drop is empty.
#[inline]
pub fn span(site: Site) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            site,
            start: None,
            _not_send: std::marker::PhantomData,
        };
    }
    LOCAL.with(|l| l.borrow_mut().open.push(0));
    SpanGuard {
        site,
        start: Some(Instant::now()),
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let child = l.open.pop().unwrap_or(0);
            let s = &mut l.stats[self.site as usize];
            s[0] += 1;
            s[1] += elapsed;
            s[2] += elapsed.saturating_sub(child);
            if let Some(parent) = l.open.last_mut() {
                *parent += elapsed;
            }
        });
    }
}

/// Number of spans currently open on this thread (test hook).
pub fn open_depth() -> usize {
    LOCAL.with(|l| l.borrow().open.len())
}

/// Rolls this thread's span statistics into the process-wide totals and
/// zeroes the thread-local copy. Called by the driver at the end of each
/// run; cheap when nothing was recorded.
pub fn flush() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        for (site, s) in l.stats.iter_mut().enumerate() {
            if s[0] == 0 && s[1] == 0 {
                continue;
            }
            for (k, v) in s.iter_mut().enumerate() {
                SPANS[site][k].fetch_add(*v, Ordering::Relaxed);
                *v = 0;
            }
        }
    });
}

/// Adds `n` to a process-wide counter.
#[inline]
pub fn add(counter: Counter, n: u64) {
    COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
}

/// Current value of a process-wide counter.
pub fn counter(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

/// Publishes the driver's current simulation time (picoseconds) as a
/// high-water mark for progress reporting.
#[inline]
pub fn note_sim_time(ps: u64) {
    SIM_TIME_PS.fetch_max(ps, Ordering::Relaxed);
}

/// The furthest simulation time published so far, picoseconds.
pub fn sim_time_ps() -> u64 {
    SIM_TIME_PS.load(Ordering::Relaxed)
}

/// Zeroes the process-wide counters, span totals and sim-time mark.
/// For benches and tests; running drivers on other threads may already
/// be re-accumulating by the time this returns.
pub fn reset() {
    reset_local();
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for site in &SPANS {
        for v in site {
            v.store(0, Ordering::Relaxed);
        }
    }
    SIM_TIME_PS.store(0, Ordering::Relaxed);
}

/// Zeroes this thread's local span statistics (test hook; open spans are
/// left open).
pub fn reset_local() {
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        l.stats = [[0; 3]; Site::COUNT];
    });
}

/// Aggregated statistics for one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Which site.
    pub site: Site,
    /// Spans closed.
    pub count: u64,
    /// Wall-clock inside the span, children included, nanoseconds.
    pub total_ns: u64,
    /// Wall-clock inside the span minus instrumented children, ns.
    pub self_ns: u64,
}

/// A point-in-time snapshot of profiler state.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfReport {
    /// Per-site span statistics, in [`Site::ALL`] order.
    pub spans: Vec<SpanStats>,
    /// Counter values, in [`Counter::ALL`] order.
    pub counters: Vec<(Counter, u64)>,
}

impl ProfReport {
    /// Statistics for `site`, if any spans closed there.
    pub fn site(&self, site: Site) -> Option<SpanStats> {
        self.spans
            .iter()
            .copied()
            .find(|s| s.site == site && s.count > 0)
    }

    /// Value of `counter` in this snapshot.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == counter)
            .map_or(0, |(_, v)| *v)
    }

    /// Renders the self/total-time table, sites with activity only,
    /// sorted by self time descending.
    pub fn table(&self) -> String {
        let mut rows: Vec<SpanStats> = self.spans.iter().copied().filter(|s| s.count > 0).collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.self_ns));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>12} {:>12} {:>10}",
            "site", "count", "self(ms)", "total(ms)", "self/call"
        );
        for r in rows {
            let _ = writeln!(
                out,
                "{:<14} {:>12} {:>12.3} {:>12.3} {:>9.0}n",
                r.site.name(),
                r.count,
                r.self_ns as f64 / 1e6,
                r.total_ns as f64 / 1e6,
                r.self_ns as f64 / r.count as f64,
            );
        }
        out
    }

    /// Exports the aggregate as a Chrome-trace (Perfetto) JSON array:
    /// one complete (`"ph": "X"`) slice per active site, laid end to end
    /// by self time, with count and total time in `args`. Loads in
    /// `chrome://tracing` / ui.perfetto.dev alongside the flight
    /// recorder's own export.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("[");
        let mut ts_us = 0.0f64;
        let mut first = true;
        for s in self.spans.iter().filter(|s| s.count > 0) {
            if !first {
                out.push(',');
            }
            first = false;
            let dur_us = s.self_ns as f64 / 1e3;
            let _ = write!(
                out,
                "\n  {{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 0, \"tid\": 0, \
                 \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"args\": {{\"count\": {}, \"total_ns\": {}, \"self_ns\": {}}}}}",
                s.site.name(),
                ts_us,
                dur_us,
                s.count,
                s.total_ns,
                s.self_ns
            );
            ts_us += dur_us;
        }
        out.push_str("\n]");
        out
    }
}

fn snapshot(stats: impl Fn(usize, usize) -> u64) -> ProfReport {
    ProfReport {
        spans: Site::ALL
            .iter()
            .map(|&site| SpanStats {
                site,
                count: stats(site as usize, 0),
                total_ns: stats(site as usize, 1),
                self_ns: stats(site as usize, 2),
            })
            .collect(),
        counters: Counter::ALL.iter().map(|&c| (c, counter(c))).collect(),
    }
}

/// Process-wide report: flushes the calling thread, then snapshots the
/// global roll-up and counters. Threads that have not flushed (i.e. are
/// mid-run) are not included.
pub fn report() -> ProfReport {
    flush();
    snapshot(|site, k| SPANS[site][k].load(Ordering::Relaxed))
}

/// This thread's unflushed span statistics plus the global counters.
/// Test hook: lets a test thread observe exactly its own spans.
pub fn local_report() -> ProfReport {
    LOCAL.with(|l| {
        let l = l.borrow();
        snapshot(|site, k| l.stats[site][k])
    })
}

/// Peak resident-set size of this process in bytes (`VmHWM`), or 0 where
/// unavailable.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::validate_json;

    /// Serializes tests that toggle the global enable flag.
    fn with_profiler<T>(f: impl FnOnce() -> T) -> T {
        use std::sync::Mutex;
        static GATE: Mutex<()> = Mutex::new(());
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        reset_local();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_span_records_nothing() {
        set_enabled(false);
        reset_local();
        {
            let _s = span(Site::Dispatch);
        }
        assert_eq!(open_depth(), 0);
        assert!(local_report().site(Site::Dispatch).is_none());
    }

    #[test]
    fn nested_spans_attribute_self_time_to_parent_minus_children() {
        let report = with_profiler(|| {
            {
                let _outer = span(Site::Dispatch);
                std::thread::sleep(std::time::Duration::from_millis(2));
                {
                    let _inner = span(Site::NetworkStep);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            local_report()
        });
        let outer = report.site(Site::Dispatch).expect("outer recorded");
        let inner = report.site(Site::NetworkStep).expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Inner is a leaf: self == total. Outer excludes the inner time.
        assert_eq!(inner.self_ns, inner.total_ns);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns,
            "outer self {} must exclude inner total {}",
            outer.self_ns,
            inner.total_ns
        );
    }

    #[test]
    fn flush_rolls_local_into_global() {
        let before = report().site(Site::Audit).map_or(0, |s| s.count);
        with_profiler(|| {
            let _s = span(Site::Audit);
        });
        let after = report().site(Site::Audit).map_or(0, |s| s.count);
        assert!(after > before);
        // Local stats were consumed by the flush inside report().
        assert!(local_report().site(Site::Audit).is_none());
    }

    #[test]
    fn counters_are_monotone_and_named() {
        let before = counter(Counter::SimEvents);
        add(Counter::SimEvents, 41);
        add(Counter::SimEvents, 1);
        assert!(counter(Counter::SimEvents) >= before + 42);
        for c in Counter::ALL {
            assert!(!c.name().is_empty());
        }
    }

    #[test]
    fn sim_time_is_a_high_water_mark() {
        note_sim_time(500);
        note_sim_time(100);
        assert!(sim_time_ps() >= 500);
    }

    #[test]
    fn table_and_chrome_trace_render() {
        let report = with_profiler(|| {
            {
                let _a = span(Site::QueuePop);
            }
            {
                let _b = span(Site::TraceFanout);
            }
            local_report()
        });
        let table = report.table();
        assert!(table.contains("queue_pop"), "{table}");
        assert!(table.contains("trace_fanout"), "{table}");
        let json = report.chrome_trace_json();
        validate_json(&json).expect("chrome trace JSON must be well-formed");
        assert!(json.contains("\"ph\": \"X\""), "{json}");
    }

    #[test]
    fn empty_report_is_valid_chrome_trace() {
        let report = ProfReport {
            spans: Vec::new(),
            counters: Vec::new(),
        };
        validate_json(&report.chrome_trace_json()).expect("empty array");
    }

    #[test]
    fn peak_rss_is_plausible() {
        let rss = peak_rss_bytes();
        // On Linux this must be at least a megabyte for any real process.
        if cfg!(target_os = "linux") {
            assert!(rss > 1 << 20, "VmHWM {rss} implausibly small");
        }
    }
}
