//! Picosecond-resolution simulation time.
//!
//! Two newtypes keep instants and durations from being confused
//! (C-NEWTYPE): [`Time`] is an absolute simulation instant, [`Span`] is a
//! duration. `Time + Span = Time`, `Time - Time = Span`, and `Span`
//! supports scaling. Both wrap a `u64` count of picoseconds, which covers
//! simulations of up to ~213 days — far beyond any macrochip run.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds in one nanosecond.
const PS_PER_NS: u64 = 1_000;
/// Picoseconds in one microsecond.
const PS_PER_US: u64 = 1_000_000;

/// An absolute simulation instant, in picoseconds since simulation start.
///
/// # Example
///
/// ```
/// use desim::{Span, Time};
/// let t = Time::from_ns(3) + Span::from_ps(500);
/// assert_eq!(t.as_ps(), 3_500);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A duration between two [`Time`] instants, in picoseconds.
///
/// # Example
///
/// ```
/// use desim::Span;
/// let s = Span::from_ns(2) * 3;
/// assert_eq!(s.as_ns_f64(), 6.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span(u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// The farthest representable instant; used as an "infinite" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Creates an instant from nanoseconds.
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * PS_PER_NS)
    }

    /// Creates an instant from microseconds.
    pub const fn from_us(us: u64) -> Time {
        Time(us * PS_PER_US)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// This instant expressed in (possibly fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: Time) -> Span {
        debug_assert!(earlier.0 <= self.0, "since() given a later instant");
        Span(self.0.saturating_sub(earlier.0))
    }

    /// Saturating duration since `earlier`; zero if `earlier` is later.
    pub fn saturating_since(self, earlier: Time) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Span {
    /// The zero-length duration.
    pub const ZERO: Span = Span(0);

    /// Creates a duration from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Span {
        Span(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Span {
        Span(ns * PS_PER_NS)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Span {
        Span(us * PS_PER_US)
    }

    /// Creates a duration from fractional nanoseconds, rounding to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    pub fn from_ns_f64(ns: f64) -> Span {
        assert!(ns.is_finite() && ns >= 0.0, "invalid duration: {ns} ns");
        // Saturating by construction: the value is asserted non-negative
        // and finite, and `as u64` clamps anything past u64::MAX.
        #[allow(clippy::cast_possible_truncation)]
        Span((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This duration expressed in (possibly fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// This duration expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The longer of two durations.
    pub fn max(self, other: Span) -> Span {
        Span(self.0.max(other.0))
    }
}

impl Add<Span> for Time {
    type Output = Time;
    fn add(self, rhs: Span) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Span> for Time {
    fn add_assign(&mut self, rhs: Span) {
        *self = *self + rhs;
    }
}

impl Sub<Span> for Time {
    type Output = Time;
    fn sub(self, rhs: Span) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<Time> for Time {
    type Output = Span;
    fn sub(self, rhs: Time) -> Span {
        self.since(rhs)
    }
}

impl Add for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Span {
    fn add_assign(&mut self, rhs: Span) {
        *self = *self + rhs;
    }
}

impl Sub for Span {
    type Output = Span;
    fn sub(self, rhs: Span) -> Span {
        Span(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Span {
    fn sub_assign(&mut self, rhs: Span) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Span {
    type Output = Span;
    fn mul(self, rhs: u64) -> Span {
        Span(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Span {
    type Output = Span;
    fn div(self, rhs: u64) -> Span {
        Span(self.0 / rhs)
    }
}

impl Sum for Span {
    fn sum<I: Iterator<Item = Span>>(iter: I) -> Span {
        iter.fold(Span::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({:.3} ns)", self.as_ns_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Span({:.3} ns)", self.as_ns_f64())
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Time::from_ns(7).as_ps(), 7_000);
        assert_eq!(Time::from_us(2).as_ps(), 2_000_000);
        assert_eq!(Span::from_ns(3).as_ps(), 3_000);
        assert_eq!(Span::from_us(1).as_ps(), 1_000_000);
    }

    #[test]
    fn instant_plus_duration() {
        let t = Time::from_ns(10) + Span::from_ns(5);
        assert_eq!(t, Time::from_ns(15));
    }

    #[test]
    fn instant_difference_is_span() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a - b, Span::from_ns(6));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = Time::from_ns(4);
        let b = Time::from_ns(10);
        assert_eq!(a.saturating_since(b), Span::ZERO);
    }

    #[test]
    fn span_scaling_and_division() {
        let s = Span::from_ns(3) * 4;
        assert_eq!(s, Span::from_ns(12));
        assert_eq!(s / 6, Span::from_ns(2));
    }

    #[test]
    fn fractional_ns_rounds_to_ps() {
        assert_eq!(Span::from_ns_f64(0.2).as_ps(), 200);
        assert_eq!(Span::from_ns_f64(1.6).as_ps(), 1_600);
        assert_eq!(Span::from_ns_f64(0.0001).as_ps(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_fractional_ns_panics() {
        let _ = Span::from_ns_f64(-1.0);
    }

    #[test]
    fn span_sum() {
        let total: Span = (1..=4).map(Span::from_ns).sum();
        assert_eq!(total, Span::from_ns(10));
    }

    #[test]
    fn display_formats_in_ns() {
        assert_eq!(Time::from_ps(1_500).to_string(), "1.500 ns");
        assert_eq!(Span::from_ps(250).to_string(), "0.250 ns");
    }

    #[test]
    fn min_max_select_correct_instants() {
        let a = Time::from_ns(1);
        let b = Time::from_ns(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn seconds_conversion() {
        assert!((Span::from_us(1).as_secs_f64() - 1e-6).abs() < 1e-18);
    }
}
