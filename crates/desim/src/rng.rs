//! Deterministic random-number generation for simulations.

use crate::Span;
use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random-number generator for reproducible simulations.
///
/// Every stochastic choice in the simulator (packet inter-arrival times,
/// destination selection, sharer sampling) flows through a `SimRng`, so a
/// run is fully determined by its seed.
///
/// # Example
///
/// ```
/// use desim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.range(0..100), b.range(0..100));
/// ```
pub struct SimRng {
    inner: rand::rngs::StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        SimRng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each traffic
    /// source its own stream without correlation.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.inner.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample from `range`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial: true with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.inner.gen::<f64>() < p
    }

    /// Exponentially distributed duration with the given mean; used for
    /// Poisson packet arrivals.
    ///
    /// # Panics
    ///
    /// Panics if the mean is zero.
    pub fn exp_span(&mut self, mean: Span) -> Span {
        assert!(!mean.is_zero(), "exponential mean must be positive");
        // Inverse-CDF sampling; clamp u away from 0 to avoid ln(0).
        let u = self.inner.gen::<f64>().max(1e-12);
        Span::from_ns_f64(-mean.as_ns_f64() * u.ln())
    }

    /// Uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose() on empty slice");
        &items[self.inner.gen_range(0..items.len())]
    }

    /// Samples `k` distinct indices from `0..n` (k ≤ n), in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        // Partial Fisher–Yates over a scratch vector.
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.inner.gen_range(i..n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Raw 64-bit sample; exposed for hashing-style uses.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRng").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = SimRng::new(7);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn exp_span_has_roughly_correct_mean() {
        let mut rng = SimRng::new(3);
        let mean = Span::from_ns(10);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp_span(mean).as_ns_f64()).sum();
        let avg = total / n as f64;
        assert!((avg - 10.0).abs() < 0.5, "mean was {avg}");
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = SimRng::new(9);
        let sample = rng.sample_indices(10, 4);
        assert_eq!(sample.len(), 4);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
        assert!(sample.iter().all(|&i| i < 10));
    }

    #[test]
    fn range_is_within_bounds() {
        let mut rng = SimRng::new(11);
        for _ in 0..100 {
            let v = rng.range(5..10);
            assert!((5..10).contains(&v));
        }
    }
}
