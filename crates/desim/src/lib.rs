//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate underneath the macrochip network simulator.
//! It provides:
//!
//! * [`Time`] / [`Span`] — picosecond-resolution simulation instants and
//!   durations with checked, unit-safe arithmetic;
//! * [`EventQueue`] — a priority queue with FIFO tie-breaking, so
//!   same-timestamp events pop in insertion order and simulations are fully
//!   deterministic. The default backend is a calendar/bucket queue tuned to
//!   the picosecond tick; a reference `BinaryHeap` backend (selected via
//!   [`Backend`] or `DESIM_EVENT_QUEUE=heap`) produces bit-identical pop
//!   sequences and anchors the kernel-equivalence test harness;
//! * [`SimRng`] — a seeded random-number wrapper so every run is
//!   reproducible;
//! * [`stats`] — counters, running means, log-scale latency histograms and
//!   time-weighted averages used by every higher-level crate;
//! * [`trace`] — the flight recorder: structured [`TraceEvent`]s, pluggable
//!   [`TraceSink`]s and a Chrome-trace/Perfetto exporter, all behind a
//!   [`Tracer`] handle that costs one branch when disabled;
//! * [`prof`] — host-side observability: RAII wall-clock spans over the
//!   kernel's hot sites plus monotone throughput counters, a no-op behind
//!   one atomic load when disabled.
//!
//! # Example
//!
//! ```
//! use desim::{EventQueue, Span, Time};
//!
//! let mut q = EventQueue::new();
//! q.push(Time::ZERO + Span::from_ns(5), "second");
//! q.push(Time::ZERO + Span::from_ns(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (Time::from_ns(1), "first"));
//! ```

pub mod prof;
mod queue;
mod rng;
pub mod stats;
mod time;
pub mod trace;

pub use queue::{current_backend, set_thread_backend, Backend, EventQueue};
pub use rng::SimRng;
pub use time::{Span, Time};
pub use trace::{TraceEvent, TraceSink, Tracer};
