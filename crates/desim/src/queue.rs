//! A deterministic event queue with two interchangeable backends.
//!
//! The default backend is a **calendar (bucket) queue** tuned to the
//! picosecond tick: power-of-two bucket widths, a fixed power-of-two
//! bucket count, and a lazy overflow list for events beyond the current
//! "year" (bucket span). The original `BinaryHeap` backend is kept as a
//! reference implementation; both produce bit-identical pop sequences —
//! events pop in `(time, insertion-sequence)` order — so a simulation's
//! results never depend on the backend. Select with
//! [`Backend`]/[`set_thread_backend`] or the `DESIM_EVENT_QUEUE`
//! environment variable (`calendar` | `heap`).

use crate::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which data structure backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Calendar/bucket queue (default): O(1) amortized push/pop for the
    /// clustered timestamps discrete-event simulations produce.
    Calendar,
    /// Binary heap: the reference implementation, O(log n) per operation.
    Heap,
}

fn env_backend() -> Backend {
    static FROM_ENV: std::sync::OnceLock<Backend> = std::sync::OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("DESIM_EVENT_QUEUE").as_deref() {
        Ok("heap") => Backend::Heap,
        Ok("calendar") | Ok(_) | Err(_) => Backend::Calendar,
    })
}

thread_local! {
    static THREAD_BACKEND: std::cell::Cell<Option<Backend>> = const { std::cell::Cell::new(None) };
}

/// Overrides the backend used by [`EventQueue::new`] on this thread
/// (`None` restores the process default). The differential
/// kernel-equivalence harness uses this to run heap-reference and
/// calendar simulations side by side in one process.
pub fn set_thread_backend(backend: Option<Backend>) {
    THREAD_BACKEND.with(|b| b.set(backend));
}

/// The backend [`EventQueue::new`] will pick on this thread: the
/// [`set_thread_backend`] override if set, else `DESIM_EVENT_QUEUE`, else
/// [`Backend::Calendar`].
pub fn current_backend() -> Backend {
    THREAD_BACKEND.with(|b| b.get()).unwrap_or_else(env_backend)
}

/// A future event: timestamp, insertion sequence number, payload.
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

// `BinaryHeap` is a max-heap; reverse the ordering so the earliest (and,
// among equals, the first-inserted) entry is popped first.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// log2 of the bucket width in picoseconds. Pops pay an O(bucket-length)
/// min scan, so the width is sized for the *densest* simulated workload:
/// a 64-site mesh near saturation produces on the order of 100 events per
/// nanosecond, and 2^5 ps = 32 ps keeps that to a handful of entries per
/// bucket. (The original 4 ns width put hundreds of events in one bucket
/// and made pops quadratic exactly on the networks the bench stresses.)
const WIDTH_LOG2: u32 = 5;
/// Buckets per "year". 8192 buckets × 32 ps ≈ 262 ns of calendar span —
/// past the long single delays (multi-hundred-byte serialization, the
/// ~32 ns token-regeneration penalty), so steady-state pushes land in the
/// year and only genuinely far events (timeouts, coherence round trips)
/// take the overflow path. The occupancy bitmap stays small (128 words)
/// and bucket Vec capacities are retained across years, so the wider
/// calendar costs memory only once.
const NUM_BUCKETS: usize = 8192;
const WIDTH: u64 = 1 << WIDTH_LOG2;
const YEAR: u64 = (NUM_BUCKETS as u64) << WIDTH_LOG2;
const OCC_WORDS: usize = NUM_BUCKETS / 64;

/// Location of the calendar's current minimum entry, memoized so a
/// peek→pop pair costs one scan.
#[derive(Clone, Copy)]
struct MinLoc {
    time: Time,
    seq: u64,
    bucket: usize,
    idx: usize,
}

struct Calendar<E> {
    /// One Vec per bucket, recycled across years (capacity is retained).
    buckets: Vec<Vec<Entry<E>>>,
    /// Occupancy bitmap over buckets: bit set ⇔ bucket non-empty.
    occupancy: [u64; OCC_WORDS],
    /// Start of the current year (picoseconds, aligned to the width).
    base: u64,
    /// First bucket index that may hold the minimum.
    cursor: usize,
    /// Entries currently in buckets (excludes the overflow list).
    in_buckets: usize,
    /// Events beyond `base + YEAR`, unsorted; redistributed lazily when
    /// the calendar advances into their year.
    overflow: Vec<Entry<E>>,
    /// Minimum timestamp in `overflow` (ps); `u64::MAX` when empty.
    overflow_min: u64,
    cached_min: Option<MinLoc>,
}

impl<E> Calendar<E> {
    fn new() -> Calendar<E> {
        Calendar {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupancy: [0; OCC_WORDS],
            base: 0,
            cursor: 0,
            in_buckets: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            cached_min: None,
        }
    }

    fn len(&self) -> usize {
        self.in_buckets + self.overflow.len()
    }

    #[inline]
    fn bucket_of(&self, ps: u64) -> usize {
        ((ps - self.base) >> WIDTH_LOG2) as usize
    }

    #[inline]
    fn mark(&mut self, b: usize) {
        self.occupancy[b >> 6] |= 1u64 << (b & 63);
    }

    #[inline]
    fn unmark(&mut self, b: usize) {
        self.occupancy[b >> 6] &= !(1u64 << (b & 63));
    }

    /// First non-empty bucket at or after `from`, via the bitmap.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= NUM_BUCKETS {
            return None;
        }
        let mut w = from >> 6;
        let mut word = self.occupancy[w] & (u64::MAX << (from & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= OCC_WORDS {
                return None;
            }
            word = self.occupancy[w];
        }
    }

    fn push(&mut self, time: Time, seq: u64, event: E) {
        let ps = time.as_ps();
        if ps < self.base {
            // A push before the calendar's origin (arbitrary interleavings
            // are legal, even if the simulations never rewind): rebuild
            // around the new earliest time. Rare and O(n).
            self.rebuild(ps);
        }
        // `ps - base` avoids overflow when the year sits near `Time::MAX`.
        if ps - self.base >= YEAR {
            self.overflow_min = self.overflow_min.min(ps);
            self.overflow.push(Entry { time, seq, event });
            return;
        }
        let b = self.bucket_of(ps);
        let idx = self.buckets[b].len();
        self.buckets[b].push(Entry { time, seq, event });
        self.mark(b);
        self.in_buckets += 1;
        if b < self.cursor {
            self.cursor = b;
        }
        // Appends never move existing entries, so a memoized location stays
        // valid; it only changes if the new entry beats it. A `None` memo
        // means "unknown" and is recomputed on demand.
        if let Some(m) = self.cached_min {
            if (time, seq) < (m.time, m.seq) {
                self.cached_min = Some(MinLoc {
                    time,
                    seq,
                    bucket: b,
                    idx,
                });
            }
        }
    }

    /// Re-anchors the calendar at `ps` and redistributes every entry.
    fn rebuild(&mut self, ps: u64) {
        let mut all: Vec<Entry<E>> = std::mem::take(&mut self.overflow);
        for b in &mut self.buckets {
            all.append(b);
        }
        self.occupancy = [0; OCC_WORDS];
        self.in_buckets = 0;
        self.overflow_min = u64::MAX;
        self.cached_min = None;
        self.base = ps & !(WIDTH - 1);
        self.cursor = 0;
        for e in all {
            let eps = e.time.as_ps();
            if eps - self.base >= YEAR {
                self.overflow_min = self.overflow_min.min(eps);
                self.overflow.push(e);
            } else {
                let b = self.bucket_of(eps);
                self.buckets[b].push(e);
                self.mark(b);
                self.in_buckets += 1;
            }
        }
    }

    /// All buckets are empty: jump the year to the overflow's minimum and
    /// redistribute the entries that fall inside it.
    fn advance_year(&mut self) {
        debug_assert!(self.in_buckets == 0 && !self.overflow.is_empty());
        self.base = self.overflow_min & !(WIDTH - 1);
        self.cursor = 0;
        self.overflow_min = u64::MAX;
        let mut i = 0;
        while i < self.overflow.len() {
            let eps = self.overflow[i].time.as_ps();
            if eps - self.base < YEAR {
                let e = self.overflow.swap_remove(i);
                let b = self.bucket_of(eps);
                self.buckets[b].push(e);
                self.mark(b);
                self.in_buckets += 1;
            } else {
                self.overflow_min = self.overflow_min.min(eps);
                i += 1;
            }
        }
    }

    /// Locates the minimum bucket entry, memoizing it. Caller guarantees
    /// `in_buckets > 0` or a non-empty overflow.
    fn ensure_min(&mut self) -> MinLoc {
        if let Some(m) = self.cached_min {
            return m;
        }
        if self.in_buckets == 0 {
            self.advance_year();
        }
        let b = self
            .next_occupied(self.cursor)
            .expect("occupancy tracks non-empty buckets");
        self.cursor = b;
        let bucket = &self.buckets[b];
        let mut best = 0;
        for (i, e) in bucket.iter().enumerate().skip(1) {
            if (e.time, e.seq) < (bucket[best].time, bucket[best].seq) {
                best = i;
            }
        }
        let m = MinLoc {
            time: bucket[best].time,
            seq: bucket[best].seq,
            bucket: b,
            idx: best,
        };
        self.cached_min = Some(m);
        m
    }

    fn peek_time(&self) -> Option<Time> {
        if let Some(m) = self.cached_min {
            return Some(m.time);
        }
        if self.in_buckets > 0 {
            let b = self.next_occupied(self.cursor)?;
            let t = self.buckets[b]
                .iter()
                .map(|e| e.time)
                .min()
                .expect("occupied bucket");
            return Some(t);
        }
        if !self.overflow.is_empty() {
            return Some(Time::from_ps(self.overflow_min));
        }
        None
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        if self.len() == 0 {
            return None;
        }
        let m = self.ensure_min();
        self.cached_min = None;
        let bucket = &mut self.buckets[m.bucket];
        let entry = bucket.swap_remove(m.idx);
        if bucket.is_empty() {
            self.unmark(m.bucket);
        }
        self.in_buckets -= 1;
        Some((entry.time, entry.event))
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.occupancy = [0; OCC_WORDS];
        self.in_buckets = 0;
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.cached_min = None;
        self.cursor = 0;
    }
}

enum Inner<E> {
    Heap(BinaryHeap<Entry<E>>),
    Calendar(Box<Calendar<E>>),
}

/// A time-ordered priority queue of simulation events.
///
/// Events with equal timestamps pop in insertion (FIFO) order, which makes
/// every simulation built on this queue deterministic for a given seed.
/// The determinism contract is backend-independent: whether backed by the
/// calendar queue or the reference binary heap, pops come out in
/// `(time, insertion-sequence)` order, bit-identically.
///
/// # Example
///
/// ```
/// use desim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(2), 'b');
/// q.push(Time::from_ns(1), 'a');
/// q.push(Time::from_ns(2), 'c');
/// assert_eq!(q.pop(), Some((Time::from_ns(1), 'a')));
/// // Equal timestamps pop in insertion order, on either backend.
/// assert_eq!(q.pop(), Some((Time::from_ns(2), 'b')));
/// assert_eq!(q.pop(), Some((Time::from_ns(2), 'c')));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    inner: Inner<E>,
    next_seq: u64,
    popped: u64,
    last_popped: Option<Time>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the thread's current backend (see
    /// [`current_backend`]).
    pub fn new() -> EventQueue<E> {
        EventQueue::with_backend(current_backend())
    }

    /// Creates an empty queue on an explicit backend.
    pub fn with_backend(backend: Backend) -> EventQueue<E> {
        let inner = match backend {
            Backend::Heap => Inner::Heap(BinaryHeap::new()),
            Backend::Calendar => Inner::Calendar(Box::new(Calendar::new())),
        };
        EventQueue {
            inner,
            next_seq: 0,
            popped: 0,
            last_popped: None,
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> Backend {
        match self.inner {
            Inner::Heap(_) => Backend::Heap,
            Inner::Calendar(_) => Backend::Calendar,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.inner {
            Inner::Heap(h) => h.push(Entry { time, seq, event }),
            Inner::Calendar(c) => c.push(time, seq, event),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let _span = crate::prof::span(crate::prof::Site::QueuePop);
        let popped = match &mut self.inner {
            Inner::Heap(h) => h.pop().map(|e| (e.time, e.event)),
            Inner::Calendar(c) => c.pop(),
        };
        if let Some((t, _)) = &popped {
            self.popped += 1;
            self.last_popped = Some(*t);
        }
        popped
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        match &self.inner {
            Inner::Heap(h) => h.peek().map(|e| e.time),
            Inner::Calendar(c) => c.peek_time(),
        }
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, E)> {
        // On the calendar backend, locate-and-memoize the minimum once so
        // the peek and the (likely) pop share a single scan.
        if let Inner::Calendar(c) = &mut self.inner {
            if c.len() == 0 || c.ensure_min().time > now {
                return None;
            }
            return self.pop();
        }
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Events popped over the queue's lifetime — the deterministic
    /// "simulation events processed" figure host-side throughput is
    /// measured against (events per wall-clock second). Monotone; not
    /// reset by [`EventQueue::clear`].
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Timestamp of the most recently popped event, if any. This is the
    /// "simulation clock" a batched driver reads back after advancing a
    /// network through multiple events in one call.
    pub fn last_popped(&self) -> Option<Time> {
        self.last_popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(h) => h.len(),
            Inner::Calendar(c) => c.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        match &mut self.inner {
            Inner::Heap(h) => h.clear(),
            Inner::Calendar(c) => c.clear(),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("backend", &self.backend())
            .field("len", &self.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> [Backend; 2] {
        [Backend::Calendar, Backend::Heap]
    }

    #[test]
    fn pops_in_time_order() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            for &t in &[5u64, 1, 9, 3] {
                q.push(Time::from_ns(t), t);
            }
            let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec![1, 3, 5, 9], "{backend:?}");
        }
    }

    #[test]
    fn equal_timestamps_pop_fifo() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..100 {
                q.push(Time::from_ns(7), i);
            }
            let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{backend:?}");
        }
    }

    #[test]
    fn pop_due_respects_now() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            q.push(Time::from_ns(10), "later");
            q.push(Time::from_ns(2), "soon");
            assert_eq!(
                q.pop_due(Time::from_ns(5)),
                Some((Time::from_ns(2), "soon"))
            );
            assert_eq!(q.pop_due(Time::from_ns(5)), None);
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn peek_time_sees_earliest() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            assert_eq!(q.peek_time(), None);
            q.push(Time::from_ns(4), ());
            q.push(Time::from_ns(2), ());
            assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
        }
    }

    #[test]
    fn clear_empties_queue() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            q.push(Time::ZERO, 'z');
            q.clear();
            assert!(q.is_empty());
            // A cleared calendar keeps working.
            q.push(Time::from_us(3), 'x');
            q.push(Time::from_ns(1), 'y');
            assert_eq!(q.pop(), Some((Time::from_ns(1), 'y')));
            assert_eq!(q.pop(), Some((Time::from_us(3), 'x')));
        }
    }

    #[test]
    fn popped_counts_successful_pops_only() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            assert_eq!(q.popped(), 0);
            q.push(Time::from_ns(1), ());
            q.push(Time::from_ns(2), ());
            q.pop();
            assert_eq!(q.popped(), 1);
            assert_eq!(q.pop_due(Time::ZERO), None, "not due yet");
            assert_eq!(q.popped(), 1, "a refused pop_due must not count");
            q.pop();
            q.pop();
            assert_eq!(q.popped(), 2, "popping empty must not count");
            q.push(Time::ZERO, ());
            q.clear();
            assert_eq!(q.popped(), 2, "clear discards without counting");
        }
    }

    #[test]
    fn last_popped_tracks_the_latest_pop() {
        for backend in backends() {
            let mut q = EventQueue::with_backend(backend);
            assert_eq!(q.last_popped(), None);
            q.push(Time::from_ns(3), ());
            q.push(Time::from_ns(8), ());
            q.pop();
            assert_eq!(q.last_popped(), Some(Time::from_ns(3)));
            q.pop();
            assert_eq!(q.last_popped(), Some(Time::from_ns(8)));
            q.pop();
            assert_eq!(
                q.last_popped(),
                Some(Time::from_ns(8)),
                "empty pop keeps it"
            );
        }
    }

    #[test]
    fn calendar_crosses_years_and_overflow() {
        // Events far beyond one calendar year land in the overflow list
        // and redistribute on demand, interleaved with near events.
        let mut q = EventQueue::with_backend(Backend::Calendar);
        let times: Vec<u64> = vec![3, 1_500, 1_048_576, 5_000_000, 1_048_577, 40];
        for &t in &times {
            q.push(Time::from_ps(t), t);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, sorted);
    }

    #[test]
    fn calendar_handles_past_pushes() {
        // Pushing earlier than everything already popped-around must
        // still pop in global order (the heap model allows it).
        let mut q = EventQueue::with_backend(Backend::Calendar);
        q.push(Time::from_us(10), "far");
        assert_eq!(q.peek_time(), Some(Time::from_us(10)));
        q.push(Time::from_ns(1), "near");
        assert_eq!(q.pop(), Some((Time::from_ns(1), "near")));
        q.push(Time::from_ps(1), "nearer");
        assert_eq!(q.pop(), Some((Time::from_ps(1), "nearer")));
        assert_eq!(q.pop(), Some((Time::from_us(10), "far")));
    }

    #[test]
    fn backend_selection_is_thread_overridable() {
        set_thread_backend(Some(Backend::Heap));
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.backend(), Backend::Heap);
        set_thread_backend(None);
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.backend(), current_backend());
    }
}
