//! A deterministic event queue.

use crate::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A future event: timestamp, insertion sequence number, payload.
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

// `BinaryHeap` is a max-heap; reverse the ordering so the earliest (and,
// among equals, the first-inserted) entry is popped first.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

/// A time-ordered priority queue of simulation events.
///
/// Events with equal timestamps pop in insertion (FIFO) order, which makes
/// every simulation built on this queue deterministic for a given seed.
///
/// # Example
///
/// ```
/// use desim::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(2), 'b');
/// q.push(Time::from_ns(1), 'a');
/// q.push(Time::from_ns(2), 'c');
/// assert_eq!(q.pop(), Some((Time::from_ns(1), 'a')));
/// assert_eq!(q.pop(), Some((Time::from_ns(2), 'b')));
/// assert_eq!(q.pop(), Some((Time::from_ns(2), 'c')));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let _span = crate::prof::span(crate::prof::Site::QueuePop);
        let popped = self.heap.pop().map(|e| (e.time, e.event));
        if popped.is_some() {
            self.popped += 1;
        }
        popped
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<(Time, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Events popped over the queue's lifetime — the deterministic
    /// "simulation events processed" figure host-side throughput is
    /// measured against (events per wall-clock second). Monotone; not
    /// reset by [`EventQueue::clear`].
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5u64, 1, 9, 3] {
            q.push(Time::from_ns(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }

    #[test]
    fn equal_timestamps_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(10), "later");
        q.push(Time::from_ns(2), "soon");
        assert_eq!(
            q.pop_due(Time::from_ns(5)),
            Some((Time::from_ns(2), "soon"))
        );
        assert_eq!(q.pop_due(Time::from_ns(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(4), ());
        q.push(Time::from_ns(2), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO, ());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn popped_counts_successful_pops_only() {
        let mut q = EventQueue::new();
        assert_eq!(q.popped(), 0);
        q.push(Time::from_ns(1), ());
        q.push(Time::from_ns(2), ());
        q.pop();
        assert_eq!(q.popped(), 1);
        assert_eq!(q.pop_due(Time::ZERO), None, "not due yet");
        assert_eq!(q.popped(), 1, "a refused pop_due must not count");
        q.pop();
        q.pop();
        assert_eq!(q.popped(), 2, "popping empty must not count");
        q.push(Time::ZERO, ());
        q.clear();
        assert_eq!(q.popped(), 2, "clear discards without counting");
    }
}
