//! Statistics collectors used across the simulator.
//!
//! All collectors are plain accumulators: cheap to update on the hot path,
//! with summary queries at the end of a run.

use crate::{Span, Time};

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use desim::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Adds `n` to the count.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one to the count.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current count.
    pub fn value(self) -> u64 {
        self.0
    }
}

/// Running mean / min / max / variance over `f64` samples (Welford).
///
/// # Example
///
/// ```
/// use desim::stats::Mean;
/// let mut m = Mean::new();
/// for x in [1.0, 2.0, 3.0] {
///     m.record(x);
/// }
/// assert_eq!(m.mean(), 2.0);
/// assert_eq!(m.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Mean {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Mean {
    /// Creates an empty accumulator.
    pub fn new() -> Mean {
        Mean {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance, or 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &Mean) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Latency histogram with logarithmic nanosecond buckets.
///
/// Buckets are powers of two of nanoseconds: `[0,1), [1,2), [2,4), … ns`,
/// which keeps percentile queries cheap without bounding latencies ahead
/// of time.
///
/// # Example
///
/// ```
/// use desim::stats::LatencyHistogram;
/// use desim::Span;
/// let mut h = LatencyHistogram::new();
/// for ns in [1u64, 2, 3, 100] {
///     h.record(Span::from_ns(ns));
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.5).as_ns_f64() <= 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// bucket[i] counts samples with ns in [2^(i-1), 2^i), bucket[0] is [0,1).
    buckets: Vec<u64>,
    mean: Mean,
}

const HISTOGRAM_BUCKETS: usize = 48;

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            mean: Mean::new(),
        }
    }

    fn bucket_for(span: Span) -> usize {
        let ns = span.as_ps() / 1_000;
        if ns == 0 {
            0
        } else {
            ((64 - ns.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Span) {
        self.buckets[Self::bucket_for(latency)] += 1;
        self.mean.record(latency.as_ns_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.mean.count()
    }

    /// Mean latency.
    pub fn mean(&self) -> Span {
        Span::from_ns_f64(self.mean.mean())
    }

    /// Largest recorded latency.
    pub fn max(&self) -> Span {
        Span::from_ns_f64(self.mean.max())
    }

    /// Approximate percentile (`q` in `[0, 1]`), as the upper bound of the
    /// bucket containing that quantile. Returns zero for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Span {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let total = self.count();
        if total == 0 {
            return Span::ZERO;
        }
        // `q` is in [0, 1], so the product never exceeds `total` and the
        // cast back to u64 is exact for any feasible sample count.
        #[allow(clippy::cast_possible_truncation)]
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper_ns = if i == 0 { 1 } else { 1u64 << i };
                return Span::from_ns(upper_ns);
            }
        }
        self.max()
    }

    /// The 95th-percentile latency; see [`LatencyHistogram::percentile`]
    /// for bucket semantics.
    pub fn p95(&self) -> Span {
        self.percentile(0.95)
    }

    /// The 99th-percentile latency; see [`LatencyHistogram::percentile`]
    /// for bucket semantics.
    pub fn p99(&self) -> Span {
        self.percentile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.mean.merge(&other.mean);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// Time-weighted average of a piecewise-constant value (e.g. queue depth).
///
/// # Example
///
/// ```
/// use desim::stats::TimeWeighted;
/// use desim::Time;
/// let mut tw = TimeWeighted::new(Time::ZERO, 0.0);
/// tw.set(Time::from_ns(10), 4.0); // value was 0 for 10 ns
/// tw.set(Time::from_ns(20), 0.0); // value was 4 for 10 ns
/// assert_eq!(tw.average(Time::from_ns(20)), 2.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    last_time: Time,
    value: f64,
    integral: f64,
    start: Time,
}

impl TimeWeighted {
    /// Creates a tracker whose value is `initial` at `start`.
    pub fn new(start: Time, initial: f64) -> TimeWeighted {
        TimeWeighted {
            last_time: start,
            value: initial,
            integral: 0.0,
            start,
        }
    }

    /// Updates the tracked value at time `now`.
    ///
    /// `now` must not precede the previous update: time-weighted averaging
    /// is only meaningful over a monotone clock. Debug builds assert this
    /// so a mis-instrumented call site fails loudly; release builds
    /// saturate — an out-of-order update contributes zero weight for the
    /// elapsed interval and the tracker's clock stays at its high-water
    /// mark.
    pub fn set(&mut self, now: Time, value: f64) {
        debug_assert!(
            now >= self.last_time,
            "TimeWeighted::set given out-of-order time: {now} < {}",
            self.last_time
        );
        let dt = now.saturating_since(self.last_time).as_ns_f64();
        self.integral += self.value * dt;
        self.last_time = now.max(self.last_time);
        self.value = value;
    }

    /// Adjusts the tracked value by `delta` at time `now`.
    pub fn add(&mut self, now: Time, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Time-weighted average over `[start, now]`.
    pub fn average(&self, now: Time) -> f64 {
        let pending = self.value * now.saturating_since(self.last_time).as_ns_f64();
        let elapsed = now.saturating_since(self.start).as_ns_f64();
        if elapsed == 0.0 {
            self.value
        } else {
            (self.integral + pending) / elapsed
        }
    }

    /// Current instantaneous value.
    pub fn current(&self) -> f64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
    }

    #[test]
    fn mean_of_known_samples() {
        let mut m = Mean::new();
        for x in [2.0, 4.0, 6.0, 8.0] {
            m.record(x);
        }
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 8.0);
        assert!((m.variance() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_merge_matches_single_stream() {
        let samples: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Mean::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut left = Mean::new();
        let mut right = Mean::new();
        for &s in &samples[..37] {
            left.record(s);
        }
        for &s in &samples[37..] {
            right.record(s);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn empty_mean_is_zeroed() {
        let m = Mean::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), 0.0);
        assert_eq!(m.max(), 0.0);
    }

    #[test]
    fn histogram_percentiles_bracket_samples() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(Span::from_ns(ns));
        }
        let p50 = h.percentile(0.5).as_ns_f64();
        // Median of 1..=1000 is ~500; bucket upper bound must be >= median
        // and within one power of two.
        assert!((500.0..=1024.0).contains(&p50), "p50 bucket {p50}");
        assert!(h.percentile(1.0).as_ns_f64() >= 1000.0);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(Span::from_ns(10));
        h.record(Span::from_ns(30));
        assert_eq!(h.mean(), Span::from_ns(20));
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Span::from_ns(5));
        b.record(Span::from_ns(500));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.max() >= Span::from_ns(500));
    }

    #[test]
    fn time_weighted_average_piecewise() {
        let mut tw = TimeWeighted::new(Time::ZERO, 1.0);
        tw.set(Time::from_ns(4), 3.0);
        // 1.0 for 4 ns, then 3.0 for 4 ns => avg 2.0 at t=8.
        assert!((tw.average(Time::from_ns(8)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add_tracks_queue_depth() {
        let mut tw = TimeWeighted::new(Time::ZERO, 0.0);
        tw.add(Time::from_ns(2), 1.0);
        tw.add(Time::from_ns(4), 1.0);
        tw.add(Time::from_ns(6), -2.0);
        assert_eq!(tw.current(), 0.0);
        // depth: 0 for 2ns, 1 for 2ns, 2 for 2ns, 0 for 2ns = avg 0.75 at 8ns
        assert!((tw.average(Time::from_ns(8)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile(0.9), Span::ZERO);
    }

    #[test]
    fn tail_percentile_shorthands_match_percentile() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(Span::from_ns(ns));
        }
        assert_eq!(h.p95(), h.percentile(0.95));
        assert_eq!(h.p99(), h.percentile(0.99));
        assert!(h.p95() <= h.p99());
        assert!(h.p99().as_ns_f64() >= 990.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out-of-order time")]
    fn time_weighted_rejects_backward_time_in_debug() {
        let mut tw = TimeWeighted::new(Time::from_ns(10), 1.0);
        tw.set(Time::from_ns(5), 2.0);
    }
}
