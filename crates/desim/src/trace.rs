//! Structured event tracing — the simulator's flight recorder.
//!
//! Every layer of the stack (runner, networks, coherence engine) carries a
//! [`Tracer`] handle and emits [`TraceEvent`]s at the points where packets
//! change state: injection, stalls and retries, arbitration, token and
//! circuit ownership, per-hop forwarding, delivery, and coherence-protocol
//! state transitions.
//!
//! The design goal is **zero cost when disabled**: a disabled [`Tracer`]
//! holds no sink, [`Tracer::emit`] is one branch on an `Option`, and the
//! event-construction closure is never evaluated. Enabled tracers write to
//! a [`TraceSink`]; the bundled [`RingSink`] keeps a bounded in-memory
//! window of the most recent events, and [`chrome_trace_json`] exports
//! recorded events as Chrome-trace-event JSON loadable at
//! `ui.perfetto.dev`.
//!
//! # Example
//!
//! ```
//! use desim::trace::{RingSink, TraceEvent, Tracer};
//! use desim::Time;
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let sink = Rc::new(RefCell::new(RingSink::new(1024)));
//! let tracer = Tracer::shared(&sink);
//! tracer.emit(Time::from_ns(5), || TraceEvent::Inject {
//!     packet: 0,
//!     src: 1,
//!     dst: 2,
//!     bytes: 64,
//! });
//! assert_eq!(sink.borrow().len(), 1);
//! ```

use crate::{Span, Time};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

/// One observable state change in the simulator.
///
/// Ids are raw integers rather than the typed ids of higher crates so that
/// `desim` stays dependency-free: `packet` is a `PacketId`'s inner value,
/// `src`/`dst`/`site` are site indices, `op` is a coherence-op id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet entered the network.
    Inject {
        packet: u64,
        src: usize,
        dst: usize,
        bytes: u32,
    },
    /// The network refused a packet (backpressure); the driver holds it.
    Stall { packet: u64, site: usize },
    /// A previously stalled packet was accepted on re-offer.
    Retry { packet: u64, site: usize },
    /// A packet posted an arbitration request for a shared channel.
    ArbRequest { packet: u64, site: usize },
    /// Arbitration granted the channel; `wasted_slots` counts the slots
    /// lost to conflicts before this grant.
    ArbGrant {
        packet: u64,
        site: usize,
        wasted_slots: u32,
    },
    /// A site captured the token for a destination's ring channel.
    TokenAcquire { dst: usize, holder: usize },
    /// The token moved on after the holder's burst.
    TokenRelease { dst: usize, holder: usize },
    /// A switched path finished setup end-to-end.
    CircuitSetup {
        circuit: u64,
        src: usize,
        dst: usize,
    },
    /// A switched path was torn down after carrying `packets` packets.
    /// The count is `u64` so a long-lived circuit can never truncate its
    /// accounting (the invariant auditor cross-checks it against per-packet
    /// deliveries).
    CircuitTeardown { circuit: u64, packets: u64 },
    /// A packet was forwarded through an intermediate site.
    Hop { packet: u64, at: usize },
    /// A packet reached its destination; `latency` is end-to-end.
    Deliver {
        packet: u64,
        src: usize,
        dst: usize,
        latency: Span,
    },
    /// A coherence-protocol state transition (e.g. `"S->M"`) for `op` at
    /// `site`.
    Coherence {
        op: u64,
        site: usize,
        transition: &'static str,
    },
    /// An injected fault took effect (`kind` is the fault's stable name,
    /// e.g. `"link-kill"`); `peer` is the far end for link faults, else 0.
    Fault {
        kind: &'static str,
        site: usize,
        peer: usize,
    },
    /// A previously injected fault was repaired or masked.
    Recover {
        kind: &'static str,
        site: usize,
        peer: usize,
    },
    /// A packet arrived corrupted (transient bit errors) and must be
    /// retransmitted.
    Corrupt { packet: u64, dst: usize },
    /// A packet was permanently dropped; `reason` is a stable short name
    /// (`"retries-exhausted"`, `"dead-site"`, …).
    Drop {
        packet: u64,
        site: usize,
        reason: &'static str,
    },
    /// A negative acknowledgement scheduled a bounded-backoff retry;
    /// `attempt` counts retransmissions of this packet so far.
    Nack {
        packet: u64,
        src: usize,
        attempt: u32,
    },
}

impl TraceEvent {
    /// Stable event name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Inject { .. } => "inject",
            TraceEvent::Stall { .. } => "stall",
            TraceEvent::Retry { .. } => "retry",
            TraceEvent::ArbRequest { .. } => "arb-request",
            TraceEvent::ArbGrant { .. } => "arb-grant",
            TraceEvent::TokenAcquire { .. } => "token-acquire",
            TraceEvent::TokenRelease { .. } => "token-release",
            TraceEvent::CircuitSetup { .. } => "circuit-setup",
            TraceEvent::CircuitTeardown { .. } => "circuit-teardown",
            TraceEvent::Hop { .. } => "hop",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::Coherence { .. } => "coherence",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Recover { .. } => "recover",
            TraceEvent::Corrupt { .. } => "corrupt",
            TraceEvent::Drop { .. } => "drop",
            TraceEvent::Nack { .. } => "nack",
        }
    }

    /// The site index used as the export's thread lane, so Perfetto groups
    /// events by where they happened.
    fn lane(&self) -> usize {
        match *self {
            TraceEvent::Inject { src, .. } => src,
            TraceEvent::Stall { site, .. } => site,
            TraceEvent::Retry { site, .. } => site,
            TraceEvent::ArbRequest { site, .. } => site,
            TraceEvent::ArbGrant { site, .. } => site,
            TraceEvent::TokenAcquire { holder, .. } => holder,
            TraceEvent::TokenRelease { holder, .. } => holder,
            TraceEvent::CircuitSetup { src, .. } => src,
            TraceEvent::CircuitTeardown { .. } => 0,
            TraceEvent::Hop { at, .. } => at,
            TraceEvent::Deliver { dst, .. } => dst,
            TraceEvent::Coherence { site, .. } => site,
            TraceEvent::Fault { site, .. } => site,
            TraceEvent::Recover { site, .. } => site,
            TraceEvent::Corrupt { dst, .. } => dst,
            TraceEvent::Drop { site, .. } => site,
            TraceEvent::Nack { src, .. } => src,
        }
    }

    /// Writes the Chrome-trace `args` object for this event.
    fn write_args(&self, out: &mut String) {
        match *self {
            TraceEvent::Inject {
                packet,
                src,
                dst,
                bytes,
            } => {
                let _ = write!(
                    out,
                    "{{\"packet\":{packet},\"src\":{src},\"dst\":{dst},\"bytes\":{bytes}}}"
                );
            }
            TraceEvent::Stall { packet, site } | TraceEvent::Retry { packet, site } => {
                let _ = write!(out, "{{\"packet\":{packet},\"site\":{site}}}");
            }
            TraceEvent::ArbRequest { packet, site } => {
                let _ = write!(out, "{{\"packet\":{packet},\"site\":{site}}}");
            }
            TraceEvent::ArbGrant {
                packet,
                site,
                wasted_slots,
            } => {
                let _ = write!(
                    out,
                    "{{\"packet\":{packet},\"site\":{site},\"wasted_slots\":{wasted_slots}}}"
                );
            }
            TraceEvent::TokenAcquire { dst, holder } | TraceEvent::TokenRelease { dst, holder } => {
                let _ = write!(out, "{{\"dst\":{dst},\"holder\":{holder}}}");
            }
            TraceEvent::CircuitSetup { circuit, src, dst } => {
                let _ = write!(out, "{{\"circuit\":{circuit},\"src\":{src},\"dst\":{dst}}}");
            }
            TraceEvent::CircuitTeardown { circuit, packets } => {
                let _ = write!(out, "{{\"circuit\":{circuit},\"packets\":{packets}}}");
            }
            TraceEvent::Hop { packet, at } => {
                let _ = write!(out, "{{\"packet\":{packet},\"at\":{at}}}");
            }
            TraceEvent::Deliver {
                packet,
                src,
                dst,
                latency,
            } => {
                let _ = write!(
                    out,
                    "{{\"packet\":{packet},\"src\":{src},\"dst\":{dst},\"latency_ns\":{}}}",
                    latency.as_ns_f64()
                );
            }
            TraceEvent::Coherence {
                op,
                site,
                transition,
            } => {
                let _ = write!(
                    out,
                    "{{\"op\":{op},\"site\":{site},\"transition\":\"{}\"}}",
                    escape_json(transition)
                );
            }
            TraceEvent::Fault { kind, site, peer } | TraceEvent::Recover { kind, site, peer } => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"{}\",\"site\":{site},\"peer\":{peer}}}",
                    escape_json(kind)
                );
            }
            TraceEvent::Corrupt { packet, dst } => {
                let _ = write!(out, "{{\"packet\":{packet},\"dst\":{dst}}}");
            }
            TraceEvent::Drop {
                packet,
                site,
                reason,
            } => {
                let _ = write!(
                    out,
                    "{{\"packet\":{packet},\"site\":{site},\"reason\":\"{}\"}}",
                    escape_json(reason)
                );
            }
            TraceEvent::Nack {
                packet,
                src,
                attempt,
            } => {
                let _ = write!(
                    out,
                    "{{\"packet\":{packet},\"src\":{src},\"attempt\":{attempt}}}"
                );
            }
        }
    }
}

/// Receives timestamped events from a [`Tracer`].
pub trait TraceSink {
    fn record(&mut self, at: Time, event: TraceEvent);
}

/// A sink that discards everything; useful as an explicit placeholder where
/// an API requires a sink value (a disabled [`Tracer`] needs no sink at
/// all).
#[derive(Debug, Default, Clone, Copy)]
pub struct NopSink;

impl TraceSink for NopSink {
    fn record(&mut self, _at: Time, _event: TraceEvent) {}
}

/// A bounded in-memory ring buffer of the most recent events.
///
/// When the buffer is full the **oldest** event is dropped, so a
/// long-running simulation keeps the trailing window — the part that shows
/// why it ended up in its final state. Dropped events are counted.
#[derive(Debug)]
pub struct RingSink {
    events: VecDeque<(Time, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// The **logical** capacity is always honored exactly — a ring built
    /// with `capacity = 1 << 20` keeps 1 Mi events before dropping. Only
    /// the *eager pre-allocation* is clamped to 64 Ki entries, so a
    /// pathological capacity request cannot reserve gigabytes up front;
    /// beyond the clamp the deque grows on demand as events arrive. See
    /// `huge_capacity_is_honored_beyond_preallocation_clamp`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> RingSink {
        assert!(capacity > 0, "RingSink capacity must be positive");
        RingSink {
            // Clamp bounds the up-front reservation only, never the ring.
            events: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            dropped: 0,
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(Time, TraceEvent)> {
        self.events.iter()
    }

    /// Copies the buffered events out, oldest first.
    pub fn snapshot(&self) -> Vec<(Time, TraceEvent)> {
        self.events.iter().copied().collect()
    }

    /// Merges another sink's recording into this one, keeping the merged
    /// stream ordered by timestamp (stable: on ties, this sink's events
    /// come first, then `other`'s, each in recording order).
    ///
    /// This is the parallel-campaign merge path: each worker records into
    /// its own `RingSink` (a [`Tracer`] is deliberately **not** `Send` —
    /// it shares its sink via `Rc`), and the per-worker sinks are absorbed
    /// into one recording afterwards. `RingSink` itself is `Send`, so
    /// whole sinks — or their [`RingSink::snapshot`]s — can cross thread
    /// boundaries. If the merged stream overflows this sink's capacity the
    /// oldest events are dropped and counted, as on the record path.
    pub fn absorb(&mut self, other: &RingSink) {
        let mut merged = VecDeque::with_capacity(self.events.len() + other.events.len());
        let mut a = self.events.iter().copied().peekable();
        let mut b = other.events.iter().copied().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(&(ta, _)), Some(&(tb, _))) => {
                    if ta <= tb {
                        merged.push_back(a.next().expect("peeked"));
                    } else {
                        merged.push_back(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push_back(a.next().expect("peeked")),
                (None, Some(_)) => merged.push_back(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        self.dropped += other.dropped;
        while merged.len() > self.capacity {
            merged.pop_front();
            self.dropped += 1;
        }
        self.events = merged;
    }
}

/// Compile-time audit of the tracing types' thread-safety contract, relied
/// on by the parallel campaign engine in higher crates:
///
/// * [`TraceEvent`] and recorded `(Time, TraceEvent)` streams are
///   `Send + Sync` — results can cross worker boundaries;
/// * [`RingSink`] and [`NopSink`] are `Send` — a worker-local sink can be
///   moved to the merge thread whole;
/// * [`Tracer`] is intentionally **not** `Send` (it shares its sink via
///   `Rc<RefCell<..>>` for single-threaded cheapness) — each worker must
///   construct its own, which is what keeps per-point recordings isolated
///   and the merged output deterministic.
#[allow(dead_code)]
fn _audit_send_bounds() {
    fn send_and_sync<T: Send + Sync>() {}
    fn send_only<T: Send>() {}
    send_and_sync::<TraceEvent>();
    send_and_sync::<Vec<(Time, TraceEvent)>>();
    send_only::<RingSink>();
    send_only::<NopSink>();
}

impl TraceSink for RingSink {
    fn record(&mut self, at: Time, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((at, event));
    }
}

/// Fans one event stream out to several sinks, in registration order.
///
/// A [`Tracer`] carries exactly one sink, but some runs want two
/// independent consumers of the same stream — e.g. a [`RingSink`] keeping
/// the flight-recorder window *and* an invariant auditor checking every
/// event. Wrap both in a `TeeSink` and hand the tee to the tracer; each
/// inner sink keeps its own `Rc`, so the caller can still read either back
/// after the run.
///
/// # Example
///
/// ```
/// use desim::trace::{RingSink, TeeSink, TraceEvent, Tracer};
/// use desim::Time;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let ring = Rc::new(RefCell::new(RingSink::new(16)));
/// let mut tee = TeeSink::new();
/// tee.add(&ring);
/// let tracer = Tracer::new(tee);
/// tracer.emit(Time::ZERO, || TraceEvent::Stall { packet: 1, site: 0 });
/// assert_eq!(ring.borrow().len(), 1);
/// ```
#[derive(Default)]
pub struct TeeSink {
    sinks: Vec<Rc<RefCell<dyn TraceSink>>>,
}

impl TeeSink {
    /// Creates an empty tee (records nothing until sinks are added).
    pub fn new() -> TeeSink {
        TeeSink::default()
    }

    /// Registers a shared sink; the caller keeps its `Rc` to read the
    /// sink back after the run.
    pub fn add<S: TraceSink + 'static>(&mut self, sink: &Rc<RefCell<S>>) {
        self.sinks
            .push(Rc::clone(sink) as Rc<RefCell<dyn TraceSink>>);
    }

    /// Number of registered sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True if no sink is registered.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TraceSink for TeeSink {
    fn record(&mut self, at: Time, event: TraceEvent) {
        for sink in &self.sinks {
            sink.borrow_mut().record(at, event);
        }
    }
}

/// A cheap, cloneable handle to an optional [`TraceSink`].
///
/// Cloning shares the sink, so the runner, a network and a coherence engine
/// can all write into one recording. The default handle is disabled:
/// [`Tracer::emit`] then reduces to a single `Option` branch and the event
/// closure is never evaluated, which keeps instrumented hot paths at their
/// un-instrumented cost.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl Tracer {
    /// A handle that records nothing.
    pub fn disabled() -> Tracer {
        Tracer { sink: None }
    }

    /// A handle owning a fresh sink.
    pub fn new<S: TraceSink + 'static>(sink: S) -> Tracer {
        Tracer {
            sink: Some(Rc::new(RefCell::new(sink))),
        }
    }

    /// A handle sharing `sink`; the caller keeps its `Rc` to read the
    /// recording back after the run.
    pub fn shared<S: TraceSink + 'static>(sink: &Rc<RefCell<S>>) -> Tracer {
        Tracer {
            sink: Some(Rc::clone(sink) as Rc<RefCell<dyn TraceSink>>),
        }
    }

    /// True if events will be recorded.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event produced by `event` at simulation time `at`.
    ///
    /// The closure is only evaluated when the tracer is enabled, so callers
    /// may compute event fields inside it without cost in the disabled
    /// case.
    #[inline]
    pub fn emit(&self, at: Time, event: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            let _span = crate::prof::span(crate::prof::Site::TraceFanout);
            sink.borrow_mut().record(at, event());
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Minimal JSON string escaping for the hand-rolled exporters.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Exports recorded events as Chrome-trace-event JSON (the "JSON array
/// format"), loadable at `ui.perfetto.dev` or `chrome://tracing`.
///
/// Each `(name, events)` section becomes its own process (`pid`), labelled
/// with a `process_name` metadata record, so a sweep can pack one section
/// per load point into a single file. Within a section, events land on the
/// thread lane (`tid`) of the site where they happened. Deliveries are
/// emitted as complete (`"ph":"X"`) spans covering the packet's lifetime;
/// everything else is an instant (`"ph":"i"`).
///
/// Timestamps are microseconds of simulation time, as the format requires.
pub fn chrome_trace_json(sections: &[(String, Vec<(Time, TraceEvent)>)]) -> String {
    let mut out = String::new();
    out.push('[');
    let mut first = true;
    let mut push_record = |out: &mut String, record: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&record);
    };
    for (index, (name, events)) in sections.iter().enumerate() {
        let pid = index + 1;
        push_record(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            ),
        );
        for &(at, event) in events {
            let mut record = String::with_capacity(128);
            let tid = event.lane();
            match event {
                TraceEvent::Deliver { latency, .. } => {
                    // A complete event spanning the packet's in-flight time.
                    let start = at - latency;
                    let _ = write!(
                        record,
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":",
                        event.name(),
                        start.as_us_f64(),
                        latency.as_ns_f64() / 1_000.0,
                    );
                }
                _ => {
                    let _ = write!(
                        record,
                        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":",
                        event.name(),
                        at.as_us_f64(),
                    );
                }
            }
            event.write_args(&mut record);
            record.push('}');
            push_record(&mut out, record);
        }
    }
    out.push_str("\n]\n");
    out
}

/// Validates that `s` is syntactically well-formed JSON.
///
/// The workspace hand-rolls all its JSON writers (there is no serde in the
/// dependency closure), so exporters and tests use this tiny
/// recursive-descent checker to guard against malformed output.
pub fn validate_json(s: &str) -> Result<(), String> {
    struct P<'a> {
        b: &'a [u8],
        i: usize,
    }
    impl P<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }
        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected '{}' at byte {}, found {:?}",
                    c as char,
                    self.i,
                    self.peek().map(|b| b as char)
                ))
            }
        }
        fn value(&mut self) -> Result<(), String> {
            self.ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string(),
                Some(b't') => self.literal("true"),
                Some(b'f') => self.literal("false"),
                Some(b'n') => self.literal("null"),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!("unexpected {other:?} at byte {}", self.i)),
            }
        }
        fn literal(&mut self, lit: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                Ok(())
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }
        fn number(&mut self) -> Result<(), String> {
            let start = self.i;
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
            if self.peek() == Some(b'.') {
                self.i += 1;
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                self.i += 1;
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.i += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            if self.i == start {
                Err(format!("empty number at byte {start}"))
            } else {
                Ok(())
            }
        }
        fn string(&mut self) -> Result<(), String> {
            self.eat(b'"')?;
            while let Some(c) = self.peek() {
                self.i += 1;
                match c {
                    b'"' => return Ok(()),
                    b'\\' => {
                        self.i += 1; // skip the escaped character
                    }
                    _ => {}
                }
            }
            Err("unterminated string".into())
        }
        fn object(&mut self) -> Result<(), String> {
            self.eat(b'{')?;
            self.ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.ws();
                self.string()?;
                self.ws();
                self.eat(b':')?;
                self.value()?;
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("bad object separator {other:?}")),
                }
            }
        }
        fn array(&mut self) -> Result<(), String> {
            self.eat(b'[')?;
            self.ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.value()?;
                self.ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("bad array separator {other:?}")),
                }
            }
        }
    }
    let mut p = P {
        b: s.as_bytes(),
        i: 0,
    };
    p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at {}", p.i));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(packet: u64) -> TraceEvent {
        TraceEvent::Inject {
            packet,
            src: 0,
            dst: 1,
            bytes: 64,
        }
    }

    #[test]
    fn disabled_tracer_never_evaluates_the_closure() {
        let tracer = Tracer::disabled();
        let mut evaluated = false;
        tracer.emit(Time::ZERO, || {
            evaluated = true;
            ev(0)
        });
        assert!(!evaluated);
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn shared_tracer_records_into_the_callers_sink() {
        let sink = Rc::new(RefCell::new(RingSink::new(8)));
        let tracer = Tracer::shared(&sink);
        let clone = tracer.clone();
        tracer.emit(Time::from_ns(1), || ev(0));
        clone.emit(Time::from_ns(2), || ev(1));
        let events = sink.borrow().snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, Time::from_ns(1));
        assert_eq!(events[1].1, ev(1));
    }

    #[test]
    fn absorb_merges_time_ordered_and_respects_capacity() {
        let mut a = RingSink::new(16);
        let mut b = RingSink::new(16);
        for i in [0u64, 2, 4] {
            a.record(Time::from_ns(i), ev(i));
        }
        for i in [1u64, 2, 3] {
            b.record(Time::from_ns(i), ev(100 + i));
        }
        a.absorb(&b);
        let times: Vec<u64> = a.events().map(|&(t, _)| t.as_ps() / 1000).collect();
        assert_eq!(times, vec![0, 1, 2, 2, 3, 4]);
        // Stable on ties: the absorbing sink's event at t=2 precedes the
        // absorbed one.
        let packets: Vec<u64> = a
            .events()
            .map(|&(_, e)| match e {
                TraceEvent::Inject { packet, .. } => packet,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(packets, vec![0, 101, 2, 102, 103, 4]);

        // Overflow drops oldest and counts them.
        let mut small = RingSink::new(2);
        small.record(Time::from_ns(9), ev(9));
        small.absorb(&a);
        assert_eq!(small.len(), 2);
        assert_eq!(small.dropped(), 5);
    }

    #[test]
    fn tee_sink_fans_out_to_every_registered_sink() {
        let a = Rc::new(RefCell::new(RingSink::new(8)));
        let b = Rc::new(RefCell::new(RingSink::new(8)));
        let mut tee = TeeSink::new();
        assert!(tee.is_empty());
        tee.add(&a);
        tee.add(&b);
        assert_eq!(tee.len(), 2);
        let tracer = Tracer::new(tee);
        tracer.emit(Time::from_ns(3), || ev(7));
        assert_eq!(a.borrow().snapshot(), b.borrow().snapshot());
        assert_eq!(a.borrow().len(), 1);
    }

    #[test]
    fn ring_sink_drops_oldest_when_full() {
        let mut ring = RingSink::new(3);
        for i in 0..5u64 {
            ring.record(Time::from_ns(i), ev(i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let kept: Vec<u64> = ring
            .events()
            .map(|&(_, e)| match e {
                TraceEvent::Inject { packet, .. } => packet,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn huge_capacity_is_honored_beyond_preallocation_clamp() {
        // The constructor clamps only the eager reservation (64 Ki); the
        // ring itself must keep every event up to the requested capacity.
        let requested = (1 << 16) + 4_096;
        let mut ring = RingSink::new(requested);
        for i in 0..requested as u64 {
            ring.record(Time::from_ns(i), ev(i));
        }
        assert_eq!(ring.len(), requested, "capacity clamped logically");
        assert_eq!(ring.dropped(), 0, "no drops below requested capacity");
        ring.record(Time::from_ns(requested as u64), ev(requested as u64));
        assert_eq!(ring.len(), requested);
        assert_eq!(ring.dropped(), 1, "drop starts exactly at capacity");
    }

    #[test]
    fn chrome_export_is_valid_json_with_required_fields() {
        let events = vec![
            (Time::from_ns(0), ev(0)),
            (
                Time::from_ns(5),
                TraceEvent::ArbGrant {
                    packet: 0,
                    site: 0,
                    wasted_slots: 2,
                },
            ),
            (
                Time::from_ns(20),
                TraceEvent::Deliver {
                    packet: 0,
                    src: 0,
                    dst: 1,
                    latency: Span::from_ns(20),
                },
            ),
            (
                Time::from_ns(21),
                TraceEvent::Coherence {
                    op: 7,
                    site: 1,
                    transition: "I->M",
                },
            ),
        ];
        let json = chrome_trace_json(&[("two-phase @ 10%".to_string(), events)]);
        validate_json(&json).expect("exporter must emit well-formed JSON");
        assert!(json.trim_start().starts_with('['));
        for field in [
            "\"ph\":\"X\"",
            "\"ph\":\"i\"",
            "\"ts\":",
            "\"dur\":",
            "\"name\":\"deliver\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
        // The deliver span starts at delivery minus latency.
        assert!(json.contains("\"ts\":0,\"dur\":0.02"));
    }

    #[test]
    fn chrome_export_separates_sections_by_pid() {
        let a = vec![(Time::ZERO, ev(0))];
        let b = vec![(Time::ZERO, ev(1))];
        let json = chrome_trace_json(&[("a".to_string(), a), ("b".to_string(), b)]);
        validate_json(&json).unwrap();
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
        assert_eq!(json.matches("process_name").count(), 2);
    }

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json("{\"a\": [1, 2.5, -3e4, true, null, \"x\\\"y\"]}").is_ok());
        assert!(validate_json("[1, 2,]").is_err());
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("[1] trailing").is_err());
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(ev(0).name(), "inject");
        assert_eq!(
            TraceEvent::TokenAcquire { dst: 0, holder: 1 }.name(),
            "token-acquire"
        );
        assert_eq!(
            TraceEvent::Fault {
                kind: "link-kill",
                site: 0,
                peer: 1
            }
            .name(),
            "fault"
        );
        assert_eq!(
            TraceEvent::Nack {
                packet: 0,
                src: 0,
                attempt: 1
            }
            .name(),
            "nack"
        );
    }

    #[test]
    fn fault_events_export_as_valid_json() {
        let events = vec![
            (
                Time::from_ns(1),
                TraceEvent::Fault {
                    kind: "link-kill",
                    site: 3,
                    peer: 17,
                },
            ),
            (Time::from_ns(2), TraceEvent::Corrupt { packet: 9, dst: 4 }),
            (
                Time::from_ns(3),
                TraceEvent::Nack {
                    packet: 9,
                    src: 0,
                    attempt: 2,
                },
            ),
            (
                Time::from_ns(4),
                TraceEvent::Drop {
                    packet: 9,
                    site: 0,
                    reason: "retries-exhausted",
                },
            ),
            (
                Time::from_ns(5),
                TraceEvent::Recover {
                    kind: "link-kill",
                    site: 3,
                    peer: 17,
                },
            ),
        ];
        let json = chrome_trace_json(&[("faulted".to_string(), events)]);
        validate_json(&json).expect("fault events must export as valid JSON");
        for field in [
            "\"name\":\"fault\"",
            "\"name\":\"recover\"",
            "\"name\":\"corrupt\"",
            "\"name\":\"drop\"",
            "\"name\":\"nack\"",
            "\"reason\":\"retries-exhausted\"",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
    }
}
