//! Property tests for the fault subsystem: schedule determinism and
//! delivery-contract convergence.

use desim::Time;
use faults::{FaultPlan, ResilientNetwork};
use netcore::{MacrochipConfig, MessageKind, Network, NetworkKind, Packet, PacketId, SiteId};
use proptest::prelude::*;

fn packet(id: u64, src: usize, dst: usize) -> Packet {
    Packet::new(
        PacketId(id),
        SiteId::from_index(src),
        SiteId::from_index(dst),
        64,
        MessageKind::Data,
        Time::ZERO,
    )
}

/// Drives the wrapper to quiescence, retrying backpressured injections
/// the way the real driver does.
fn drive_to_idle(net: &mut ResilientNetwork, packets: Vec<Packet>) {
    let mut pending: Vec<Packet> = packets;
    let mut now = Time::ZERO;
    while !pending.is_empty() || net.next_event().is_some() {
        let mut still: Vec<Packet> = Vec::new();
        for p in pending.drain(..) {
            if let Err(back) = net.inject(p, now) {
                still.push(back);
            }
        }
        pending = still;
        if let Some(t) = net.next_event() {
            now = t.max(now);
            net.advance(now);
        } else if !pending.is_empty() {
            panic!("injections pending but the network is idle");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Identical `(plan, seed, horizon)` inputs compile to byte-identical
    /// fault schedules, including the randomly drawn link kills.
    #[test]
    fn identical_seeds_give_byte_identical_schedules(
        seed in 0u64..1_000_000,
        rand_links in 0u32..12,
        repair_ns in 1u64..10_000,
    ) {
        let grid = MacrochipConfig::scaled().grid;
        let spec = format!("rand-links={rand_links}; repair={repair_ns}ns; link:1->2@3us");
        let plan = FaultPlan::parse(&spec).unwrap();
        let a = plan.schedule(&grid, seed, Time::from_us(50));
        let b = plan.schedule(&grid, seed, Time::from_us(50));
        prop_assert_eq!(format!("{a:?}").into_bytes(), format!("{b:?}").into_bytes());
        // And the canonical spec string round-trips to the same schedule.
        let c = FaultPlan::parse(&plan.to_spec()).unwrap().schedule(&grid, seed, Time::from_us(50));
        prop_assert_eq!(format!("{a:?}"), format!("{c:?}"));
    }

    /// Under any recovery-enabled plan, the system re-converges: once the
    /// driver goes idle, no packet is stuck in the retry queue — every
    /// packet has resolved to exactly one of clean delivery or a counted
    /// drop.
    #[test]
    fn recovery_enabled_plans_reconverge(
        seed in 0u64..100_000,
        transient in 0.0f64..0.6,
        rand_links in 0u32..6,
        kill_site in 0usize..64,
        npackets in 1usize..40,
    ) {
        let config = MacrochipConfig::scaled();
        let spec = format!(
            "rand-links={rand_links}; transient={transient}; site:{kill_site}@2us; repair=1us"
        );
        let plan = FaultPlan::parse(&spec).unwrap();
        prop_assert!(plan.recovery.enabled);
        let mut net = ResilientNetwork::new(
            networks::build(NetworkKind::PointToPoint, config),
            &plan,
            seed,
            Time::from_us(20),
        );
        let packets: Vec<Packet> = (0..npackets)
            .map(|i| packet(i as u64, i % 64, (i * 29 + 7) % 64))
            .collect();
        drive_to_idle(&mut net, packets);
        let s = net.fault_stats();
        prop_assert_eq!(net.pending_retries(), 0);
        prop_assert_eq!(s.clean_delivered + s.dropped, npackets as u64);
        let a = net.availability();
        prop_assert!((0.0..=1.0).contains(&a), "availability {}", a);
    }
}
