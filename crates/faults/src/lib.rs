//! Fault injection and resilience for the macrochip networks.
//!
//! The paper evaluates the five photonic network architectures assuming
//! perfect hardware. This crate asks what each design does when hardware
//! fails: a waveguide bundle goes dark, a site loses half its laser
//! budget, crosstalk bursts corrupt packets in flight, or an entire die
//! dies. It provides:
//!
//! * [`FaultPlan`] — a compact DSL describing a fault campaign
//!   (explicitly scheduled kills, seeded random kills, transient
//!   corruption derived from the crosstalk model, auto-repair, and the
//!   retry contract), compiled into a deterministic fault schedule;
//! * [`ResilientNetwork`] — a [`netcore::Network`] wrapper that fires the
//!   schedule into the inner network's own degradation policy
//!   ([`netcore::Network::apply_fault`]) and enforces a NACK/retry
//!   delivery contract with exponential backoff above it;
//! * [`FaultStats`] — resilience accounting (retries, drops, corrupted
//!   deliveries, time-in-degraded-mode, availability) exported through
//!   the standard metrics registry as the `fault.*` family.
//!
//! Everything is seeded and hash-driven: identical `(plan, seed)` pairs
//! replay byte-identically, and the no-fault plan is a pure pass-through
//! reproducing baseline results exactly.

pub mod plan;
pub mod resilient;

pub use plan::{FaultPlan, FaultSpec, PlanError, PlannedFault, RecoveryPolicy, TransientModel};
pub use resilient::{FaultStats, ResilientNetwork};

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{Time, Tracer};
    use netcore::{MacrochipConfig, MessageKind, Network, NetworkKind, Packet, PacketId};

    fn wrapped(kind: NetworkKind, spec: &str, seed: u64) -> ResilientNetwork {
        let config = MacrochipConfig::scaled();
        let plan = FaultPlan::parse(spec).unwrap();
        ResilientNetwork::new(
            networks::build(kind, config),
            &plan,
            seed,
            Time::from_us(100),
        )
    }

    fn data(id: u64, src: usize, dst: usize, at: Time) -> Packet {
        Packet::new(
            PacketId(id),
            netcore::SiteId::from_index(src),
            netcore::SiteId::from_index(dst),
            64,
            MessageKind::Data,
            at,
        )
    }

    fn run_until_idle(net: &mut ResilientNetwork) {
        while let Some(t) = net.next_event() {
            net.advance(t);
        }
    }

    #[test]
    fn no_fault_plan_is_a_pure_pass_through() {
        let mut n = wrapped(NetworkKind::PointToPoint, "none", 1);
        n.inject(data(0, 0, 9, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let out = n.drain_delivered();
        assert_eq!(out.len(), 1);
        assert!(out[0].delivered.is_some());
        assert_eq!(n.availability(), 1.0);
        assert_eq!(n.fault_stats().faults_applied, 0);
        assert!(n.fault_stats().time_degraded(Time::from_us(1)).is_zero());
    }

    #[test]
    fn corrupted_packets_are_retried_until_clean() {
        // Every first attempt is corrupted; retries eventually pass.
        let mut n = wrapped(NetworkKind::PointToPoint, "transient=0.6", 3);
        for i in 0..32 {
            n.inject(
                data(i, i as usize % 64, (i as usize + 7) % 64, Time::ZERO),
                Time::ZERO,
            )
            .unwrap();
        }
        run_until_idle(&mut n);
        let s = n.fault_stats();
        assert!(s.corrupted > 0, "transient model never fired");
        assert_eq!(s.nacks, s.corrupted);
        assert!(s.retries > 0);
        assert_eq!(s.clean_delivered + s.dropped, 32);
        assert_eq!(n.pending_retries(), 0);
        assert!((0.0..=1.0).contains(&n.availability()));
    }

    #[test]
    fn no_recovery_turns_corruption_into_loss() {
        let mut n = wrapped(NetworkKind::PointToPoint, "transient=1.0; no-recovery", 5);
        n.inject(data(0, 0, 9, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        assert!(n.drain_delivered().is_empty());
        assert_eq!(n.fault_stats().dropped, 1);
        assert_eq!(n.availability(), 0.0);
    }

    #[test]
    fn dead_site_absorbs_traffic_and_degrades_availability() {
        let mut n = wrapped(NetworkKind::PointToPoint, "site:9@1us", 7);
        let t0 = Time::from_us(2); // after the kill
        n.advance(Time::from_us(1));
        n.inject(data(0, 0, 9, t0), t0).unwrap();
        n.inject(data(1, 9, 3, t0), t0).unwrap();
        n.inject(data(2, 0, 3, t0), t0).unwrap();
        run_until_idle(&mut n);
        assert_eq!(n.drain_delivered().len(), 1);
        assert_eq!(n.fault_stats().dropped, 2);
        let a = n.availability();
        assert!((a - 1.0 / 3.0).abs() < 1e-12, "availability {a}");
        // A permanent kill leaves the system degraded to the horizon.
        assert_eq!(
            n.fault_stats().time_degraded(Time::from_us(3)),
            desim::Span::from_us(2)
        );
    }

    #[test]
    fn repair_closes_the_degraded_interval() {
        let mut n = wrapped(NetworkKind::PointToPoint, "laser:4@1us; repair=2us", 7);
        run_until_idle(&mut n);
        let s = n.fault_stats();
        assert_eq!(s.faults_applied, 1);
        assert_eq!(s.recoveries_applied, 1);
        assert_eq!(s.time_degraded(Time::from_us(50)), desim::Span::from_us(2));
    }

    #[test]
    fn evicted_packets_reenter_under_the_retry_contract() {
        // Kill a limited-p2p peer link with traffic queued on it: the
        // policy evicts the queue, the wrapper retries it along the
        // detour, and everything still arrives.
        let mut n = wrapped(NetworkKind::LimitedPointToPoint, "link:0->1@5ns", 11);
        for i in 0..8 {
            n.inject(data(i, 0, 1, Time::ZERO), Time::ZERO).unwrap();
        }
        run_until_idle(&mut n);
        let s = n.fault_stats();
        assert_eq!(s.clean_delivered, 8, "dropped {}", s.dropped);
        assert!(s.evicted > 0, "nothing was queued at the kill instant");
        assert_eq!(s.retries, s.evicted);
    }

    #[test]
    fn fault_events_reach_the_flight_recorder() {
        use desim::trace::RingSink;
        use std::cell::RefCell;
        use std::rc::Rc;
        let sink = Rc::new(RefCell::new(RingSink::new(1 << 12)));
        let mut n = wrapped(
            NetworkKind::PointToPoint,
            "link:0->1@100ns; repair=1us; transient=1.0; retries=1",
            13,
        );
        n.set_tracer(Tracer::shared(&sink));
        n.inject(data(0, 0, 9, Time::ZERO), Time::ZERO).unwrap();
        run_until_idle(&mut n);
        let names: Vec<&'static str> = sink
            .borrow()
            .snapshot()
            .iter()
            .map(|(_, e)| e.name())
            .collect();
        for expected in ["fault", "recover", "corrupt", "nack", "drop"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
    }

    #[test]
    fn metrics_family_includes_availability_in_unit_range() {
        let mut n = wrapped(NetworkKind::TokenRing, "transient=0.3", 17);
        for i in 0..16 {
            n.inject(
                data(i, i as usize, (i as usize + 5) % 64, Time::ZERO),
                Time::ZERO,
            )
            .unwrap();
        }
        run_until_idle(&mut n);
        let mut reg = netcore::MetricsRegistry::new();
        n.record_metrics(&mut reg, Time::from_us(10));
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"fault.availability\""));
        assert!(json.contains("\"fault.retries\""));
        assert!((0.0..=1.0).contains(&n.availability()));
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let spec = "rand-links=3; transient=0.2; repair=5us";
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut n = wrapped(NetworkKind::PointToPoint, spec, 23);
            for i in 0..24 {
                n.inject(
                    data(i, i as usize % 64, (i as usize * 13 + 1) % 64, Time::ZERO),
                    Time::ZERO,
                )
                .unwrap();
            }
            run_until_idle(&mut n);
            let s = n.fault_stats();
            runs.push((s.clean_delivered, s.corrupted, s.retries, s.dropped));
        }
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn wrapper_reports_pending_retries_as_events() {
        // The driver relies on next_event() staying Some while the
        // wrapper holds retries, or it would declare deadlock.
        let mut n = wrapped(NetworkKind::PointToPoint, "transient=1.0", 29);
        n.inject(data(0, 0, 9, Time::ZERO), Time::ZERO).unwrap();
        while let Some(t) = n.next_event() {
            n.advance(t);
            if n.pending_retries() > 0 {
                assert!(n.next_event().is_some(), "retry pending but no event");
            }
        }
    }
}
