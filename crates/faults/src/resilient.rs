//! The resilience wrapper: a [`Network`] that injects a [`FaultPlan`]
//! into an inner network and enforces the delivery contract on top of it.
//!
//! [`ResilientNetwork`] interposes on the whole `Network` surface:
//!
//! * scheduled faults fire between events (each one is offered to the
//!   inner network's [`Network::apply_fault`] degradation policy; packets
//!   the policy evicts are re-queued under the retry contract);
//! * deliveries are screened against the transient-corruption model —
//!   a corrupted packet is NACKed and retransmitted after exponential
//!   backoff, up to the retry bound, then declared lost;
//! * packets touching a dead die are absorbed as drops so the simulation
//!   stays live (nothing ever waits on a site that cannot answer).
//!
//! Corruption decisions are a pure hash of `(seed, packet id, attempt)`,
//! not RNG draws, so they are independent of event interleaving: the same
//! plan, seed and traffic replay byte-identically. With the no-fault plan
//! the wrapper is a pure pass-through and reproduces baseline numbers
//! exactly.

use crate::plan::{FaultPlan, RecoveryPolicy};
use desim::{Span, Time, TraceEvent, Tracer};
use netcore::{FaultResponse, MacrochipConfig, NetFault, NetStats, Network, NetworkKind, Packet};
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Resilience-layer accounting, kept apart from the inner network's
/// [`NetStats`] (which still counts corrupted deliveries as deliveries —
/// the wrapper's view is goodput).
#[derive(Debug, Default, Clone)]
pub struct FaultStats {
    /// Degrading faults applied (kills and losses).
    pub faults_applied: u64,
    /// Recovery events applied (repairs and restores).
    pub recoveries_applied: u64,
    /// Deliveries the transient model corrupted.
    pub corrupted: u64,
    /// NACKs issued (each schedules a retransmission).
    pub nacks: u64,
    /// Retransmissions actually re-injected.
    pub retries: u64,
    /// Packets evicted from network queues by faults.
    pub evicted: u64,
    /// Packets lost for good (dead die, retry budget exhausted, or
    /// recovery disabled).
    pub dropped: u64,
    /// Packets delivered clean through the wrapper.
    pub clean_delivered: u64,
    /// Bytes delivered clean through the wrapper.
    pub clean_bytes: u64,
    /// Closed degraded intervals, accumulated.
    degraded_accum: Span,
    /// Start of the currently open degraded interval, if any.
    degraded_since: Option<Time>,
    /// Outstanding degrading faults (kills minus repairs).
    active_faults: u32,
}

impl FaultStats {
    /// Total simulated time spent with at least one unrepaired fault
    /// outstanding, up to `now`.
    pub fn time_degraded(&self, now: Time) -> Span {
        match self.degraded_since {
            Some(since) => self.degraded_accum + now.saturating_since(since),
            None => self.degraded_accum,
        }
    }

    fn on_fault(&mut self, fault: NetFault, now: Time) {
        if fault.is_recovery() {
            self.recoveries_applied += 1;
            self.active_faults = self.active_faults.saturating_sub(1);
            if self.active_faults == 0 {
                if let Some(since) = self.degraded_since.take() {
                    self.degraded_accum += now.saturating_since(since);
                }
            }
        } else {
            self.faults_applied += 1;
            self.active_faults += 1;
            if self.active_faults == 1 {
                self.degraded_since = Some(now);
            }
        }
    }
}

/// A pending retransmission; ordered by time (then insertion) inside a
/// max-heap via reversed comparison.
#[derive(Debug)]
struct Retry {
    at: Time,
    seq: u64,
    attempt: u32,
    packet: Packet,
}

impl PartialEq for Retry {
    fn eq(&self, other: &Retry) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Retry {}
impl PartialOrd for Retry {
    fn partial_cmp(&self, other: &Retry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Retry {
    fn cmp(&self, other: &Retry) -> std::cmp::Ordering {
        // Reversed: BinaryHeap pops the earliest retry first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A network wrapped with fault injection and the retry contract.
pub struct ResilientNetwork {
    inner: Box<dyn Network>,
    recovery: RecoveryPolicy,
    transient: f64,
    seed: u64,
    schedule: VecDeque<(Time, NetFault)>,
    retries: BinaryHeap<Retry>,
    retry_seq: u64,
    /// Attempt number per in-flight packet id (1 = first transmission).
    attempts: HashMap<u64, u32>,
    dead: Vec<bool>,
    delivered: Vec<Packet>,
    /// Reused buffer for draining the inner network.
    scratch: Vec<Packet>,
    /// Timestamp of the last processed step (inner event, fault, or retry
    /// flush) — the wrapper's own clock for batched driving.
    last_step: Option<Time>,
    fstats: FaultStats,
    tracer: Tracer,
}

impl ResilientNetwork {
    /// Wraps `inner` under `plan`, compiling the plan's fault schedule
    /// with `seed` across `[0, horizon)`.
    pub fn new(
        inner: Box<dyn Network>,
        plan: &FaultPlan,
        seed: u64,
        horizon: Time,
    ) -> ResilientNetwork {
        let schedule = plan
            .schedule(&inner.config().grid, seed, horizon)
            .into_iter()
            .collect();
        let sites = inner.config().grid.sites();
        ResilientNetwork {
            inner,
            recovery: plan.recovery,
            transient: plan.transient.per_packet,
            seed,
            schedule,
            retries: BinaryHeap::new(),
            retry_seq: 0,
            attempts: HashMap::new(),
            dead: vec![false; sites],
            delivered: Vec::new(),
            scratch: Vec::new(),
            last_step: None,
            fstats: FaultStats::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Resilience-layer accounting.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fstats
    }

    /// Packets lost for good across both layers: the wrapper's drops
    /// (dead dies, exhausted retries) plus drops absorbed inside the
    /// network by its own degradation policy (masked channels, lost
    /// routes).
    pub fn lost_packets(&self) -> u64 {
        self.fstats.dropped + self.inner.stats().dropped_packets()
    }

    /// Fraction of finally-resolved packets that arrived clean:
    /// `clean / (clean + lost)`, in `[0, 1]`; `1.0` before any packet
    /// resolves.
    pub fn availability(&self) -> f64 {
        let good = self.fstats.clean_delivered;
        let total = good + self.lost_packets();
        if total == 0 {
            1.0
        } else {
            good as f64 / total as f64
        }
    }

    /// Retransmissions still waiting for their backoff to expire.
    pub fn pending_retries(&self) -> usize {
        self.retries.len()
    }

    /// Flattens both statistics layers into `registry`: the inner
    /// network's standard `net.*`/`latency.*` families plus the `fault.*`
    /// family (counters for faults, retries, drops; gauges for
    /// availability and time-in-degraded-mode at `now`).
    pub fn record_metrics(&self, registry: &mut netcore::MetricsRegistry, now: Time) {
        registry.record_net_stats(self.inner.stats());
        registry.add_counter("fault.injected", self.fstats.faults_applied);
        registry.add_counter("fault.recovered", self.fstats.recoveries_applied);
        registry.add_counter("fault.corrupted", self.fstats.corrupted);
        registry.add_counter("fault.nacks", self.fstats.nacks);
        registry.add_counter("fault.retries", self.fstats.retries);
        registry.add_counter("fault.evicted", self.fstats.evicted);
        registry.add_counter("fault.dropped", self.fstats.dropped);
        registry.add_counter("fault.lost", self.lost_packets());
        registry.add_counter("fault.clean_delivered", self.fstats.clean_delivered);
        registry.set_gauge("fault.availability", self.availability());
        registry.set_gauge(
            "fault.time_degraded_ns",
            self.fstats.time_degraded(now).as_ns_f64(),
        );
    }

    /// Deterministic corruption decision for `(packet, attempt)`:
    /// a splitmix64-style hash mapped to `[0, 1)` and compared against the
    /// transient rate, so verdicts do not depend on event interleaving.
    fn is_corrupted(&self, packet: u64, attempt: u32) -> bool {
        if self.transient <= 0.0 {
            return false;
        }
        let mut z = self
            .seed
            .wrapping_add(packet.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((attempt as u64) << 32);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let roll = (z >> 11) as f64 / (1u64 << 53) as f64;
        roll < self.transient
    }

    fn touches_dead_site(&self, packet: &Packet) -> bool {
        self.dead[packet.src.index()] || self.dead[packet.dst.index()]
    }

    fn drop_packet(&mut self, packet: &Packet, now: Time, reason: &'static str) {
        self.fstats.dropped += 1;
        self.attempts.remove(&packet.id.0);
        self.tracer.emit(now, || TraceEvent::Drop {
            packet: packet.id.0,
            site: packet.src.index(),
            reason,
        });
    }

    /// Queues `packet` for retransmission attempt `attempt` after its
    /// exponential backoff, or drops it when the contract forbids.
    fn nack(&mut self, mut packet: Packet, attempt: u32, now: Time) {
        if !self.recovery.enabled {
            self.drop_packet(&packet, now, "no-recovery");
            return;
        }
        if attempt > self.recovery.max_retries {
            self.drop_packet(&packet, now, "retries-exhausted");
            return;
        }
        packet.delivered = None;
        packet.tx_start = None;
        packet.arb_start = None;
        self.fstats.nacks += 1;
        self.tracer.emit(now, || TraceEvent::Nack {
            packet: packet.id.0,
            src: packet.src.index(),
            attempt,
        });
        self.attempts.insert(packet.id.0, attempt + 1);
        self.retry_seq += 1;
        self.retries.push(Retry {
            at: now + self.recovery.backoff_for(attempt),
            seq: self.retry_seq,
            attempt: attempt + 1,
            packet,
        });
    }

    fn apply_one(&mut self, fault: NetFault, now: Time) -> FaultResponse {
        self.fstats.on_fault(fault, now);
        let (site, peer) = (fault.site().index(), fault.peer().index());
        if fault.is_recovery() {
            self.tracer.emit(now, || TraceEvent::Recover {
                kind: fault.name(),
                site,
                peer,
            });
        } else {
            self.tracer.emit(now, || TraceEvent::Fault {
                kind: fault.name(),
                site,
                peer,
            });
        }
        if let NetFault::SiteKill { site } = fault {
            self.dead[site.index()] = true;
        }
        let FaultResponse {
            action,
            handled,
            evicted,
        } = self.inner.apply_fault(fault, now);
        for packet in evicted {
            self.fstats.evicted += 1;
            if self.touches_dead_site(&packet) {
                self.drop_packet(&packet, now, "dead-site");
            } else {
                let attempt = *self.attempts.get(&packet.id.0).unwrap_or(&1);
                self.nack(packet, attempt, now);
            }
        }
        FaultResponse {
            action,
            handled,
            evicted: Vec::new(),
        }
    }

    /// Re-offers every retry whose backoff expired. Backpressured retries
    /// are pushed back one base-backoff; they never consume an attempt.
    fn flush_retries(&mut self, now: Time) {
        while self.retries.peek().is_some_and(|r| r.at <= now) {
            let r = self.retries.pop().expect("peeked");
            if self.touches_dead_site(&r.packet) {
                let p = r.packet;
                self.drop_packet(&p, now, "dead-site");
                continue;
            }
            let (id, src) = (r.packet.id.0, r.packet.src.index());
            match self.inner.inject(r.packet, now) {
                Ok(()) => {
                    self.fstats.retries += 1;
                    self.tracer.emit(now, || TraceEvent::Retry {
                        packet: id,
                        site: src,
                    });
                }
                Err(back) => {
                    self.retry_seq += 1;
                    self.retries.push(Retry {
                        at: now + self.recovery.backoff,
                        seq: self.retry_seq,
                        attempt: r.attempt,
                        packet: back,
                    });
                }
            }
        }
    }

    /// Screens everything the inner network delivered: corrupted packets
    /// are NACKed *at their own delivery instant* (read back from
    /// `Packet::delivered`, which the inner network stamps at true event
    /// time), clean ones pass through. Per-event driving visits deliveries
    /// one instant at a time, so this is byte-identical to screening at
    /// the drain call's `now` — and it stays exact when `advance` sweeps
    /// the inner network through a whole batch of events.
    fn drain_inner(&mut self) {
        let mut batch = std::mem::take(&mut self.scratch);
        self.inner.drain_delivered_into(&mut batch);
        for packet in batch.drain(..) {
            let at = packet.delivered.expect("drained packets are stamped");
            let attempt = *self.attempts.get(&packet.id.0).unwrap_or(&1);
            if self.is_corrupted(packet.id.0, attempt) {
                self.fstats.corrupted += 1;
                self.tracer.emit(at, || TraceEvent::Corrupt {
                    packet: packet.id.0,
                    dst: packet.dst.index(),
                });
                self.nack(packet, attempt, at);
            } else {
                self.attempts.remove(&packet.id.0);
                self.fstats.clean_delivered += 1;
                self.fstats.clean_bytes += u64::from(packet.bytes);
                self.delivered.push(packet);
            }
        }
        self.scratch = batch;
    }
}

impl Network for ResilientNetwork {
    fn kind(&self) -> NetworkKind {
        self.inner.kind()
    }

    fn config(&self) -> &MacrochipConfig {
        self.inner.config()
    }

    fn inject(&mut self, packet: Packet, now: Time) -> Result<(), Packet> {
        if self.touches_dead_site(&packet) {
            // Absorbed, not refused: the driver must never spin on a
            // destination that will not come back.
            self.drop_packet(&packet, now, "dead-site");
            return Ok(());
        }
        match self.inner.inject(packet, now) {
            Ok(()) => {
                self.attempts.entry(packet.id.0).or_insert(1);
                Ok(())
            }
            Err(back) => Err(back),
        }
    }

    fn next_event(&self) -> Option<Time> {
        let mut next = self.inner.next_event();
        for t in [
            self.schedule.front().map(|(at, _)| *at),
            self.retries.peek().map(|r| r.at),
        ]
        .into_iter()
        .flatten()
        {
            next = Some(next.map_or(t, |n| n.min(t)));
        }
        next
    }

    /// Time-faithful stepping: each fault fires at its scheduled instant,
    /// each retry flushes at its backoff expiry, and the inner network is
    /// advanced in stretches bounded by the next wrapper action — never
    /// past one. The ordering at a shared instant `t` matches the
    /// historical per-event contract: faults at `t`, then inner events at
    /// `t`, then retries due at `t`.
    fn advance(&mut self, now: Time) {
        loop {
            let next_fault = self.schedule.front().map(|(at, _)| *at);
            let next_retry = self.retries.peek().map(|r| r.at);
            let next_wrap = [next_fault, next_retry].into_iter().flatten().min();
            let next_inner = self.inner.next_event();
            let Some(t) = [next_wrap, next_inner]
                .into_iter()
                .flatten()
                .min()
                .filter(|&t| t <= now)
            else {
                break;
            };
            if next_wrap.is_some_and(|w| w == t) {
                while self.schedule.front().is_some_and(|(at, _)| *at <= t) {
                    let (at, fault) = self.schedule.pop_front().expect("peeked");
                    self.apply_one(fault, at);
                }
                if next_inner.is_some_and(|ti| ti <= t) {
                    self.inner.advance(t);
                    self.drain_inner();
                }
                self.flush_retries(t);
                self.last_step = Some(t);
            } else {
                // A pure inner stretch: sweep up to just before the next
                // wrapper action (or `now` when none is pending).
                let bound = match next_wrap {
                    Some(w) if w <= now => Time::from_ps(w.as_ps() - 1),
                    _ => now,
                };
                self.inner.advance(bound);
                self.drain_inner();
                self.last_step = self.inner.last_event_time().or(self.last_step);
            }
        }
    }

    fn drain_delivered(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.delivered)
    }

    fn drain_delivered_into(&mut self, out: &mut Vec<Packet>) {
        out.append(&mut self.delivered);
    }

    fn last_event_time(&self) -> Option<Time> {
        self.last_step
    }

    fn supports_batched_advance(&self) -> bool {
        // A mid-batch corruption NACK would re-inject its retry after the
        // inner network had already advanced past the backoff expiry, so
        // batching is only sound with the transient model off; fault and
        // retry instants are known ahead of time and bound each stretch.
        self.transient <= 0.0 && self.inner.supports_batched_advance()
    }

    fn slab_stats(&self) -> Option<netcore::SlabStats> {
        self.inner.slab_stats()
    }

    fn stats(&self) -> &NetStats {
        self.inner.stats()
    }

    fn events_processed(&self) -> u64 {
        self.inner.events_processed()
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.clone();
        self.inner.set_tracer(tracer);
    }

    fn apply_fault(&mut self, fault: NetFault, now: Time) -> FaultResponse {
        self.apply_one(fault, now)
    }
}
