//! The fault-plan DSL: what fails, when, and how the system recovers.
//!
//! A [`FaultPlan`] is parsed from a compact clause language (one string on
//! the command line) and compiled against a grid, seed and horizon into a
//! deterministic, time-sorted schedule of [`NetFault`]s:
//!
//! ```text
//! link:3->17@2us; site:12@1us; laser:5@500ns;
//! rand-links=4; transient=0.01; repair=10us; retries=8; backoff=100ns
//! ```
//!
//! Clauses are `;`-separated. `link`/`laser`/`site` schedule explicit
//! faults at fixed instants; `rand-links=N` draws `N` extra link kills
//! from the seeded RNG; `transient=P` (or `transient=xtalk:K` to derive
//! `P` from the waveguide-crossing crosstalk model) sets the per-packet
//! corruption probability; `repair=SPAN` auto-repairs every link/laser
//! kill after `SPAN`; `retries`/`backoff` shape the delivery contract and
//! `no-recovery` disables it. The empty string and `none` parse to the
//! no-fault plan, under which the resilience wrapper is a pure
//! pass-through.

use desim::{SimRng, Span, Time};
use netcore::{Grid, NetFault, SiteId};
use photonics::crosstalk::CrossingModel;
use std::fmt;

/// Salt mixed into the plan seed for the random-link-kill stream, so it
/// is decorrelated from the traffic generator using the same seed.
const RAND_LINK_SALT: u64 = 0xFA17_707A_57A7_1C00;

/// A malformed fault-plan specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A clause whose head is not part of the grammar.
    UnknownClause(String),
    /// A time that is not `<integer>(ps|ns|us)`.
    BadTime(String),
    /// An unparsable count, probability or site index.
    BadNumber(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownClause(c) => write!(f, "unknown fault-plan clause '{c}'"),
            PlanError::BadTime(t) => write!(f, "bad time '{t}' (want e.g. 500ns, 2us, 100ps)"),
            PlanError::BadNumber(n) => write!(f, "bad number '{n}'"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One explicitly scheduled fault, in grid-independent form (raw site
/// indices; [`FaultPlan::schedule`] wraps them modulo the grid size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedFault {
    /// When the fault strikes.
    pub at: Time,
    /// What fails.
    pub what: FaultSpec,
}

/// The failing element of a [`PlannedFault`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Permanent kill of the directed link `src -> dst`.
    Link { src: usize, dst: usize },
    /// Loss of half the site's laser channels.
    Laser { site: usize },
    /// Whole-die failure.
    Site { site: usize },
}

/// Per-packet transient corruption model.
///
/// Transients stand in for bit-error bursts; the probability can be set
/// directly or derived from the waveguide-crossing crosstalk model: the
/// fraction of optical eye margin consumed by coherent crosstalk beating
/// (`1 - 10^(-penalty_dB/10)`) is taken as the probability that a packet
/// crossing `k` waveguides arrives corrupted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientModel {
    /// Probability, in `[0, 1]`, that any one delivery is corrupted.
    pub per_packet: f64,
}

impl TransientModel {
    /// No transient faults.
    pub fn off() -> TransientModel {
        TransientModel { per_packet: 0.0 }
    }

    /// A fixed per-packet corruption probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn fixed(p: f64) -> TransientModel {
        assert!((0.0..=1.0).contains(&p), "corruption probability {p}");
        TransientModel { per_packet: p }
    }

    /// Derives the corruption probability from `crossings` waveguide
    /// crossings under `model`. A closed eye (unbounded penalty) maps to
    /// certainty.
    pub fn from_crosstalk(model: &CrossingModel, crossings: u32) -> TransientModel {
        let per_packet = match model.power_penalty(crossings) {
            Some(penalty) => 1.0 - 10f64.powf(-penalty.value() / 10.0),
            None => 1.0,
        };
        TransientModel { per_packet }
    }
}

/// The delivery contract: timeout-free NACK-and-retry with exponential
/// backoff, bounded by `max_retries`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// When false, corrupted and evicted packets are dropped outright.
    pub enabled: bool,
    /// Retransmission attempts before a packet is declared lost.
    pub max_retries: u32,
    /// First retry delay; attempt `n` waits `backoff * 2^(n-1)`.
    pub backoff: Span,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            enabled: true,
            max_retries: 8,
            backoff: Span::from_ns(100),
        }
    }
}

impl RecoveryPolicy {
    /// The backoff before retry attempt `attempt` (1-based), doubling per
    /// attempt and capped at 1024x the base so schedules stay bounded.
    pub fn backoff_for(&self, attempt: u32) -> Span {
        let exp = attempt.saturating_sub(1).min(10);
        self.backoff * (1u64 << exp)
    }
}

/// A complete, grid-independent description of a fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Explicitly scheduled faults, in specification order.
    pub events: Vec<PlannedFault>,
    /// Extra link kills drawn from the seeded RNG across the horizon.
    pub rand_links: u32,
    /// Per-packet transient corruption.
    pub transient: TransientModel,
    /// Auto-repair delay for link/laser kills (site kills are permanent).
    pub repair_after: Option<Span>,
    /// The delivery contract.
    pub recovery: RecoveryPolicy,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The no-fault plan: scheduling nothing, corrupting nothing.
    pub fn none() -> FaultPlan {
        FaultPlan {
            events: Vec::new(),
            rand_links: 0,
            transient: TransientModel::off(),
            repair_after: None,
            recovery: RecoveryPolicy::default(),
        }
    }

    /// True when the plan injects no faults at all, making the resilience
    /// wrapper a pure pass-through that reproduces baseline numbers.
    pub fn is_none(&self) -> bool {
        self.events.is_empty() && self.rand_links == 0 && self.transient.per_packet == 0.0
    }

    /// Parses the clause language described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanError`] naming the offending clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, PlanError> {
        let mut plan = FaultPlan::none();
        let trimmed = spec.trim();
        if trimmed.is_empty() || trimmed == "none" {
            return Ok(plan);
        }
        for clause in trimmed.split(';') {
            let c = clause.trim();
            if c.is_empty() {
                continue;
            }
            if let Some(rest) = c.strip_prefix("link:") {
                let (pair, at) = split_at(rest)?;
                let (s, d) = pair
                    .split_once("->")
                    .ok_or_else(|| PlanError::UnknownClause(c.to_string()))?;
                plan.events.push(PlannedFault {
                    at,
                    what: FaultSpec::Link {
                        src: parse_number(s)?,
                        dst: parse_number(d)?,
                    },
                });
            } else if let Some(rest) = c.strip_prefix("laser:") {
                let (site, at) = split_at(rest)?;
                plan.events.push(PlannedFault {
                    at,
                    what: FaultSpec::Laser {
                        site: parse_number(site)?,
                    },
                });
            } else if let Some(rest) = c.strip_prefix("site:") {
                let (site, at) = split_at(rest)?;
                plan.events.push(PlannedFault {
                    at,
                    what: FaultSpec::Site {
                        site: parse_number(site)?,
                    },
                });
            } else if let Some(v) = c.strip_prefix("rand-links=") {
                plan.rand_links = parse_number(v)? as u32;
            } else if let Some(v) = c.strip_prefix("transient=") {
                if let Some(k) = v.strip_prefix("xtalk:") {
                    plan.transient = TransientModel::from_crosstalk(
                        &CrossingModel::bogaerts_optimized(),
                        parse_number(k)? as u32,
                    );
                } else {
                    let p: f64 = v.parse().map_err(|_| PlanError::BadNumber(v.to_string()))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(PlanError::BadNumber(v.to_string()));
                    }
                    plan.transient = TransientModel { per_packet: p };
                }
            } else if let Some(v) = c.strip_prefix("repair=") {
                plan.repair_after = Some(parse_span(v)?);
            } else if let Some(v) = c.strip_prefix("retries=") {
                plan.recovery.max_retries = parse_number(v)? as u32;
            } else if let Some(v) = c.strip_prefix("backoff=") {
                plan.recovery.backoff = parse_span(v)?;
            } else if c == "no-recovery" {
                plan.recovery.enabled = false;
            } else {
                return Err(PlanError::UnknownClause(c.to_string()));
            }
        }
        Ok(plan)
    }

    /// The canonical specification string: `parse(to_spec())` yields an
    /// equivalent plan, and equal plans yield byte-identical strings
    /// (recorded in the run manifest for provenance).
    pub fn to_spec(&self) -> String {
        if self.is_none() && self.recovery == RecoveryPolicy::default() {
            return String::from("none");
        }
        let mut clauses: Vec<String> = Vec::new();
        for e in &self.events {
            let at = fmt_span(Span::from_ps(e.at.as_ps()));
            clauses.push(match e.what {
                FaultSpec::Link { src, dst } => format!("link:{src}->{dst}@{at}"),
                FaultSpec::Laser { site } => format!("laser:{site}@{at}"),
                FaultSpec::Site { site } => format!("site:{site}@{at}"),
            });
        }
        if self.rand_links > 0 {
            clauses.push(format!("rand-links={}", self.rand_links));
        }
        if self.transient.per_packet > 0.0 {
            clauses.push(format!("transient={}", self.transient.per_packet));
        }
        if let Some(r) = self.repair_after {
            clauses.push(format!("repair={}", fmt_span(r)));
        }
        if self.recovery.enabled {
            let d = RecoveryPolicy::default();
            if self.recovery.max_retries != d.max_retries {
                clauses.push(format!("retries={}", self.recovery.max_retries));
            }
            if self.recovery.backoff != d.backoff {
                clauses.push(format!("backoff={}", fmt_span(self.recovery.backoff)));
            }
        } else {
            clauses.push(String::from("no-recovery"));
        }
        clauses.join("; ")
    }

    /// Compiles the plan into a time-sorted fault schedule for `grid`.
    ///
    /// Raw site indices wrap modulo the grid size, so every plan is total
    /// on every grid. Random link kills are drawn from `seed` (decorrelated
    /// from the traffic stream by a fixed salt) across `[0, horizon)`;
    /// identical `(plan, grid, seed, horizon)` inputs produce
    /// byte-identical schedules.
    pub fn schedule(&self, grid: &Grid, seed: u64, horizon: Time) -> Vec<(Time, NetFault)> {
        let sites = grid.sites();
        let mut out: Vec<(Time, NetFault)> = Vec::new();
        let push_with_repair = |at: Time, fault: NetFault, out: &mut Vec<(Time, NetFault)>| {
            out.push((at, fault));
            if let Some(delay) = self.repair_after {
                let repair = match fault {
                    NetFault::LinkKill { src, dst } => Some(NetFault::LinkRepair { src, dst }),
                    NetFault::LaserLoss { site } => Some(NetFault::LaserRestore { site }),
                    _ => None,
                };
                if let Some(r) = repair {
                    out.push((at + delay, r));
                }
            }
        };
        for e in &self.events {
            let fault = match e.what {
                FaultSpec::Link { src, dst } => NetFault::LinkKill {
                    src: SiteId::from_index(src % sites),
                    dst: SiteId::from_index(dst % sites),
                },
                FaultSpec::Laser { site } => NetFault::LaserLoss {
                    site: SiteId::from_index(site % sites),
                },
                FaultSpec::Site { site } => NetFault::SiteKill {
                    site: SiteId::from_index(site % sites),
                },
            };
            push_with_repair(e.at, fault, &mut out);
        }
        if self.rand_links > 0 {
            let mut rng = SimRng::new(seed ^ RAND_LINK_SALT);
            let horizon_ps = horizon.as_ps().max(1);
            for _ in 0..self.rand_links {
                let src = rng.range(0..sites);
                let mut dst = rng.range(0..sites);
                if dst == src {
                    dst = (dst + 1) % sites;
                }
                let at = Time::from_ps(rng.range(0..horizon_ps));
                push_with_repair(
                    at,
                    NetFault::LinkKill {
                        src: SiteId::from_index(src),
                        dst: SiteId::from_index(dst),
                    },
                    &mut out,
                );
            }
        }
        out.sort_by_key(|(at, fault)| {
            (
                *at,
                fault.is_recovery(),
                fault.name(),
                fault.site().index(),
                fault.peer().index(),
            )
        });
        out
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_spec())
    }
}

/// Splits `body@TIME` into the body and the parsed time.
fn split_at(s: &str) -> Result<(&str, Time), PlanError> {
    let (body, at) = s
        .split_once('@')
        .ok_or_else(|| PlanError::BadTime(s.to_string()))?;
    Ok((body, Time::ZERO + parse_span(at)?))
}

fn parse_number(s: &str) -> Result<usize, PlanError> {
    s.trim()
        .parse()
        .map_err(|_| PlanError::BadNumber(s.to_string()))
}

fn parse_span(s: &str) -> Result<Span, PlanError> {
    let t = s.trim();
    let (digits, scale) = if let Some(d) = t.strip_suffix("ns") {
        (d, 1_000u64)
    } else if let Some(d) = t.strip_suffix("us") {
        (d, 1_000_000)
    } else if let Some(d) = t.strip_suffix("ps") {
        (d, 1)
    } else {
        return Err(PlanError::BadTime(t.to_string()));
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| PlanError::BadTime(t.to_string()))?;
    Ok(Span::from_ps(n * scale))
}

/// Formats a span losslessly in the largest exact unit.
fn fmt_span(s: Span) -> String {
    let ps = s.as_ps();
    if ps.is_multiple_of(1_000_000) {
        format!("{}us", ps / 1_000_000)
    } else if ps.is_multiple_of(1_000) {
        format!("{}ns", ps / 1_000)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        netcore::MacrochipConfig::scaled().grid
    }

    #[test]
    fn parses_the_worked_example() {
        let plan = FaultPlan::parse(
            "link:3->17@2us; site:12@1us; laser:5@500ns; \
             rand-links=4; transient=0.01; repair=10us; retries=8; backoff=100ns",
        )
        .unwrap();
        assert_eq!(plan.events.len(), 3);
        assert_eq!(plan.rand_links, 4);
        assert!((plan.transient.per_packet - 0.01).abs() < 1e-12);
        assert_eq!(plan.repair_after, Some(Span::from_us(10)));
        assert!(plan.recovery.enabled);
        assert_eq!(plan.recovery.max_retries, 8);
    }

    #[test]
    fn empty_and_none_are_the_no_fault_plan() {
        assert!(FaultPlan::parse("").unwrap().is_none());
        assert!(FaultPlan::parse("none").unwrap().is_none());
        assert_eq!(FaultPlan::none().to_spec(), "none");
    }

    #[test]
    fn bad_clauses_are_typed_errors() {
        assert!(matches!(
            FaultPlan::parse("explode:now"),
            Err(PlanError::UnknownClause(_))
        ));
        assert!(matches!(
            FaultPlan::parse("link:1->2@fast"),
            Err(PlanError::BadTime(_))
        ));
        assert!(matches!(
            FaultPlan::parse("transient=2.0"),
            Err(PlanError::BadNumber(_))
        ));
    }

    #[test]
    fn spec_round_trips() {
        let spec = "link:3->17@2us; laser:5@500ns; rand-links=2; \
                    transient=0.01; repair=10us; backoff=50ns";
        let plan = FaultPlan::parse(spec).unwrap();
        let again = FaultPlan::parse(&plan.to_spec()).unwrap();
        assert_eq!(plan, again);
    }

    #[test]
    fn schedule_interleaves_repairs_in_time_order() {
        let plan = FaultPlan::parse("link:0->1@1us; laser:2@2us; repair=500ns").unwrap();
        let sched = plan.schedule(&grid(), 7, Time::from_us(100));
        let names: Vec<_> = sched.iter().map(|(_, f)| f.name()).collect();
        assert_eq!(
            names,
            ["link-kill", "link-repair", "laser-loss", "laser-restore"]
        );
        assert_eq!(sched[1].0, Time::from_ns(1_500));
    }

    #[test]
    fn identical_seeds_give_identical_schedules() {
        let plan = FaultPlan::parse("rand-links=16; repair=1us").unwrap();
        let a = plan.schedule(&grid(), 42, Time::from_us(50));
        let b = plan.schedule(&grid(), 42, Time::from_us(50));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.len(), 32);
        let c = plan.schedule(&grid(), 43, Time::from_us(50));
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn crosstalk_derived_transients_scale_with_crossings() {
        let few = TransientModel::from_crosstalk(&CrossingModel::bogaerts_optimized(), 8);
        let many = TransientModel::from_crosstalk(&CrossingModel::bogaerts_optimized(), 256);
        assert!(few.per_packet > 0.0 && few.per_packet < many.per_packet);
        // A plain crossing closes the eye after a handful of crossings.
        let closed = TransientModel::from_crosstalk(&CrossingModel::bogaerts_plain(), 4);
        assert_eq!(closed.per_packet, 1.0);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RecoveryPolicy::default();
        assert_eq!(r.backoff_for(1), Span::from_ns(100));
        assert_eq!(r.backoff_for(2), Span::from_ns(200));
        assert_eq!(r.backoff_for(4), Span::from_ns(800));
        assert_eq!(r.backoff_for(40), r.backoff_for(11));
    }
}
