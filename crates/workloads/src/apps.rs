//! Application-kernel workload models (paper Table 2).
//!
//! The paper drives its network simulator with L2-miss coherence traffic
//! produced by an instruction-trace CPU simulator running two SPLASH-2
//! and three PARSEC kernels. Those traces are proprietary; this module
//! substitutes a *statistical trace* per benchmark, replayed against real
//! per-site L2 caches and real full-map directories — so owners, sharers,
//! upgrades and cache-to-cache transfers emerge from genuine MOESI state,
//! exactly the stimulus class the paper's network simulator consumed
//! (see DESIGN.md §2).
//!
//! Each profile is characterized by:
//! * its miss intensity (mean compute gap between miss *attempts*);
//! * the fraction of accesses to per-core private streaming data (cold
//!   misses to uniformly interleaved homes) versus the hot shared region;
//! * its write fraction;
//! * whether sharing is neighbor-local (Fluidanimate's boundary exchange)
//!   or global (Radix's permutation, Barnes' irregular tree).
//!
//! Calibration follows the paper's qualitative statements: Barnes has a
//! low L2 miss rate and stresses no network (§6.2); Swaptions generates
//! the heaviest directory traffic (largest speedup spread, §6.2).

use coherence::cache::{SetAssocCache, LINE_BYTES};
use coherence::directory::{home_site, Directory};
use coherence::ops::{NextMiss, OpKind, OpSource, OpSpec};
use coherence::protocol::{remote_read, MoesiState};
use desim::{SimRng, Span};
use netcore::{Grid, SiteId};

/// Private streaming regions start here (line addresses), far above any
/// shared region.
const PRIVATE_BASE: u64 = 1 << 40;

/// Lines in one core's private streaming window.
const PRIVATE_STRIDE: u64 = 1 << 20;

/// Lines per neighbor-pair boundary region (Fluidanimate-style sharing).
const LINES_PER_PAIR: u64 = 256;

/// A statistical model of one application kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Mean compute time between memory-burst attempts per core.
    pub mean_gap: Span,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Fraction of accesses to private streaming data.
    pub private_fraction: f64,
    /// Size of the hot shared region, in cache lines.
    pub shared_lines: u64,
    /// Whether shared data is exchanged with grid neighbors only.
    pub neighbor_locality: bool,
    /// Coherence operations (L2 misses) each core performs.
    pub ops_per_core: u32,
}

impl AppProfile {
    /// The paper's six application workloads (Table 2; Fluidanimate
    /// contributes two kernels).
    pub fn suite() -> Vec<AppProfile> {
        vec![
            AppProfile {
                // Radix sort: bulk key exchange, heavy all-to-all traffic.
                name: "Radix",
                mean_gap: Span::from_ps(5_000),
                write_fraction: 0.5,
                private_fraction: 0.6,
                shared_lines: 16_384,
                neighbor_locality: false,
                ops_per_core: 200,
            },
            AppProfile {
                // Barnes-Hut: low L2 miss rate, does not stress the
                // network (paper §6.2).
                name: "Barnes",
                mean_gap: Span::from_ps(40_000),
                write_fraction: 0.3,
                private_fraction: 0.3,
                shared_lines: 8_192,
                neighbor_locality: false,
                ops_per_core: 100,
            },
            AppProfile {
                // Blackscholes: embarrassingly parallel option pricing,
                // mostly private streaming.
                name: "Blackscholes",
                mean_gap: Span::from_ps(10_000),
                write_fraction: 0.25,
                private_fraction: 0.9,
                shared_lines: 4_096,
                neighbor_locality: false,
                ops_per_core: 200,
            },
            AppProfile {
                // Fluidanimate densities: boundary exchange with grid
                // neighbors, moderate sharing.
                name: "Densities",
                mean_gap: Span::from_ps(7_000),
                write_fraction: 0.3,
                private_fraction: 0.5,
                shared_lines: 8_192,
                neighbor_locality: true,
                ops_per_core: 200,
            },
            AppProfile {
                // Fluidanimate forces: like densities but write-heavier
                // (force accumulation into shared particles).
                name: "Forces",
                mean_gap: Span::from_ps(7_000),
                write_fraction: 0.5,
                private_fraction: 0.4,
                shared_lines: 8_192,
                neighbor_locality: true,
                ops_per_core: 200,
            },
            AppProfile {
                // Swaptions: heaviest directory traffic; the paper's
                // largest speedup spread (8.3x) is on this kernel.
                name: "Swaptions",
                mean_gap: Span::from_ps(4_000),
                write_fraction: 0.35,
                private_fraction: 0.95,
                shared_lines: 4_096,
                neighbor_locality: false,
                ops_per_core: 250,
            },
        ]
    }

    /// This profile with a different per-core operation budget (used to
    /// scale experiment runtimes).
    pub fn with_ops_per_core(mut self, ops: u32) -> AppProfile {
        self.ops_per_core = ops;
        self
    }
}

/// The replayable workload: profile + caches + directories.
///
/// # Example
///
/// ```
/// use coherence::ops::OpSource;
/// use netcore::Grid;
/// use workloads::AppProfile;
/// use workloads::AppWorkload;
///
/// let grid = Grid::new(8);
/// let profile = AppProfile::suite()[0]; // Radix
/// let mut w = AppWorkload::new(&grid, profile, 42);
/// let miss = w.next_miss(grid.site(0, 0), 0).unwrap();
/// miss.op.validate();
/// ```
pub struct AppWorkload {
    profile: AppProfile,
    grid: Grid,
    caches: Vec<SetAssocCache>,
    dirs: Vec<Directory>,
    rng: SimRng,
    remaining: Vec<u32>,
    private_cursor: Vec<u64>,
    cores_per_site: usize,
}

impl AppWorkload {
    /// Builds the workload's caches and directories for `grid`.
    pub fn new(grid: &Grid, profile: AppProfile, seed: u64) -> AppWorkload {
        let cores_per_site = 8;
        let sites = grid.sites();
        AppWorkload {
            profile,
            grid: *grid,
            caches: (0..sites)
                .map(|_| SetAssocCache::new(256 * 1024, 16))
                .collect(),
            dirs: (0..sites).map(|_| Directory::new()).collect(),
            rng: SimRng::new(seed),
            remaining: vec![profile.ops_per_core; sites * cores_per_site],
            private_cursor: vec![0; sites * cores_per_site],
            cores_per_site,
        }
    }

    /// The profile being replayed.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    fn core_slot(&self, site: SiteId, core: usize) -> usize {
        site.index() * self.cores_per_site + core
    }

    /// The next line address touched by (site, core), plus write flag.
    fn gen_access(&mut self, site: SiteId, core: usize) -> (u64, bool) {
        let is_write = self.rng.chance(self.profile.write_fraction);
        if self.rng.chance(self.profile.private_fraction) {
            let slot = self.core_slot(site, core);
            let cursor = self.private_cursor[slot];
            self.private_cursor[slot] += 1;
            let gid = slot as u64;
            (PRIVATE_BASE + gid * PRIVATE_STRIDE + cursor, is_write)
        } else if self.profile.neighbor_locality {
            // Boundary region shared with one random grid neighbor; the
            // home is anchored at one end of the pair, keeping coherence
            // traffic neighbor-local.
            let (x, y) = self.grid.coord(site);
            let side = self.grid.side();
            let mut nbs: Vec<SiteId> = Vec::with_capacity(4);
            if x > 0 {
                nbs.push(self.grid.site(x - 1, y));
            }
            if x + 1 < side {
                nbs.push(self.grid.site(x + 1, y));
            }
            if y > 0 {
                nbs.push(self.grid.site(x, y - 1));
            }
            if y + 1 < side {
                nbs.push(self.grid.site(x, y + 1));
            }
            let nb = *self.rng.choose(&nbs);
            let lo = site.index().min(nb.index()) as u64;
            let hi = site.index().max(nb.index()) as u64;
            let region = lo * self.grid.sites() as u64 + hi;
            let r = self.rng.range(0..LINES_PER_PAIR);
            let anchor = if self.rng.chance(0.5) { lo } else { hi };
            (((region * LINES_PER_PAIR + r) << 6) | anchor, is_write)
        } else {
            (self.rng.range(0..self.profile.shared_lines), is_write)
        }
    }

    /// Applies the directory/cache effects of a completed miss and builds
    /// its [`OpSpec`]. Updates happen at generation time — the paper
    /// likewise skips the protocol's transient intricacies (§5).
    fn build_miss(&mut self, site: SiteId, line: u64, is_write: bool, upgrade: bool) -> OpSpec {
        let home = home_site(line, self.grid.sites());
        let entry = self.dirs[home.index()].entry(line);
        let owner = entry.owner.filter(|&o| o != site);
        let others = entry.sharers_except(site);

        let (kind, sharers) = if upgrade {
            (OpKind::Upgrade, others.clone())
        } else if is_write {
            (OpKind::Write, others.clone())
        } else {
            (OpKind::Read, Vec::new())
        };

        let addr = line * LINE_BYTES;
        if is_write || upgrade {
            for s in &others {
                self.caches[s.index()].set_state(addr, MoesiState::Invalid);
            }
            if let Some(o) = owner {
                self.caches[o.index()].set_state(addr, MoesiState::Invalid);
            }
            self.dirs[home.index()].record_write(line, site);
            self.insert_line(site, addr, MoesiState::Modified);
        } else {
            if let Some(o) = owner {
                let prev = self.caches[o.index()]
                    .peek(addr)
                    .unwrap_or(MoesiState::Owned);
                self.caches[o.index()].set_state(addr, remote_read(prev));
            }
            self.dirs[home.index()].record_read(line, site);
            let state = if owner.is_none() && others.is_empty() {
                MoesiState::Exclusive
            } else {
                MoesiState::Shared
            };
            self.insert_line(site, addr, state);
        }

        OpSpec {
            requester: site,
            home,
            kind,
            owner,
            sharers,
            line,
        }
    }

    /// Inserts into the site's L2, reflecting any eviction back into the
    /// victim's home directory (silent eviction, like the paper's
    /// simplified protocol).
    fn insert_line(&mut self, site: SiteId, addr: u64, state: MoesiState) {
        if let Some((victim_addr, _)) = self.caches[site.index()].insert(addr, state) {
            let victim_line = victim_addr / LINE_BYTES;
            let victim_home = home_site(victim_line, self.grid.sites());
            self.dirs[victim_home.index()].record_evict(victim_line, site);
        }
    }
}

impl OpSource for AppWorkload {
    fn next_miss(&mut self, site: SiteId, core: usize) -> Option<NextMiss> {
        if core >= self.cores_per_site {
            return None;
        }
        let slot = self.core_slot(site, core);
        if self.remaining[slot] == 0 {
            return None;
        }

        let mut gap = Span::ZERO;
        // Walk the access stream until something misses; the compute gap
        // accumulates across the hits in between.
        for _ in 0..100_000 {
            gap += self.rng.exp_span(self.profile.mean_gap);
            let (line, is_write) = self.gen_access(site, core);
            let addr = line * LINE_BYTES;
            let state = self.caches[site.index()].probe(addr);
            match state {
                Some(s) if !is_write && s.is_readable() => continue, // hit
                Some(s) if is_write && s.is_writable() => {
                    // Silent E->M upgrade stays local but updates the
                    // directory's notion of ownership.
                    if s == MoesiState::Exclusive {
                        let home = home_site(line, self.grid.sites());
                        self.dirs[home.index()].record_write(line, site);
                        self.caches[site.index()].set_state(addr, MoesiState::Modified);
                    }
                    continue; // hit
                }
                Some(_) if is_write => {
                    // Shared/Owned write: upgrade miss.
                    self.remaining[slot] -= 1;
                    let op = self.build_miss(site, line, true, true);
                    return Some(NextMiss { gap, op });
                }
                _ => {
                    // Cold or invalidated: plain miss.
                    self.remaining[slot] -= 1;
                    let op = self.build_miss(site, line, is_write, false);
                    return Some(NextMiss { gap, op });
                }
            }
        }
        // The working set degenerated into the cache; treat the core as
        // finished rather than spinning forever.
        self.remaining[slot] = 0;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(8)
    }

    fn radix() -> AppProfile {
        AppProfile::suite()[0]
    }

    #[test]
    fn suite_matches_table2() {
        let names: Vec<_> = AppProfile::suite().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "Radix",
                "Barnes",
                "Blackscholes",
                "Densities",
                "Forces",
                "Swaptions"
            ]
        );
    }

    #[test]
    fn misses_respect_the_per_core_budget() {
        let g = grid();
        let profile = radix().with_ops_per_core(5);
        let mut w = AppWorkload::new(&g, profile, 1);
        let site = g.site(0, 0);
        let mut n = 0;
        while w.next_miss(site, 0).is_some() {
            n += 1;
        }
        assert_eq!(n, 5);
    }

    #[test]
    fn specs_are_internally_consistent() {
        let g = grid();
        let mut w = AppWorkload::new(&g, radix().with_ops_per_core(50), 2);
        for site in g.iter().take(8) {
            for core in 0..2 {
                while let Some(m) = w.next_miss(site, core) {
                    m.op.validate();
                    assert_eq!(m.op.home, home_site(m.op.line, 64));
                }
            }
        }
    }

    #[test]
    fn sharing_emerges_from_real_directory_state() {
        let g = grid();
        // A write-heavy, fully shared profile must produce owners or
        // sharers once several sites touch the same hot lines.
        let profile = AppProfile {
            name: "test",
            mean_gap: Span::from_ps(1_000),
            write_fraction: 0.5,
            private_fraction: 0.0,
            shared_lines: 512,
            neighbor_locality: false,
            ops_per_core: 100,
        };
        let mut w = AppWorkload::new(&g, profile, 3);
        let mut with_remote_state = 0;
        let mut total = 0;
        for site in g.iter() {
            while let Some(m) = w.next_miss(site, 0) {
                total += 1;
                if m.op.owner.is_some() || !m.op.sharers.is_empty() {
                    with_remote_state += 1;
                }
            }
        }
        assert!(total > 500, "total {total}");
        assert!(
            with_remote_state * 5 > total,
            "only {with_remote_state}/{total} ops saw remote state"
        );
    }

    #[test]
    fn neighbor_locality_keeps_homes_adjacent() {
        let g = grid();
        let profile = AppProfile {
            name: "test",
            mean_gap: Span::from_ps(1_000),
            write_fraction: 0.3,
            private_fraction: 0.0,
            shared_lines: 512,
            neighbor_locality: true,
            ops_per_core: 60,
        };
        let mut w = AppWorkload::new(&g, profile, 4);
        let site = g.site(3, 3);
        while let Some(m) = w.next_miss(site, 0) {
            let (hx, hy) = g.coord(m.op.home);
            let d = hx.abs_diff(3) + hy.abs_diff(3);
            assert!(d <= 1, "home {} is {} hops away", m.op.home, d);
        }
    }

    #[test]
    fn private_streaming_always_cold_misses() {
        let g = grid();
        let profile = AppProfile {
            name: "test",
            mean_gap: Span::from_ps(1_000),
            write_fraction: 0.0,
            private_fraction: 1.0,
            shared_lines: 64,
            neighbor_locality: false,
            ops_per_core: 50,
        };
        let mut w = AppWorkload::new(&g, profile, 5);
        let site = g.site(0, 0);
        let mut lines = std::collections::HashSet::new();
        while let Some(m) = w.next_miss(site, 0) {
            assert_eq!(m.op.kind, OpKind::Read);
            assert!(m.op.owner.is_none());
            assert!(lines.insert(m.op.line), "revisited a streaming line");
        }
        assert_eq!(lines.len(), 50);
    }

    #[test]
    fn barnes_is_the_lightest_workload() {
        // The paper: Barnes has a relatively low L2 miss rate.
        let suite = AppProfile::suite();
        let barnes = suite.iter().find(|p| p.name == "Barnes").unwrap();
        for p in &suite {
            assert!(barnes.mean_gap >= p.mean_gap, "{} is lighter", p.name);
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let g = grid();
        let collect = |seed| {
            let mut w = AppWorkload::new(&g, radix().with_ops_per_core(20), seed);
            let mut v = Vec::new();
            while let Some(m) = w.next_miss(g.site(0, 0), 0) {
                v.push((m.op.line, m.op.kind));
            }
            v
        };
        assert_eq!(collect(7), collect(7));
    }
}
