//! The synthetic message patterns of the paper's Table 3.

use desim::SimRng;
use netcore::{Grid, SiteId};
use std::fmt;

/// A synthetic communication pattern (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Random destination for every packet.
    Uniform,
    /// First half of the site-id bits swapped with the second half.
    Transpose,
    /// LSB and MSB of the site id swapped.
    Butterfly,
    /// Random choice among the (up to four) grid neighbors.
    Neighbor,
    /// Every site cycles through all other sites.
    AllToAll,
    /// Mostly uniform, with a fraction of all traffic aimed at one hot
    /// site (an extension beyond the paper's Table 3; hot-spot fraction
    /// 10%, hot site = the grid center).
    HotSpot,
}

impl Pattern {
    /// The four patterns of Figure 6's load sweeps.
    pub const FIGURE6: [Pattern; 4] = [
        Pattern::Uniform,
        Pattern::Transpose,
        Pattern::Neighbor,
        Pattern::Butterfly,
    ];

    /// The synthetic columns of Figures 7/8 (Transpose appears twice
    /// there, once per sharing mix).
    pub const FIGURE7: [Pattern; 4] = [
        Pattern::AllToAll,
        Pattern::Transpose,
        Pattern::Neighbor,
        Pattern::Butterfly,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Pattern::Uniform => "Uniform",
            Pattern::Transpose => "Transpose",
            Pattern::Butterfly => "Butterfly",
            Pattern::Neighbor => "Neighbor",
            Pattern::AllToAll => "All-to-all",
            Pattern::HotSpot => "Hot-spot",
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stateful destination generator for a pattern (all-to-all cycles through
/// destinations per source; the random patterns draw from the provided
/// RNG).
///
/// # Example
///
/// ```
/// use desim::SimRng;
/// use netcore::Grid;
/// use workloads::{DestinationGen, Pattern};
///
/// let grid = Grid::new(8);
/// let mut rng = SimRng::new(1);
/// let mut gen = DestinationGen::new(Pattern::Transpose, &grid);
/// // Site 1 = 0b000001 -> 0b001000 = site 8.
/// let dst = gen.next(grid.site(1, 0), &grid, &mut rng);
/// assert_eq!(dst.index(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct DestinationGen {
    pattern: Pattern,
    /// Per-source cursor for the all-to-all sweep.
    cursors: Vec<usize>,
}

impl DestinationGen {
    /// Creates a generator for `pattern` on `grid`.
    ///
    /// # Panics
    ///
    /// Panics for the bit-permutation patterns (transpose, butterfly) if
    /// the site count is not a power of two, and for the patterns that
    /// target a *different* site (uniform, neighbor, hot-spot, butterfly)
    /// on a single-site grid, which has no peer to send to. Transpose and
    /// all-to-all degenerate to loop-back traffic on one site and are
    /// allowed.
    pub fn new(pattern: Pattern, grid: &Grid) -> DestinationGen {
        if matches!(pattern, Pattern::Transpose | Pattern::Butterfly) {
            assert!(
                grid.sites().is_power_of_two(),
                "bit-permutation patterns need a power-of-two site count"
            );
        }
        if matches!(
            pattern,
            Pattern::Uniform | Pattern::Neighbor | Pattern::HotSpot | Pattern::Butterfly
        ) {
            assert!(
                grid.sites() > 1,
                "{pattern} needs at least two sites; a 1x1 grid has no peer to target"
            );
        }
        DestinationGen {
            pattern,
            cursors: vec![1; grid.sites()],
        }
    }

    /// The pattern this generator draws from.
    pub fn pattern(&self) -> Pattern {
        self.pattern
    }

    /// The next destination for a packet from `src`. May equal `src` for
    /// the bit-permutation patterns (intra-site traffic, handled by the
    /// networks' loop-back path).
    pub fn next(&mut self, src: SiteId, grid: &Grid, rng: &mut SimRng) -> SiteId {
        let sites = grid.sites();
        let bits = sites.trailing_zeros() as usize;
        match self.pattern {
            Pattern::Uniform => {
                // Uniform over the *other* sites.
                let mut d = rng.range(0..sites - 1);
                if d >= src.index() {
                    d += 1;
                }
                SiteId::from_index(d)
            }
            Pattern::Transpose => {
                let id = src.index();
                let half = bits / 2;
                let low_mask = (1 << half) - 1;
                SiteId::from_index(((id & low_mask) << (bits - half)) | (id >> half))
            }
            Pattern::Butterfly => {
                let id = src.index();
                let b_low = id & 1;
                let b_high = (id >> (bits - 1)) & 1;
                let middle = id & !(1 | (1 << (bits - 1)));
                SiteId::from_index(middle | (b_low << (bits - 1)) | b_high)
            }
            Pattern::Neighbor => {
                let (x, y) = grid.coord(src);
                let side = grid.side();
                let mut neighbors: Vec<SiteId> = Vec::with_capacity(4);
                if x > 0 {
                    neighbors.push(grid.site(x - 1, y));
                }
                if x + 1 < side {
                    neighbors.push(grid.site(x + 1, y));
                }
                if y > 0 {
                    neighbors.push(grid.site(x, y - 1));
                }
                if y + 1 < side {
                    neighbors.push(grid.site(x, y + 1));
                }
                *rng.choose(&neighbors)
            }
            Pattern::HotSpot => {
                let side = grid.side();
                let hot = grid.site(side / 2, side / 2);
                if src != hot && rng.chance(0.1) {
                    hot
                } else {
                    // Uniform over the other sites.
                    let mut d = rng.range(0..sites - 1);
                    if d >= src.index() {
                        d += 1;
                    }
                    SiteId::from_index(d)
                }
            }
            Pattern::AllToAll => {
                let cursor = &mut self.cursors[src.index()];
                let d = (src.index() + *cursor) % sites;
                *cursor += 1;
                if *cursor >= sites {
                    *cursor = 1;
                }
                SiteId::from_index(d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(8)
    }

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    #[test]
    fn transpose_swaps_bit_halves() {
        let g = grid();
        let mut dg = DestinationGen::new(Pattern::Transpose, &g);
        let mut r = rng();
        // 0b000001 -> 0b001000, and the transpose is an involution.
        let d = dg.next(SiteId::from_index(1), &g, &mut r);
        assert_eq!(d.index(), 8);
        let back = dg.next(d, &g, &mut r);
        assert_eq!(back.index(), 1);
    }

    #[test]
    fn transpose_fixed_points_are_intra_site() {
        // Sites whose two bit-halves are equal send to themselves: 8 of 64.
        let g = grid();
        let mut dg = DestinationGen::new(Pattern::Transpose, &g);
        let mut r = rng();
        let fixed = g.iter().filter(|&s| dg.next(s, &g, &mut r) == s).count();
        assert_eq!(fixed, 8);
    }

    #[test]
    fn butterfly_swaps_lsb_and_msb() {
        let g = grid();
        let mut dg = DestinationGen::new(Pattern::Butterfly, &g);
        let mut r = rng();
        // 0b000001 <-> 0b100000.
        assert_eq!(dg.next(SiteId::from_index(1), &g, &mut r).index(), 32);
        assert_eq!(dg.next(SiteId::from_index(32), &g, &mut r).index(), 1);
    }

    #[test]
    fn butterfly_half_the_sites_talk_to_themselves() {
        // The paper notes 50% of butterfly traffic is intra-node (§6.2):
        // every site with equal LSB and MSB is a fixed point.
        let g = grid();
        let mut dg = DestinationGen::new(Pattern::Butterfly, &g);
        let mut r = rng();
        let fixed = g.iter().filter(|&s| dg.next(s, &g, &mut r) == s).count();
        assert_eq!(fixed, 32);
    }

    #[test]
    fn uniform_never_picks_self_and_covers_everyone() {
        let g = grid();
        let mut dg = DestinationGen::new(Pattern::Uniform, &g);
        let mut r = rng();
        let src = g.site(3, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4000 {
            let d = dg.next(src, &g, &mut r);
            assert_ne!(d, src);
            seen.insert(d);
        }
        assert_eq!(seen.len(), 63);
    }

    #[test]
    fn neighbor_picks_only_adjacent_sites() {
        let g = grid();
        let mut dg = DestinationGen::new(Pattern::Neighbor, &g);
        let mut r = rng();
        let src = g.site(4, 4);
        for _ in 0..100 {
            let d = dg.next(src, &g, &mut r);
            let (x, y) = g.coord(d);
            let manhattan = x.abs_diff(4) + y.abs_diff(4);
            assert_eq!(manhattan, 1, "non-neighbor {d}");
        }
    }

    #[test]
    fn corner_sites_have_two_neighbors() {
        let g = grid();
        let mut dg = DestinationGen::new(Pattern::Neighbor, &g);
        let mut r = rng();
        let corner = g.site(0, 0);
        let seen: std::collections::HashSet<_> =
            (0..200).map(|_| dg.next(corner, &g, &mut r)).collect();
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&g.site(1, 0)));
        assert!(seen.contains(&g.site(0, 1)));
    }

    #[test]
    fn all_to_all_cycles_through_every_destination() {
        let g = grid();
        let mut dg = DestinationGen::new(Pattern::AllToAll, &g);
        let mut r = rng();
        let src = g.site(0, 0);
        let seen: Vec<_> = (0..63).map(|_| dg.next(src, &g, &mut r)).collect();
        let unique: std::collections::HashSet<_> = seen.iter().collect();
        assert_eq!(unique.len(), 63);
        assert!(!seen.contains(&src));
        // The cycle restarts.
        assert_eq!(dg.next(src, &g, &mut r), seen[0]);
    }

    #[test]
    fn all_to_all_cursors_are_per_source() {
        let g = grid();
        let mut dg = DestinationGen::new(Pattern::AllToAll, &g);
        let mut r = rng();
        let a = dg.next(g.site(0, 0), &g, &mut r);
        let b = dg.next(g.site(1, 0), &g, &mut r);
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
    }

    #[test]
    fn hotspot_concentrates_on_the_center() {
        let g = grid();
        let mut dg = DestinationGen::new(Pattern::HotSpot, &g);
        let mut r = rng();
        let hot = g.site(4, 4);
        let n = 20_000;
        let mut to_hot = 0;
        for i in 0..n {
            let src = SiteId::from_index(i % g.sites());
            let d = dg.next(src, &g, &mut r);
            assert_ne!(d, src, "hotspot must not self-send");
            if d == hot {
                to_hot += 1;
            }
        }
        // ~10% directed + ~1.6% of the uniform remainder.
        let frac = to_hot as f64 / n as f64;
        assert!((frac - 0.115).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn transpose_requires_power_of_two_sites() {
        let g = Grid::new(3);
        let _ = DestinationGen::new(Pattern::Transpose, &g);
    }

    #[test]
    #[should_panic(expected = "at least two sites")]
    fn uniform_rejects_a_single_site_grid() {
        let _ = DestinationGen::new(Pattern::Uniform, &Grid::new(1));
    }

    #[test]
    #[should_panic(expected = "at least two sites")]
    fn neighbor_rejects_a_single_site_grid() {
        let _ = DestinationGen::new(Pattern::Neighbor, &Grid::new(1));
    }

    #[test]
    #[should_panic(expected = "at least two sites")]
    fn hotspot_rejects_a_single_site_grid() {
        let _ = DestinationGen::new(Pattern::HotSpot, &Grid::new(1));
    }

    #[test]
    #[should_panic(expected = "at least two sites")]
    fn butterfly_rejects_a_single_site_grid() {
        // 1 is a power of two, so without the peer check butterfly would
        // reach a shift-underflow in `next` instead of a clear message.
        let _ = DestinationGen::new(Pattern::Butterfly, &Grid::new(1));
    }

    #[test]
    fn single_site_degenerate_patterns_self_send() {
        // Transpose and all-to-all stay well-defined on one site: every
        // packet is loop-back.
        let g = Grid::new(1);
        let mut r = rng();
        let src = g.site(0, 0);
        let mut dg = DestinationGen::new(Pattern::Transpose, &g);
        assert_eq!(dg.next(src, &g, &mut r), src);
        let mut dg = DestinationGen::new(Pattern::AllToAll, &g);
        assert_eq!(dg.next(src, &g, &mut r), src);
        assert_eq!(dg.next(src, &g, &mut r), src);
    }
}
