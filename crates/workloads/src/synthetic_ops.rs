//! Synthetic coherence-operation streams (Figures 7, 8, 10).
//!
//! Each core takes L2 misses at the paper's 4%-per-instruction rate (§5);
//! every miss becomes a coherence request whose *home* follows a Table 3
//! message pattern and whose sharer count follows an LS/MS mix. Requests
//! that find sharers are writes (they must invalidate); the rest are
//! reads serviced by the home's memory.

use crate::patterns::{DestinationGen, Pattern};
use crate::sharing::SharingMix;
use coherence::ops::{NextMiss, OpKind, OpSource, OpSpec};
use desim::{SimRng, Span};
use netcore::{Grid, SiteId};

/// Mean compute time between L2 misses per core: a 4% miss rate per
/// instruction at 1 instruction/cycle and 5 GHz is 25 instructions = 5 ns.
pub const MEAN_MISS_GAP: Span = Span::from_ps(5_000);

/// A synthetic [`OpSource`]: pattern-directed homes, mix-directed sharing.
///
/// # Example
///
/// ```
/// use coherence::ops::OpSource;
/// use netcore::Grid;
/// use workloads::{Pattern, SharingMix, SyntheticOpSource};
///
/// let grid = Grid::new(8);
/// let mut src = SyntheticOpSource::new(&grid, Pattern::Transpose,
///                                      SharingMix::LessSharing, 10, 42);
/// let miss = src.next_miss(grid.site(1, 0), 0).unwrap();
/// assert_eq!(miss.op.home.index(), 8); // transpose of site 1
/// ```
pub struct SyntheticOpSource {
    grid: Grid,
    dest: DestinationGen,
    mix: SharingMix,
    rng: SimRng,
    /// Remaining misses per (site, core).
    remaining: Vec<u32>,
    cores_per_site: usize,
    mean_gap: Span,
    line_counter: u64,
}

impl SyntheticOpSource {
    /// Creates a source issuing `ops_per_core` misses per core with the
    /// default miss gap.
    pub fn new(
        grid: &Grid,
        pattern: Pattern,
        mix: SharingMix,
        ops_per_core: u32,
        seed: u64,
    ) -> SyntheticOpSource {
        SyntheticOpSource::with_gap(grid, pattern, mix, ops_per_core, MEAN_MISS_GAP, seed)
    }

    /// Creates a source with an explicit mean miss gap.
    ///
    /// # Panics
    ///
    /// Panics if the gap is zero.
    pub fn with_gap(
        grid: &Grid,
        pattern: Pattern,
        mix: SharingMix,
        ops_per_core: u32,
        mean_gap: Span,
        seed: u64,
    ) -> SyntheticOpSource {
        assert!(!mean_gap.is_zero(), "mean miss gap must be positive");
        // Assume the paper's 8 cores/site; the engine only asks for cores
        // that exist in its own config.
        let cores_per_site = 8;
        SyntheticOpSource {
            grid: *grid,
            dest: DestinationGen::new(pattern, grid),
            mix,
            rng: SimRng::new(seed),
            remaining: vec![ops_per_core; grid.sites() * cores_per_site],
            cores_per_site,
            mean_gap,
            line_counter: 0,
        }
    }

    /// Workload display name for the figures.
    pub fn label(&self) -> String {
        format!("{}{}", self.dest.pattern(), self.mix.suffix())
    }

    /// Draws `k` distinct sharers, excluding `requester` and `home`.
    fn sample_sharers(&mut self, requester: SiteId, home: SiteId, k: usize) -> Vec<SiteId> {
        let mut sharers = Vec::with_capacity(k);
        let sites = self.grid.sites();
        let mut guard = 0;
        while sharers.len() < k {
            let s = SiteId::from_index(self.rng.range(0..sites));
            if s != requester && s != home && !sharers.contains(&s) {
                sharers.push(s);
            }
            guard += 1;
            assert!(guard < 10_000, "sharer sampling failed to converge");
        }
        sharers
    }
}

impl OpSource for SyntheticOpSource {
    fn next_miss(&mut self, site: SiteId, core: usize) -> Option<NextMiss> {
        if core >= self.cores_per_site {
            return None;
        }
        let slot = site.index() * self.cores_per_site + core;
        if self.remaining[slot] == 0 {
            return None;
        }
        self.remaining[slot] -= 1;

        let home = self.dest.next(site, &self.grid, &mut self.rng);
        let n_sharers = self.mix.sample_sharers(&mut self.rng);
        let (kind, sharers) = if n_sharers == 0 {
            (OpKind::Read, Vec::new())
        } else {
            (OpKind::Write, self.sample_sharers(site, home, n_sharers))
        };
        // Unique line whose interleaved home is the pattern destination.
        let line = (self.line_counter << 6) | home.index() as u64;
        self.line_counter += 1;

        Some(NextMiss {
            gap: self.rng.exp_span(self.mean_gap),
            op: OpSpec {
                requester: site,
                home,
                kind,
                owner: None,
                sharers,
                line,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(8)
    }

    #[test]
    fn cores_exhaust_after_their_quota() {
        let g = grid();
        let mut s = SyntheticOpSource::new(&g, Pattern::Uniform, SharingMix::LessSharing, 3, 1);
        let site = g.site(0, 0);
        for _ in 0..3 {
            assert!(s.next_miss(site, 0).is_some());
        }
        assert!(s.next_miss(site, 0).is_none());
        // Other cores unaffected.
        assert!(s.next_miss(site, 1).is_some());
    }

    #[test]
    fn homes_follow_the_pattern() {
        let g = grid();
        let mut s = SyntheticOpSource::new(&g, Pattern::Butterfly, SharingMix::LessSharing, 10, 1);
        // Site 1 (0b000001) -> site 32 (0b100000) under butterfly.
        let miss = s.next_miss(g.site(1, 0), 0).unwrap();
        assert_eq!(miss.op.home.index(), 32);
    }

    #[test]
    fn lines_interleave_to_the_right_home() {
        let g = grid();
        let mut s = SyntheticOpSource::new(&g, Pattern::Uniform, SharingMix::MoreSharing, 50, 2);
        for _ in 0..50 {
            let m = s.next_miss(g.site(2, 3), 0).unwrap();
            assert_eq!(
                coherence::directory::home_site(m.op.line, 64),
                m.op.home,
                "line {:#x}",
                m.op.line
            );
        }
    }

    #[test]
    fn sharer_requests_become_writes() {
        let g = grid();
        let mut s = SyntheticOpSource::new(&g, Pattern::Uniform, SharingMix::MoreSharing, 200, 3);
        let mut writes = 0;
        let mut reads = 0;
        for _ in 0..200 {
            let m = s.next_miss(g.site(0, 0), 0).unwrap();
            m.op.validate();
            assert_ne!(m.op.kind, OpKind::Upgrade, "synthetic mixes never upgrade");
            match m.op.kind {
                OpKind::Write | OpKind::Upgrade => {
                    writes += 1;
                    assert_eq!(m.op.sharers.len(), 3);
                }
                OpKind::Read => {
                    reads += 1;
                    assert!(m.op.sharers.is_empty());
                }
            }
        }
        // MS: ~40% writes.
        assert!(writes > 50 && writes < 110, "writes {writes}");
        assert!(reads > 0);
    }

    #[test]
    fn gaps_average_five_ns() {
        let g = grid();
        let mut s = SyntheticOpSource::new(&g, Pattern::Uniform, SharingMix::LessSharing, 2000, 4);
        let mut total = 0.0;
        let mut count = 0;
        for core in 0..8 {
            while let Some(m) = s.next_miss(g.site(0, 0), core) {
                total += m.gap.as_ns_f64();
                count += 1;
            }
        }
        let mean = total / count as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean gap {mean}");
    }

    #[test]
    fn label_includes_mix_suffix() {
        let g = grid();
        let ls = SyntheticOpSource::new(&g, Pattern::Transpose, SharingMix::LessSharing, 1, 1);
        let ms = SyntheticOpSource::new(&g, Pattern::Transpose, SharingMix::MoreSharing, 1, 1);
        assert_eq!(ls.label(), "Transpose");
        assert_eq!(ms.label(), "Transpose-MS");
    }

    #[test]
    fn nonexistent_cores_yield_nothing() {
        let g = grid();
        let mut s = SyntheticOpSource::new(&g, Pattern::Uniform, SharingMix::LessSharing, 5, 1);
        assert!(s.next_miss(g.site(0, 0), 8).is_none());
    }
}
