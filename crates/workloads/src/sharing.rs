//! The paper's coherence sharing mixes (§5): synthetic benchmarks are
//! driven with *Less Sharing* (LS) and *More Sharing* (MS) mixes.

use desim::SimRng;

/// How many sharers a synthetic coherence request finds at the directory.
///
/// * LS: "90% of coherence requests have no sharers for the cache block"
///   — the remaining 10% find one to three.
/// * MS: "40% of requests have three sharers" — the rest find none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingMix {
    /// Less sharing: 90% of requests find no sharers.
    LessSharing,
    /// More sharing: 40% of requests find three sharers.
    MoreSharing,
}

impl SharingMix {
    /// Display suffix matching the paper's figures ("", "-MS").
    pub fn suffix(self) -> &'static str {
        match self {
            SharingMix::LessSharing => "",
            SharingMix::MoreSharing => "-MS",
        }
    }

    /// Samples the number of sharers a request finds.
    pub fn sample_sharers(self, rng: &mut SimRng) -> usize {
        match self {
            SharingMix::LessSharing => {
                if rng.chance(0.9) {
                    0
                } else {
                    rng.range(1..=3)
                }
            }
            SharingMix::MoreSharing => {
                if rng.chance(0.4) {
                    3
                } else {
                    0
                }
            }
        }
    }

    /// Expected invalidation fan-out per request.
    pub fn expected_sharers(self) -> f64 {
        match self {
            SharingMix::LessSharing => 0.1 * 2.0, // 10% x E[1..=3] = 0.2
            SharingMix::MoreSharing => 0.4 * 3.0, // 1.2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(mix: SharingMix) -> f64 {
        let mut rng = SimRng::new(11);
        let n = 50_000;
        let total: usize = (0..n).map(|_| mix.sample_sharers(&mut rng)).sum();
        total as f64 / n as f64
    }

    #[test]
    fn ls_mix_mostly_finds_no_sharers() {
        let mut rng = SimRng::new(3);
        let n = 50_000;
        let zeros = (0..n)
            .filter(|_| SharingMix::LessSharing.sample_sharers(&mut rng) == 0)
            .count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.01, "zero fraction {frac}");
    }

    #[test]
    fn ms_mix_finds_three_sharers_forty_percent_of_the_time() {
        let mut rng = SimRng::new(4);
        let n = 50_000;
        let threes = (0..n)
            .filter(|_| SharingMix::MoreSharing.sample_sharers(&mut rng) == 3)
            .count();
        let frac = threes as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.01, "three fraction {frac}");
    }

    #[test]
    fn empirical_means_match_expected() {
        for mix in [SharingMix::LessSharing, SharingMix::MoreSharing] {
            let got = empirical_mean(mix);
            let want = mix.expected_sharers();
            assert!((got - want).abs() < 0.05, "{mix:?}: {got} vs {want}");
        }
    }

    #[test]
    fn ms_generates_more_invalidations_than_ls() {
        assert!(
            SharingMix::MoreSharing.expected_sharers()
                > 5.0 * SharingMix::LessSharing.expected_sharers()
        );
    }

    #[test]
    fn suffixes_match_figures() {
        assert_eq!(SharingMix::LessSharing.suffix(), "");
        assert_eq!(SharingMix::MoreSharing.suffix(), "-MS");
    }
}
