//! Open-loop packet traffic for the latency-vs-load sweeps (Figure 6).
//!
//! Each site injects 64-byte packets with exponentially distributed
//! inter-arrival times; the offered load is expressed as a fraction of the
//! 320 bytes/ns per-site peak, exactly as on Figure 6's x-axis.

use crate::patterns::{DestinationGen, Pattern};
use desim::{SimRng, Span, Time};
use netcore::{Grid, MessageKind, Packet, PacketId, PacketSource};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An open-loop Poisson packet source following a synthetic pattern.
///
/// # Example
///
/// ```
/// use netcore::{Grid, PacketSource};
/// use workloads::{OpenLoopTraffic, Pattern};
///
/// let grid = Grid::new(8);
/// // 10% of the 320 B/ns per-site peak, 64 B packets.
/// let traffic = OpenLoopTraffic::new(&grid, Pattern::Uniform, 0.10, 320.0, 64, 42);
/// assert!(traffic.next_emission().is_some());
/// ```
pub struct OpenLoopTraffic {
    grid: Grid,
    dest: DestinationGen,
    rng: SimRng,
    /// Next injection instant per site; `Time::MAX` = finished.
    next_at: Vec<Time>,
    /// Min-heap over the still-active sites' next emission instants,
    /// mirroring `next_at`: finding and re-keying the due site is
    /// O(log sites) per packet instead of a full scan per call.
    pending: BinaryHeap<Reverse<(Time, usize)>>,
    /// Scratch for the sites due in one `emit_due` call.
    due: Vec<(Time, usize)>,
    /// Cached minimum of `next_at`, so the driver's per-iteration
    /// [`next_emission`](PacketSource::next_emission) probe is O(1).
    next_min: Time,
    mean_gap: Span,
    bytes: u32,
    next_id: u64,
    /// No packet is created at or after this deadline.
    horizon: Time,
    emitted: u64,
}

impl OpenLoopTraffic {
    /// Creates a source injecting at `load_fraction` of `site_peak_bytes_per_ns`
    /// per site, in packets of `bytes`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the load fraction or packet size is not positive.
    pub fn new(
        grid: &Grid,
        pattern: Pattern,
        load_fraction: f64,
        site_peak_bytes_per_ns: f64,
        bytes: u32,
        seed: u64,
    ) -> OpenLoopTraffic {
        assert!(
            load_fraction > 0.0 && load_fraction.is_finite(),
            "load fraction must be positive"
        );
        assert!(bytes > 0, "packets must be non-empty");
        let rate = load_fraction * site_peak_bytes_per_ns; // bytes/ns per site

        // Clamp to the 1-ps simulation tick: at extreme offered loads the
        // exact gap rounds to zero, which `exp_span` rejects (and a zero
        // gap would re-inject at the same instant forever).
        let mean_gap = Span::from_ns_f64(bytes as f64 / rate).max(Span::from_ps(1));
        let mut rng = SimRng::new(seed);
        // Desynchronize sites from the start.
        let next_at: Vec<Time> = (0..grid.sites())
            .map(|_| Time::ZERO + rng.exp_span(mean_gap))
            .collect();
        let next_min = next_at.iter().copied().min().unwrap_or(Time::MAX);
        let pending = next_at
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t < Time::MAX)
            .map(|(site, &t)| Reverse((t, site)))
            .collect();
        OpenLoopTraffic {
            grid: *grid,
            dest: DestinationGen::new(pattern, grid),
            rng,
            next_at,
            pending,
            due: Vec::new(),
            next_min,
            mean_gap,
            bytes,
            next_id: 0,
            horizon: Time::MAX,
            emitted: 0,
        }
    }

    /// Stops creating new packets at or after `deadline` (in-flight traffic
    /// still drains).
    pub fn set_horizon(&mut self, deadline: Time) {
        self.horizon = deadline;
        for t in &mut self.next_at {
            if *t >= deadline {
                *t = Time::MAX;
            }
        }
        self.pending = self
            .next_at
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t < Time::MAX)
            .map(|(site, &t)| Reverse((t, site)))
            .collect();
        self.next_min = self.next_at.iter().copied().min().unwrap_or(Time::MAX);
    }

    /// Packets created so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Mean inter-arrival gap per site.
    pub fn mean_gap(&self) -> Span {
        self.mean_gap
    }
}

impl PacketSource for OpenLoopTraffic {
    fn next_emission(&self) -> Option<Time> {
        Some(self.next_min).filter(|&t| t < Time::MAX)
    }

    fn emit_due(&mut self, now: Time, out: &mut Vec<Packet>) {
        if self.next_min > now {
            return;
        }
        // Pop every due site off the heap, then visit them in ascending
        // site order, draining each site's due instants before moving on —
        // the exact emission order of a full `0..sites` scan, which the
        // RNG stream (and so every downstream result) depends on.
        let mut due = std::mem::take(&mut self.due);
        due.clear();
        while let Some(&Reverse((t, site))) = self.pending.peek() {
            if t > now {
                break;
            }
            self.pending.pop();
            due.push((t, site));
        }
        due.sort_unstable_by_key(|&(_, site)| site);
        for &(t, site) in &due {
            let mut at = t;
            loop {
                let src = netcore::SiteId::from_index(site);
                let dst = self.dest.next(src, &self.grid, &mut self.rng);
                out.push(Packet::new(
                    PacketId(self.next_id),
                    src,
                    dst,
                    self.bytes,
                    MessageKind::Data,
                    at,
                ));
                self.next_id += 1;
                self.emitted += 1;
                let next = at + self.rng.exp_span(self.mean_gap);
                let next = if next >= self.horizon {
                    Time::MAX
                } else {
                    next
                };
                if next <= now {
                    at = next;
                    continue;
                }
                self.next_at[site] = next;
                if next < Time::MAX {
                    self.pending.push(Reverse((next, site)));
                }
                break;
            }
        }
        self.due = due;
        self.next_min = match self.pending.peek() {
            Some(&Reverse((t, _))) => t,
            None => Time::MAX,
        };
    }

    fn on_delivered(&mut self, _packet: &Packet, _now: Time) {}

    fn is_exhausted(&self) -> bool {
        self.next_min == Time::MAX
    }

    /// The emission schedule is fixed at construction; deliveries change
    /// nothing, so the driver may batch network events between emissions.
    fn reacts_to_delivery(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(load: f64) -> OpenLoopTraffic {
        OpenLoopTraffic::new(&Grid::new(8), Pattern::Uniform, load, 320.0, 64, 1)
    }

    #[test]
    fn rate_matches_offered_load() {
        // At 50% of 320 B/ns with 64 B packets, each site injects every
        // 0.4 ns on average: over 1 us, ~160,000 packets total.
        let mut s = source(0.5);
        s.set_horizon(Time::from_us(1));
        let mut out = Vec::new();
        while let Some(t) = s.next_emission() {
            s.emit_due(t, &mut out);
        }
        let n = out.len() as f64;
        assert!((n - 160_000.0).abs() < 8_000.0, "emitted {n}");
        assert!(s.is_exhausted());
    }

    #[test]
    fn packets_are_timestamped_in_order_per_site() {
        let mut s = source(0.1);
        s.set_horizon(Time::from_us(1));
        let mut out = Vec::new();
        while let Some(t) = s.next_emission() {
            s.emit_due(t, &mut out);
        }
        let mut last = vec![Time::ZERO; 64];
        for p in &out {
            assert!(p.created >= last[p.src.index()]);
            last[p.src.index()] = p.created;
        }
    }

    #[test]
    fn horizon_stops_creation() {
        let mut s = source(1.0);
        s.set_horizon(Time::from_ns(100));
        let mut out = Vec::new();
        while let Some(t) = s.next_emission() {
            s.emit_due(t, &mut out);
        }
        assert!(out.iter().all(|p| p.created < Time::from_ns(100)));
    }

    #[test]
    fn deterministic_for_a_seed() {
        let run = |seed| {
            let mut s = OpenLoopTraffic::new(&Grid::new(8), Pattern::Uniform, 0.2, 320.0, 64, seed);
            s.set_horizon(Time::from_ns(500));
            let mut out = Vec::new();
            while let Some(t) = s.next_emission() {
                s.emit_due(t, &mut out);
            }
            out.iter()
                .map(|p| (p.src, p.dst, p.created))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn unique_packet_ids() {
        let mut s = source(0.3);
        s.set_horizon(Time::from_ns(300));
        let mut out = Vec::new();
        while let Some(t) = s.next_emission() {
            s.emit_due(t, &mut out);
        }
        let ids: std::collections::HashSet<_> = out.iter().map(|p| p.id).collect();
        assert_eq!(ids.len(), out.len());
    }

    #[test]
    #[should_panic(expected = "load fraction")]
    fn zero_load_rejected() {
        let _ = source(0.0);
    }

    #[test]
    #[should_panic(expected = "load fraction")]
    fn non_finite_load_rejected() {
        let _ = source(f64::INFINITY);
    }

    #[test]
    fn extreme_load_clamps_the_gap_to_one_tick() {
        // At 10^6 × peak the exact mean gap is far below a picosecond;
        // the source clamps to the 1-ps tick instead of panicking in
        // `exp_span` (or spinning forever on a zero gap).
        let mut s = source(1e6);
        assert_eq!(s.mean_gap(), Span::from_ps(1));
        s.set_horizon(Time::from_ns(1));
        let mut out = Vec::new();
        while let Some(t) = s.next_emission() {
            s.emit_due(t, &mut out);
        }
        assert!(!out.is_empty());
        assert!(s.is_exhausted());
    }

    #[test]
    fn single_site_grid_carries_loopback_all_to_all() {
        // A 1x1 grid has no peers; all-to-all degenerates to pure
        // loop-back traffic rather than panicking.
        let mut s = OpenLoopTraffic::new(&Grid::new(1), Pattern::AllToAll, 0.1, 320.0, 64, 1);
        s.set_horizon(Time::from_ns(100));
        let mut out = Vec::new();
        while let Some(t) = s.next_emission() {
            s.emit_due(t, &mut out);
        }
        assert!(!out.is_empty());
        assert!(out.iter().all(|p| p.src == p.dst));
    }
}
