//! Message-passing collectives — the paper's named future work ("future
//! work will evaluate network architectures for message passing
//! workloads", §8).
//!
//! Each collective is a bulk-synchronous schedule of site-to-site
//! transfers: all sites send their step's messages, a barrier waits for
//! every delivery, and the next step begins. Completion time of the whole
//! schedule is the figure of merit. Unlike the open-loop Figure 6 sweeps,
//! these workloads measure how a network's *overheads compose* across
//! dependent communication steps — precisely where the token ring's
//! reacquisition lap and the circuit switch's setup round trip compound.

use desim::Time;
use netcore::{Grid, MessageKind, Packet, PacketId, PacketSource, SiteId};

/// A bulk-synchronous collective communication schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// Ring all-reduce: N−1 reduce-scatter steps plus N−1 all-gather
    /// steps, each site sending one chunk to its ring successor.
    RingAllReduce,
    /// Recursive-doubling butterfly: log2(N) steps, partner `i XOR 2^k`.
    ButterflyExchange,
    /// Stencil halo exchange: every site swaps boundaries with its (up to
    /// four) grid neighbors each step.
    HaloExchange,
    /// All-to-all personalized exchange: N−1 rotation steps, step `s`
    /// sending to `(i + s) mod N`.
    AllToAllPersonalized,
}

impl Collective {
    /// All collectives, for sweeps.
    pub const ALL: [Collective; 4] = [
        Collective::RingAllReduce,
        Collective::ButterflyExchange,
        Collective::HaloExchange,
        Collective::AllToAllPersonalized,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Collective::RingAllReduce => "ring all-reduce",
            Collective::ButterflyExchange => "butterfly exchange",
            Collective::HaloExchange => "halo exchange",
            Collective::AllToAllPersonalized => "all-to-all personalized",
        }
    }

    /// Number of steps in one round on an n-site grid.
    pub fn steps(self, grid: &Grid) -> usize {
        let n = grid.sites();
        match self {
            Collective::RingAllReduce => 2 * (n - 1),
            Collective::ButterflyExchange => n.trailing_zeros() as usize,
            Collective::HaloExchange => 1,
            Collective::AllToAllPersonalized => n - 1,
        }
    }

    /// The transfers of step `step`: (source, destination) pairs.
    fn transfers(self, grid: &Grid, step: usize) -> Vec<(SiteId, SiteId)> {
        let n = grid.sites();
        match self {
            Collective::RingAllReduce => {
                // Ring successor; identical shape for both phases.
                grid.iter()
                    .map(|s| (s, SiteId::from_index((s.index() + 1) % n)))
                    .collect()
            }
            Collective::ButterflyExchange => grid
                .iter()
                .map(|s| (s, SiteId::from_index(s.index() ^ (1 << step))))
                .collect(),
            Collective::HaloExchange => {
                let side = grid.side();
                let mut out = Vec::new();
                for s in grid.iter() {
                    let (x, y) = grid.coord(s);
                    if x > 0 {
                        out.push((s, grid.site(x - 1, y)));
                    }
                    if x + 1 < side {
                        out.push((s, grid.site(x + 1, y)));
                    }
                    if y > 0 {
                        out.push((s, grid.site(x, y - 1)));
                    }
                    if y + 1 < side {
                        out.push((s, grid.site(x, y + 1)));
                    }
                }
                out
            }
            Collective::AllToAllPersonalized => grid
                .iter()
                .map(|s| (s, SiteId::from_index((s.index() + step + 1) % n)))
                .collect(),
        }
    }
}

/// A bulk-synchronous message-passing workload driving a network.
///
/// # Example
///
/// ```
/// use netcore::{Grid, PacketSource};
/// use workloads::message_passing::{Collective, MessagePassingWorkload};
///
/// let grid = Grid::new(8);
/// let w = MessagePassingWorkload::new(&grid, Collective::ButterflyExchange,
///                                     4096, 1);
/// // 6 butterfly steps of 64 sites x 4 KB on an 8x8 macrochip.
/// assert_eq!(w.total_messages(), 6 * 64);
/// ```
pub struct MessagePassingWorkload {
    grid: Grid,
    collective: Collective,
    /// Payload per message, in bytes (split into cache-line packets).
    message_bytes: u32,
    /// Packet payload granularity (64-byte lines).
    packet_bytes: u32,
    rounds: usize,
    // --- progress state ---
    round: usize,
    step: usize,
    outstanding: u64,
    ready: Vec<Packet>,
    ready_at: Option<Time>,
    next_packet: u64,
    finished_at: Option<Time>,
    steps_done: usize,
}

impl MessagePassingWorkload {
    /// Creates a workload sending `message_bytes` per transfer, repeated
    /// for `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `message_bytes` or `rounds` is zero, or for the
    /// butterfly on a non-power-of-two site count.
    pub fn new(
        grid: &Grid,
        collective: Collective,
        message_bytes: u32,
        rounds: usize,
    ) -> MessagePassingWorkload {
        assert!(message_bytes > 0, "messages must be non-empty");
        assert!(rounds > 0, "at least one round");
        if collective == Collective::ButterflyExchange {
            assert!(
                grid.sites().is_power_of_two(),
                "butterfly needs a power-of-two site count"
            );
        }
        let mut w = MessagePassingWorkload {
            grid: *grid,
            collective,
            message_bytes,
            packet_bytes: 64,
            rounds,
            round: 0,
            step: 0,
            outstanding: 0,
            ready: Vec::new(),
            ready_at: Some(Time::ZERO),
            next_packet: 0,
            finished_at: None,
            steps_done: 0,
        };
        w.stage_step(Time::ZERO);
        w
    }

    /// Total messages the schedule will send.
    pub fn total_messages(&self) -> u64 {
        let per_round: usize = (0..self.collective.steps(&self.grid))
            .map(|s| self.collective.transfers(&self.grid, s).len())
            .sum();
        (per_round * self.rounds) as u64
    }

    /// When the last delivery of the last step happened.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    /// Barriers completed so far.
    pub fn steps_completed(&self) -> usize {
        self.steps_done
    }

    /// Queues the current step's packets for emission at `at`.
    fn stage_step(&mut self, at: Time) {
        let transfers = self.collective.transfers(&self.grid, self.step);
        let packets_per_message = self.message_bytes.div_ceil(self.packet_bytes);
        for (src, dst) in transfers {
            let mut remaining = self.message_bytes;
            for _ in 0..packets_per_message {
                let bytes = remaining.min(self.packet_bytes);
                remaining -= bytes;
                self.ready.push(Packet::new(
                    PacketId(self.next_packet),
                    src,
                    dst,
                    bytes,
                    MessageKind::Data,
                    at,
                ));
                self.next_packet += 1;
                self.outstanding += 1;
            }
        }
        self.ready_at = Some(at);
    }

    /// Advances the schedule after a barrier completes at `now`.
    fn on_barrier(&mut self, now: Time) {
        self.steps_done += 1;
        self.step += 1;
        if self.step >= self.collective.steps(&self.grid) {
            self.step = 0;
            self.round += 1;
            if self.round >= self.rounds {
                self.finished_at = Some(now);
                self.ready_at = None;
                return;
            }
        }
        self.stage_step(now);
    }
}

impl PacketSource for MessagePassingWorkload {
    fn next_emission(&self) -> Option<Time> {
        if self.ready.is_empty() {
            None
        } else {
            self.ready_at
        }
    }

    fn emit_due(&mut self, now: Time, out: &mut Vec<Packet>) {
        if self.ready_at.is_some_and(|t| t <= now) {
            out.append(&mut self.ready);
        }
    }

    fn on_delivered(&mut self, _packet: &Packet, now: Time) {
        debug_assert!(self.outstanding > 0, "delivery without outstanding sends");
        self.outstanding -= 1;
        if self.outstanding == 0 && self.ready.is_empty() {
            self.on_barrier(now);
        }
    }

    fn is_exhausted(&self) -> bool {
        self.finished_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(8)
    }

    #[test]
    fn step_counts_match_the_algorithms() {
        let g = grid();
        assert_eq!(Collective::RingAllReduce.steps(&g), 126);
        assert_eq!(Collective::ButterflyExchange.steps(&g), 6);
        assert_eq!(Collective::HaloExchange.steps(&g), 1);
        assert_eq!(Collective::AllToAllPersonalized.steps(&g), 63);
    }

    #[test]
    fn butterfly_partners_are_symmetric() {
        let g = grid();
        for step in 0..6 {
            let transfers = Collective::ButterflyExchange.transfers(&g, step);
            assert_eq!(transfers.len(), 64);
            for (s, d) in &transfers {
                assert!(transfers.contains(&(*d, *s)), "asymmetric at step {step}");
                assert_ne!(s, d);
            }
        }
    }

    #[test]
    fn halo_transfers_are_neighbor_only() {
        let g = grid();
        let transfers = Collective::HaloExchange.transfers(&g, 0);
        // 4 interior edges per site, boundary-adjusted: 2*2*side*(side-1).
        assert_eq!(transfers.len(), 2 * 2 * 8 * 7);
        for (s, d) in transfers {
            let (sx, sy) = g.coord(s);
            let (dx, dy) = g.coord(d);
            assert_eq!(sx.abs_diff(dx) + sy.abs_diff(dy), 1);
        }
    }

    #[test]
    fn rotation_never_sends_to_self() {
        let g = grid();
        for step in 0..63 {
            for (s, d) in Collective::AllToAllPersonalized.transfers(&g, step) {
                assert_ne!(s, d, "self-send at step {step}");
            }
        }
    }

    #[test]
    fn messages_split_into_cache_lines() {
        let g = grid();
        let w = MessagePassingWorkload::new(&g, Collective::HaloExchange, 256, 1);
        // 256 B message = 4 packets of 64 B per transfer.
        assert_eq!(w.ready.len(), 224 * 4);
        assert!(w.ready.iter().all(|p| p.bytes == 64));
    }

    #[test]
    fn barrier_advances_only_after_all_deliveries() {
        let g = grid();
        let mut w = MessagePassingWorkload::new(&g, Collective::ButterflyExchange, 64, 1);
        let mut out = Vec::new();
        w.emit_due(Time::ZERO, &mut out);
        assert_eq!(out.len(), 64);
        assert_eq!(w.next_emission(), None, "nothing staged mid-step");
        // Deliver all but one: no new step yet.
        for p in &out[..63] {
            let mut d = *p;
            d.delivered = Some(Time::from_ns(10));
            w.on_delivered(&d, Time::from_ns(10));
        }
        assert_eq!(w.steps_completed(), 0);
        let mut last = out[63];
        last.delivered = Some(Time::from_ns(12));
        w.on_delivered(&last, Time::from_ns(12));
        assert_eq!(w.steps_completed(), 1);
        assert_eq!(w.next_emission(), Some(Time::from_ns(12)));
    }

    #[test]
    fn completes_after_all_rounds() {
        let g = grid();
        let mut w = MessagePassingWorkload::new(&g, Collective::HaloExchange, 64, 2);
        let mut now = Time::ZERO;
        let mut total = 0;
        while !w.is_exhausted() {
            let mut out = Vec::new();
            w.emit_due(now, &mut out);
            assert!(!out.is_empty(), "stalled schedule");
            total += out.len();
            now += desim::Span::from_ns(5);
            for p in out {
                let mut d = p;
                d.delivered = Some(now);
                w.on_delivered(&d, now);
            }
        }
        assert_eq!(total as u64, w.total_messages());
        assert_eq!(w.finished_at(), Some(now));
    }

    #[test]
    fn total_messages_counts_rounds() {
        let g = grid();
        let one = MessagePassingWorkload::new(&g, Collective::ButterflyExchange, 64, 1);
        let three = MessagePassingWorkload::new(&g, Collective::ButterflyExchange, 64, 3);
        assert_eq!(three.total_messages(), 3 * one.total_messages());
    }
}
