//! Workloads driving the macrochip networks (paper §5).
//!
//! Two families, matching the paper's methodology:
//!
//! * **Synthetic message patterns** (Table 3) — [`patterns`] defines the
//!   uniform / transpose / butterfly / nearest-neighbor / all-to-all
//!   destination functions; [`open_loop`] turns them into the
//!   offered-load packet streams of Figure 6; [`synthetic_ops`] turns
//!   them into coherence-operation streams with the LS/MS [`sharing`]
//!   mixes of Figures 7, 8 and 10.
//! * **Application kernels** (Table 2) — [`apps`] models Radix, Barnes,
//!   Blackscholes, Fluidanimate (densities and forces) and Swaptions as
//!   statistical address streams over *real* per-site L2 caches and
//!   directories, so owners and sharers emerge from actual MOESI state.
//!   This substitutes for the paper's proprietary instruction traces; see
//!   DESIGN.md §2 for the substitution argument.
//! * **Message-passing collectives** (the paper's §8 future work) —
//!   [`message_passing`] implements bulk-synchronous ring all-reduce,
//!   butterfly exchange, halo exchange and all-to-all personalized
//!   schedules whose barriers expose how network overheads compose.

pub mod apps;
pub mod message_passing;
pub mod open_loop;
pub mod patterns;
pub mod sharing;
pub mod synthetic_ops;

pub use apps::{AppProfile, AppWorkload};
pub use message_passing::{Collective, MessagePassingWorkload};
pub use open_loop::OpenLoopTraffic;
pub use patterns::{DestinationGen, Pattern};
pub use sharing::SharingMix;
pub use synthetic_ops::SyntheticOpSource;
