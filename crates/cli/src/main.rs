//! `macrochip` — command-line front end to the simulator.
//!
//! ```text
//! macrochip tables
//! macrochip sweep     --network p2p --pattern uniform --loads 0.1,0.3,0.6 [--jobs 4]
//! macrochip sustained --network all --pattern uniform
//! macrochip coherent  --workload Swaptions --network all [--ops 40]
//! macrochip mp        --collective butterfly [--bytes 1024] [--rounds 2]
//! macrochip faults    --network all [--faults "rand-links=2; transient=0.01"] [--jobs 4]
//! macrochip run-all   [--pattern uniform] [--jobs 0] [--no-cache]
//! macrochip capture   --out run.mtrc --pattern uniform [--load 0.05]
//! macrochip replay    --trace run.mtrc [--network all] [--faults "rand-links=2"]
//! macrochip trace-info run.mtrc | --dir traces/ [--write-index]
//! macrochip trace-transform --trace run.mtrc --out half.mtrc --truncate-ns 500
//! macrochip bench     [--quick] [--out BENCH_1.json] [--against baseline.json]
//! macrochip serve     [--addr 127.0.0.1:7447] [--workers 0] [--queue-cap 16]
//! macrochip submit    sweep --network p2p --pattern uniform [--wait]
//! macrochip status    [--job job-1] | result --job job-1 | cancel --job job-1
//! macrochip cache     stats | prune [--max-bytes N] [--older-than SPAN]
//! ```
//!
//! Argument parsing is deliberately dependency-free.

use coherence::EngineConfig;
use desim::prof;
use desim::trace::{chrome_trace_json, RingSink};
use desim::{Span, Time, TraceEvent, Tracer};
use macrochip::campaign::{self, fabric_point_key, CampaignPoint, PointExecOptions, PointResult};
use macrochip::experiment::run_coherent_observed;
use macrochip::names;
use macrochip::prelude::*;
use macrochip::report::{self, fmt, Table};
use macrochip::runner::{drive, DriveLimits};
use macrochip::sweep::{run_load_point_observed, run_load_point_traced, sustained_bandwidth};
use netcore::audit::AuditReport;
use netcore::{FabricConfig, MetricsRegistry, MetricsSnapshot};
use replay::{CaptureSink, CorpusManifest, TraceMeta};
use std::cell::RefCell;
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::rc::Rc;
use std::time::Instant;
use workloads::MessagePassingWorkload;

const USAGE: &str = "\
macrochip — silicon-photonic multi-chip network simulator (ISCA 2010 reproduction)

USAGE:
    macrochip tables    [--side <N>] [--chips <M>]
    macrochip sweep     --network <NET> --pattern <PAT> [--loads 0.1,0.3,...]
                        [--chips <M>]
    macrochip sustained --network <NET|all> --pattern <PAT>
    macrochip coherent  --workload <NAME> --network <NET|all> [--ops <N>]
    macrochip mp        --collective <COLL> [--bytes <B>] [--rounds <R>]
    macrochip faults    --network <NET|all> [--pattern <PAT>] [--load <F>]
                        [--faults <SPEC>] [--seed <N>] [--duration-short]
                        [--chips <M>]
    macrochip run-all   [--pattern <PAT>] [--seed <N>] [--duration-short]
                        [--chips <M>]
    macrochip capture   --out <FILE.mtrc> --pattern <PAT> [--load <F>]
                        [--network <NET>] [--seed <N>] [--duration-short]
                        [--stats <FILE>]
                        (or --workload <NAME> [--ops <N>] for a coherent run)
    macrochip replay    --trace <FILE.mtrc> [--network <NET|all>]
                        [--faults <SPEC>] [--seed <N>] [--duration-short]
                        [--jobs <N>] [--no-cache] [--stats <FILE>]
                        [--metrics <FILE>] [--trace-out <FILE>] [--audit]
    macrochip trace-info <FILE.mtrc>... | --dir <DIR> [--write-index]
    macrochip trace-transform --trace <IN.mtrc> --out <OUT.mtrc>
                        (--time-scale <N/D> | --truncate <N>
                         | --truncate-ns <NS> | --keep-kind <KIND>
                         | --remap <rot:K|i,j,...> | --merge <A,B,...>)
    macrochip bench     [--quick] [--trials <N>] [--out <FILE>] [--chips <M>]
                        [--against <BASELINE.json>] [--max-regression <F>]
                        [--with-tracer] [--profile] [--progress] [-q]
    macrochip serve     [--addr <HOST:PORT>] [--workers <N>] [--queue-cap <N>]
                        [--no-cache] [--manifest-dir <DIR>] [-q]
    macrochip submit    <sweep|faults|coherent|replay> <CAMPAIGN FLAGS>
                        [--wait] [--addr <HOST:PORT>] [-q] [-v]
    macrochip status    [--job <ID>] [--addr <HOST:PORT>]
    macrochip result    --job <ID> [--addr <HOST:PORT>]
    macrochip cancel    --job <ID> [--addr <HOST:PORT>]
    macrochip shutdown  [--addr <HOST:PORT>]
    macrochip cache     stats | prune [--max-bytes <N>] [--older-than <AGE>]

NETWORKS:   p2p, limited, token, circuit, two-phase, two-phase-alt,
            hierarchical, all
PATTERNS:   uniform, transpose, butterfly, neighbor, all-to-all, hotspot

GEOMETRY:
    --side <N>         simulate an NxN macrochip instead of the paper's
                       8x8 (tables, sweep, sustained, coherent, mp,
                       faults, run-all, capture, replay, bench, serve).
                       Per-site bandwidths stay at the paper's figures;
                       photonic component counts, laser power and
                       propagation delays scale with the geometry. The
                       hierarchical network is designed for N > 8, where
                       the five flat architectures' provisioning grows
                       quadratically.
    --chips <M>        simulate an MxM board of macrochips (tables,
                       sweep, faults, run-all, bench; default 1). Each
                       chip runs its own instance of the chosen network;
                       every chip's gateway site (its local (0,0)) gets
                       a dedicated board-level WDM link to every other
                       gateway, with its own loss budget, laser power
                       and per-byte transceiver energy (see `tables
                       --chips M`). Traffic, fault specs and reports
                       address the flat (M*N)x(M*N) site grid. --chips 1
                       is byte-identical to not passing the flag, cache
                       keys included. The single-chip harnesses
                       (sustained, coherent, mp, capture, replay, serve,
                       submit) reject the flag.
WORKLOADS:  Radix, Barnes, Blackscholes, Densities, Forces, Swaptions,
            or a pattern name (synthetic, LS mix)
COLLECTIVES: ring, butterfly, halo, all-to-all

FAULT SPEC (clauses joined with ';'):
    link:3->17@2us  laser:5@500ns  site:12@1us   explicit faults
    rand-links=N    transient=P | transient=xtalk:K
    repair=SPAN     retries=N     backoff=SPAN   no-recovery

OUTPUT (sweep, sustained, faults, run-all):
    --trace <FILE>     write a Chrome-trace-event JSON flight recording
                       (open in ui.perfetto.dev or chrome://tracing)
    --metrics <FILE>   write metrics and a run manifest; JSON, or CSV when
                       the file name ends in .csv
    --audit            (sweep, faults, run-all, coherent, replay) run the
                       invariant auditor over every point: packet
                       conservation, causality and physical latency
                       floors, per-architecture resource invariants.
                       Violations are printed with packet id, site and sim
                       time, exported as the audit.* metrics family, and
                       fail the command with a nonzero exit.
    -q, --quiet        suppress the result table on stdout
    -v, --verbose      report progress on stderr as each point completes
    --progress         stream a live status line to stderr every 500 ms
                       (points done, furthest sim time, events, events/sec,
                       ETA) read from the always-on host counters; never
                       perturbs results
    --host-metrics     append a host.* metrics family (wall-clock,
                       events/sec, peak RSS, profiler span table) to the
                       --metrics output. Host figures are wall-clock
                       derived and nondeterministic, so they are off by
                       default to keep exported snapshots byte-identical
                       across reruns
    --profile          enable the span profiler (event dispatch, network
                       step, injection, source, trace fan-out, audit) and
                       print its self/total table to stderr on completion.
                       Under bench, the table is also written alongside
                       the baseline as BENCH_<n>.profile.txt.
                       Simulation results are byte-identical either way

HOST PERF BASELINE (bench):
    bench runs a fixed-seed workload on all five Figure 6 networks,
    repeats it (median of 5 trials; --quick = 3 shorter trials), checks
    that every trial agrees on the deterministic fields, and writes a
    schema-versioned BENCH_<n>.json (events/sec, wall-clock, commit).
    --against <FILE> compares versus a checked-in baseline and exits
    nonzero when any network's events/sec regressed by more than
    --max-regression (default 2.0; --factor is the historical alias).
    The factor in force is recorded in the written JSON. --with-tracer
    attaches a ring flight recorder during trials to measure tracer-on
    overhead.

SERVING CAMPAIGNS (serve, submit, status, result, cancel, shutdown):
    serve runs an always-on daemon on a local TCP socket speaking
    line-delimited JSON (default 127.0.0.1:7447; override with --addr or
    MACROCHIP_SERVE_ADDR). Jobs are sweep/faults/coherent/replay point
    lists; points shard across workers by their content hash, the result
    cache answers warm points before they are scheduled, and at most
    --queue-cap unfinished jobs are accepted (beyond that, submissions
    get a retryable 'queue full' error). Each finished or cancelled job
    is recorded as a manifest under --manifest-dir. submit builds the
    same points the direct subcommand would and, with --wait, streams
    progress (host.* counter deltas) and prints the identical table.
    cache stats / cache prune inspect and bound the shared result cache
    (prune by --max-bytes total size and/or --older-than age: 30s, 10m,
    2h, 7d).

PARALLELISM (sweep, faults, run-all — campaign engine):
    --jobs <N>         shard independent points across N worker threads
                       (default 1 = serial; 0 = one per hardware thread).
                       Output is byte-identical for every N.
    --no-cache         always simulate, bypassing the content-addressed
                       result cache under results/cache/ (override the
                       location with MACROCHIP_CACHE_DIR). Runs that record
                       a --trace, --metrics or --stats side channel skip
                       the cache automatically.

TRACES (capture, replay — the cross-network comparison harness):
    capture records every injected packet into a compact binary .mtrc
    trace, writes a .manifest.json provenance sidecar next to it and
    regenerates the directory's MANIFEST.json corpus index. replay streams
    a trace back through any network (optionally under a fault plan), so
    every architecture is judged on identical traffic; a same-network
    replay reproduces the live run's stats byte-for-byte. --stats writes
    the net.*-family metrics snapshot both sides use for that comparison.
    KINDS for --keep-kind: data, request, forward, invalidate, ack, control
";

/// Retained trace events per load point; the ring keeps the most recent
/// window when a point overflows it.
const TRACE_EVENTS_PER_POINT: usize = 1 << 16;

/// Output controls shared by the measurement subcommands.
struct OutputOpts {
    trace: Option<String>,
    metrics: Option<String>,
    audit: bool,
    quiet: bool,
    verbose: bool,
    /// Stream live status lines from the host counters (`--progress`).
    progress: bool,
    /// Export the nondeterministic host.* metrics family
    /// (`--host-metrics`); off by default so metrics files stay
    /// byte-identical across reruns.
    host_metrics: bool,
    /// Span profiler requested (`--profile`); parsing the flag also
    /// enables the profiler so every span from here on is recorded.
    profile: bool,
}

impl OutputOpts {
    fn parse(args: &[String]) -> OutputOpts {
        let profile = args.iter().any(|a| a == "--profile");
        if profile {
            prof::set_enabled(true);
        }
        OutputOpts {
            trace: flag(args, "--trace"),
            metrics: flag(args, "--metrics"),
            audit: args.iter().any(|a| a == "--audit"),
            quiet: args.iter().any(|a| a == "-q" || a == "--quiet"),
            verbose: args.iter().any(|a| a == "-v" || a == "--verbose"),
            progress: args.iter().any(|a| a == "--progress"),
            host_metrics: args.iter().any(|a| a == "--host-metrics"),
            profile,
        }
    }

    /// Prints the profiler's self/total span table to stderr when
    /// `--profile` was given. Call once, after the work is done.
    fn finish_profile(&self) {
        if self.profile {
            eprint!("{}", prof::report().table());
        }
    }
}

/// The host.* metrics record appended to `--metrics` output when
/// `--host-metrics` is given: wall-clock, throughput, peak RSS and the
/// profiler span table, flattened under a pseudo-network named `host`.
fn host_record(wall_ms: f64) -> RunRecord {
    let mut reg = MetricsRegistry::new();
    reg.record_host_stats(wall_ms, &prof::report());
    RunRecord {
        network: "host".into(),
        offered: 0.0,
        saturated: false,
        snapshot: reg.snapshot(),
    }
}

/// Accumulates per-point audit reports across a campaign and renders the
/// final verdict: a one-line all-clear on stderr, or every recorded
/// violation (packet id, site, sim time) plus a hard error.
struct AuditLog {
    enabled: bool,
    points: usize,
    violations: u64,
    lines: Vec<String>,
}

impl AuditLog {
    fn new(enabled: bool) -> AuditLog {
        AuditLog {
            enabled,
            points: 0,
            violations: 0,
            lines: Vec::new(),
        }
    }

    fn absorb(&mut self, label: &str, report: Option<&AuditReport>) {
        let Some(report) = report else { return };
        self.points += 1;
        self.violations += report.total_violations;
        for line in report.violation_lines() {
            self.lines.push(format!("[{label}] {line}"));
        }
    }

    fn finish(self, quiet: bool) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.violations == 0 {
            if !quiet {
                eprintln!("[audit] {} points audited, 0 violations", self.points);
            }
            return Ok(());
        }
        for line in &self.lines {
            eprintln!("[audit] {line}");
        }
        Err(format!(
            "audit: {} invariant violation(s) across {} audited point(s)",
            self.violations, self.points
        ))
    }
}

/// Campaign-engine controls shared by `sweep`, `faults` and `run-all`.
struct JobOpts {
    /// Worker threads; `0` auto-detects, `1` (the default) is serial.
    jobs: usize,
    /// Bypass the content-addressed result cache.
    no_cache: bool,
}

impl JobOpts {
    fn parse(args: &[String]) -> Result<JobOpts, String> {
        let jobs = match flag(args, "--jobs") {
            Some(s) => s.parse().map_err(|_| format!("bad --jobs {s}"))?,
            None => 1,
        };
        Ok(JobOpts {
            jobs,
            no_cache: args.iter().any(|a| a == "--no-cache"),
        })
    }
}

/// Opens the default result cache unless the user disabled it or the run
/// records a side channel — traces and metrics are not cached, so serving
/// a hit would silently drop them.
fn open_cache(
    no_cache: bool,
    side_channels: bool,
) -> Result<Option<campaign::ResultCache>, String> {
    if no_cache || side_channels {
        return Ok(None);
    }
    let dir = campaign::ResultCache::default_dir();
    campaign::ResultCache::new(dir.clone())
        .map(Some)
        .map_err(|e| format!("opening cache {}: {e}", dir.display()))
}

/// Manifest description of how the cache behaved over a campaign.
fn cache_summary(enabled: bool, hits: usize, total: usize) -> String {
    if enabled {
        format!("{hits}/{total} points from cache")
    } else {
        "disabled".into()
    }
}

/// One executed campaign cell as it crosses back from a worker: the
/// (possibly cached) result plus any requested side channels.
struct Cell {
    result: PointResult,
    cached: bool,
    trace: Vec<(Time, TraceEvent)>,
    metrics: Option<MetricsSnapshot>,
    audit: Option<AuditReport>,
}

/// Executes one campaign point with cache consultation. Side channels are
/// only produced on a miss (hits never simulate), but `open_cache`
/// guarantees the cache is off whenever side channels were requested.
fn run_cell(
    point: &CampaignPoint,
    fabric: &FabricConfig,
    cache: Option<&campaign::ResultCache>,
    exec: PointExecOptions,
) -> Cell {
    let key = fabric_point_key(point, fabric);
    if let Some(cache) = cache {
        if let Some(hit) = cache.load(key) {
            if hit.tag() == point.tag() {
                prof::add(prof::Counter::PointsDone, 1);
                return Cell {
                    result: hit,
                    cached: true,
                    trace: Vec::new(),
                    metrics: None,
                    audit: None,
                };
            }
        }
    }
    let run = campaign::run_point_full_fabric(point, fabric, exec);
    prof::add(prof::Counter::PointsDone, 1);
    if let Some(cache) = cache {
        // A failed store (read-only tree, disk full) only costs future
        // recomputation; the run itself still succeeds.
        let _ = cache.store(key, &run.result);
    }
    Cell {
        result: run.result,
        cached: false,
        trace: run.trace,
        metrics: run.metrics,
        audit: run.audit,
    }
}

/// One exported measurement: run label, offered load, its metrics.
struct RunRecord {
    network: String,
    offered: f64,
    saturated: bool,
    snapshot: MetricsSnapshot,
}

fn write_trace(path: &str, sections: &[(String, Vec<(Time, TraceEvent)>)]) -> Result<(), String> {
    std::fs::write(path, chrome_trace_json(sections)).map_err(|e| format!("writing {path}: {e}"))
}

fn write_metrics(path: &str, manifest: &RunManifest, runs: &[RunRecord]) -> Result<(), String> {
    let body = if path.ends_with(".csv") {
        let mut t = Table::new(&["Network", "Load (%)", "Metric", "Kind", "Field", "Value"]);
        for run in runs {
            for r in run.snapshot.rows() {
                t.row_owned(vec![
                    run.network.clone(),
                    fmt(run.offered * 100.0, 1),
                    r[0].clone(),
                    r[1].clone(),
                    r[2].clone(),
                    r[3].clone(),
                ]);
            }
        }
        t.to_csv()
    } else {
        let mut s = String::from("{\n\"manifest\": ");
        s.push_str(&manifest.to_json());
        s.push_str(",\n\"runs\": [");
        for (i, run) in runs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n{\n\"network\": \"");
            s.push_str(&netcore::metrics::json_escape(&run.network));
            s.push_str("\",\n\"offered_load\": ");
            s.push_str(&netcore::metrics::json_f64(run.offered));
            s.push_str(",\n\"saturated\": ");
            s.push_str(if run.saturated { "true" } else { "false" });
            s.push_str(",\n\"metrics\": ");
            s.push_str(&run.snapshot.to_json());
            s.push_str("\n}");
        }
        s.push_str("\n]\n}\n");
        s
    };
    std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))
}

/// Pulls `--flag value` out of the argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Builds the simulated macrochip from `--side <N>`: the paper's 8×8 by
/// default, or an N×N grid with per-site bandwidths held at the paper's
/// figures (see `MacrochipConfig::with_side`).
fn config_from_args(args: &[String]) -> Result<MacrochipConfig, String> {
    match flag(args, "--side") {
        None => Ok(MacrochipConfig::scaled()),
        Some(s) => {
            let side: usize = s.parse().map_err(|_| format!("bad --side {s}"))?;
            if !(2..=64).contains(&side) {
                return Err(format!("--side must be between 2 and 64, got {side}"));
            }
            Ok(MacrochipConfig::with_side(side))
        }
    }
}

/// Builds the simulated board from `--side <N>` and `--chips <M>`: one
/// bare macrochip by default, or an MxM fabric of identical chips joined
/// by board-level inter-chip links. A one-chip fabric is exactly the
/// single-chip simulator — same networks, same results, same cache keys.
fn fabric_from_args(args: &[String]) -> Result<FabricConfig, String> {
    let chip = config_from_args(args)?;
    let chips_per_side = match flag(args, "--chips") {
        None => 1,
        Some(s) => {
            let m: usize = s.parse().map_err(|_| format!("bad --chips {s}"))?;
            if !(1..=8).contains(&m) {
                return Err(format!("--chips must be between 1 and 8, got {m}"));
            }
            m
        }
    };
    let fabric = FabricConfig::grid(chips_per_side, chip);
    if fabric.global_side() > 128 {
        return Err(format!(
            "--chips {} x --side {} makes a {}-site board side; the supported maximum is 128",
            chips_per_side,
            chip.grid.side(),
            fabric.global_side()
        ));
    }
    Ok(fabric)
}

/// The configuration the fabric simulates as one flat site space: the
/// bare chip for a one-chip board (byte-identical to the pre-fabric
/// path), the global grid otherwise.
fn sim_config(fabric: &FabricConfig) -> MacrochipConfig {
    if fabric.is_single() {
        fabric.chip
    } else {
        fabric.global_config()
    }
}

/// Rejects `--chips` on subcommands whose harnesses are single-chip.
fn reject_chips(args: &[String], cmd: &str) -> Result<(), String> {
    if args.iter().any(|a| a == "--chips") {
        return Err(format!(
            "`{cmd}` is a single-chip harness and does not take --chips \
             (multi-chip boards run: tables, sweep, faults, run-all, bench)"
        ));
    }
    Ok(())
}

fn cmd_tables(args: &[String]) -> Result<(), String> {
    use photonics::inventory::ComponentCounts;
    use photonics::power::NetworkPower;
    let fabric = fabric_from_args(args)?;
    let layout = fabric.chip.layout;
    let mut power = Table::new(&["Network", "Loss factor", "Laser (W)"]);
    for row in NetworkPower::table5(&layout) {
        power.row_owned(vec![
            row.network.name().to_string(),
            format!("{}x", fmt(row.loss_factor, 0)),
            fmt(row.laser.watts(), 1),
        ]);
    }
    println!("Table 5: network optical power\n\n{}", power.to_text());
    let mut counts = Table::new(&["Network", "Tx", "Rx", "Wgs", "Switches"]);
    for c in ComponentCounts::table6(&layout) {
        counts.row_owned(vec![
            c.network.name().to_string(),
            c.transmitters.to_string(),
            c.receivers.to_string(),
            c.waveguides.to_string(),
            c.switches.to_string(),
        ]);
    }
    println!("Table 6: component counts\n\n{}", counts.to_text());
    if !fabric.is_single() {
        // Board level: Tables 5/6 above are per chip (x chip count for the
        // whole board); the dedicated inter-chip links add their own
        // inventory and power, under a board link budget distinct from the
        // on-chip Table 1 path.
        let spec = photonics::InterChipSpec {
            chips_per_side: fabric.chips_per_side,
            lambdas_per_link: fabric.link.lambdas,
            chip_pitch_cm: fabric.link.chip_pitch_cm,
        };
        println!(
            "Board level ({0}x{0} chips, on-chip tables are per chip):\n",
            fabric.chips_per_side
        );
        println!("  inventory: {}", spec.inventory());
        println!("  power:     {}", spec.power());
        println!(
            "\n{}",
            photonics::LinkBudget::inter_chip_board(fabric.link.chip_pitch_cm)
        );
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let out = OutputOpts::parse(args);
    let fabric = fabric_from_args(args)?;
    let config = sim_config(&fabric);
    let network_arg = flag(args, "--network").ok_or("missing --network")?;
    let kinds = names::parse_networks(&network_arg).ok_or("unknown network")?;
    let pattern_arg = flag(args, "--pattern").ok_or("missing --pattern")?;
    let pattern = names::parse_pattern(&pattern_arg).ok_or("unknown pattern")?;
    let loads: Vec<f64> = match flag(args, "--loads") {
        Some(s) => s
            .split(',')
            .map(|x| x.parse().map_err(|_| format!("bad load {x}")))
            .collect::<Result<_, _>>()?,
        None => macrochip::sweep::figure6_loads(pattern),
    };
    let jobs = JobOpts::parse(args)?;
    let options = SweepOptions::default();
    let started = Instant::now();
    let events_base = prof::counter(prof::Counter::SimEvents);
    // Every (network, load) cell is one independent campaign point, listed
    // in table order; the campaign engine hands the results back in that
    // same order no matter how many workers computed them.
    let points: Vec<CampaignPoint> = kinds
        .iter()
        .flat_map(|&kind| {
            loads.iter().map(move |&offered| CampaignPoint::Sweep {
                kind,
                pattern,
                offered,
                options,
            })
        })
        .collect();
    let exec = PointExecOptions {
        trace: out.trace.is_some(),
        metrics: out.metrics.is_some(),
        audit: out.audit,
        trace_capacity: TRACE_EVENTS_PER_POINT,
    };
    let cache = open_cache(jobs.no_cache, exec.trace || exec.metrics || exec.audit)?;
    let cells = {
        let _progress = ProgressReporter::start("sweep", points.len(), out.progress);
        run_indexed(&points, jobs.jobs, |_, point| {
            run_cell(point, &fabric, cache.as_ref(), exec)
        })
    };

    let mut table = report::sweep_table();
    let mut sections: Vec<(String, Vec<(Time, TraceEvent)>)> = Vec::new();
    let mut runs: Vec<RunRecord> = Vec::new();
    let mut audit_log = AuditLog::new(out.audit);
    let mut saturated_points = 0usize;
    let mut cache_hits = 0usize;
    for (point, cell) in points.iter().zip(cells) {
        let &CampaignPoint::Sweep {
            kind,
            offered: load,
            ..
        } = point
        else {
            unreachable!("sweep campaign holds only sweep points");
        };
        let cached = cell.cached;
        cache_hits += usize::from(cached);
        audit_log.absorb(
            &format!("{} @ {}%", kind.name(), fmt(load * 100.0, 1)),
            cell.audit.as_ref(),
        );
        let PointResult::Sweep(p) = cell.result else {
            unreachable!("sweep point produced a non-sweep result");
        };
        saturated_points += usize::from(p.saturated);
        report::sweep_row(&mut table, kind, &p);
        if out.trace.is_some() {
            let label = format!(
                "{} @ {}% {}",
                kind.name(),
                fmt(load * 100.0, 0),
                pattern_arg
            );
            sections.push((label, cell.trace));
        }
        if out.metrics.is_some() {
            runs.push(RunRecord {
                network: kind.name().to_string(),
                offered: load,
                saturated: p.saturated,
                snapshot: cell.metrics.expect("metrics were requested"),
            });
        }
        if out.verbose {
            eprintln!(
                "[sweep] {} @ {:.1}%: mean {:.2} ns, p99 {:.2} ns{}{}",
                kind.name(),
                load * 100.0,
                p.mean_latency_ns,
                p.p99_latency_ns,
                if p.saturated { " (saturated)" } else { "" },
                if cached { " (cached)" } else { "" }
            );
        }
    }
    if let Some(path) = &out.trace {
        write_trace(path, &sections)?;
    }
    if let Some(path) = &out.metrics {
        let mut manifest = RunManifest::new("sweep", &config);
        manifest.network = network_arg;
        manifest.pattern = pattern_arg;
        manifest.seed = options.seed;
        manifest.set_limits(DriveLimits::for_window(
            options.sim,
            options.drain,
            options.max_stalled,
        ));
        manifest.jobs = campaign::resolve_jobs(jobs.jobs);
        manifest.cache = cache_summary(cache.is_some(), cache_hits, points.len());
        if let Some(c) = &cache {
            manifest.cache_dir = c.dir().display().to_string();
        }
        manifest.outcome = format!("{saturated_points}/{} points saturated", points.len());
        manifest.set_host_stats(started.elapsed().as_secs_f64() * 1e3, events_base);
        if out.host_metrics {
            runs.push(host_record(manifest.wall_clock_ms));
        }
        write_metrics(path, &manifest, &runs)?;
    }
    if !out.quiet {
        println!("{}", table.to_text());
    }
    out.finish_profile();
    audit_log.finish(out.quiet)
}

fn cmd_sustained(args: &[String]) -> Result<(), String> {
    reject_chips(args, "sustained")?;
    let out = OutputOpts::parse(args);
    let config = config_from_args(args)?;
    let network_arg = flag(args, "--network").ok_or("missing --network")?;
    let kinds = names::parse_networks(&network_arg).ok_or("unknown network")?;
    let pattern_arg = flag(args, "--pattern").ok_or("missing --pattern")?;
    let pattern = names::parse_pattern(&pattern_arg).ok_or("unknown pattern")?;
    let options = SweepOptions::default();
    let started = Instant::now();
    let events_base = prof::counter(prof::Counter::SimEvents);
    let mut table = Table::new(&[
        "Network",
        "Sustained (% peak)",
        "Throughput (GB/s)",
        "p99 latency (ns)",
    ]);
    let mut sections: Vec<(String, Vec<(Time, TraceEvent)>)> = Vec::new();
    let mut runs: Vec<RunRecord> = Vec::new();
    for &kind in &kinds {
        let f = sustained_bandwidth(kind, pattern, &config, options, 0.01);
        // Re-measure at the sustained load so throughput and tail latency
        // describe the network at its operating point, not at saturation.
        let measure = f.max(0.01);
        let sink = Rc::new(RefCell::new(RingSink::new(TRACE_EVENTS_PER_POINT)));
        let tracer = if out.trace.is_some() {
            Tracer::shared(&sink)
        } else {
            Tracer::disabled()
        };
        let (p, net) = run_load_point_traced(
            networks::build(kind, config),
            pattern,
            measure,
            &config,
            options,
            tracer,
        );
        let gbps = net.stats().throughput_gbps();
        table.row_owned(vec![
            kind.name().to_string(),
            fmt(f * 100.0, 1),
            fmt(gbps, 2),
            fmt(p.p99_latency_ns, 1),
        ]);
        if out.trace.is_some() {
            let label = format!("{} sustained @ {}%", kind.name(), fmt(measure * 100.0, 1));
            sections.push((label, sink.borrow().snapshot()));
        }
        if out.metrics.is_some() {
            let mut reg = MetricsRegistry::new();
            reg.record_net_stats(net.stats());
            reg.set_gauge("run.sustained_fraction", f);
            runs.push(RunRecord {
                network: kind.name().to_string(),
                offered: measure,
                saturated: p.saturated,
                snapshot: reg.snapshot(),
            });
        }
        if out.verbose {
            eprintln!(
                "[sustained] {}: {:.1}% of peak, {:.2} GB/s, p99 {:.1} ns",
                kind.name(),
                f * 100.0,
                gbps,
                p.p99_latency_ns
            );
        }
    }
    if let Some(path) = &out.trace {
        write_trace(path, &sections)?;
    }
    if let Some(path) = &out.metrics {
        let mut manifest = RunManifest::new("sustained", &config);
        manifest.network = network_arg;
        manifest.pattern = pattern_arg;
        manifest.seed = options.seed;
        manifest.set_limits(DriveLimits {
            deadline: Time::ZERO + options.sim + options.drain,
            max_stalled: options.max_stalled,
        });
        manifest.set_host_stats(started.elapsed().as_secs_f64() * 1e3, events_base);
        if out.host_metrics {
            runs.push(host_record(manifest.wall_clock_ms));
        }
        write_metrics(path, &manifest, &runs)?;
    }
    if !out.quiet {
        println!("{}", table.to_text());
    }
    out.finish_profile();
    Ok(())
}

fn cmd_coherent(args: &[String]) -> Result<(), String> {
    reject_chips(args, "coherent")?;
    let config = config_from_args(args)?;
    let ops: u32 = flag(args, "--ops")
        .map(|s| s.parse().map_err(|_| "bad --ops"))
        .transpose()?
        .unwrap_or(40);
    let spec = names::parse_workload(&flag(args, "--workload").ok_or("missing --workload")?, ops)
        .ok_or("unknown workload")?;
    let kinds = names::parse_networks(&flag(args, "--network").ok_or("missing --network")?)
        .ok_or("unknown network")?;
    let audit = args.iter().any(|a| a == "--audit");
    let model = NetworkEnergyModel::new(config.layout);
    let mut table = report::coherent_table();
    let mut audit_log = AuditLog::new(audit);
    for kind in kinds {
        let run = if audit {
            let (run, report) = macrochip::experiment::run_coherent_audited(
                kind,
                &spec,
                &config,
                EngineConfig::default(),
                0xCAFE,
            );
            audit_log.absorb(&format!("{} {}", kind.name(), spec.name()), Some(&report));
            run
        } else {
            run_coherent(kind, &spec, &config, 0xCAFE)
        };
        report::coherent_row(&mut table, &model, &run);
    }
    println!("Workload: {}\n\n{}", spec.name(), table.to_text());
    audit_log.finish(false)
}

fn cmd_mp(args: &[String]) -> Result<(), String> {
    reject_chips(args, "mp")?;
    let config = config_from_args(args)?;
    let collective =
        names::parse_collective(&flag(args, "--collective").ok_or("missing --collective")?)
            .ok_or("unknown collective")?;
    let bytes: u32 = flag(args, "--bytes")
        .map(|s| s.parse().map_err(|_| "bad --bytes"))
        .transpose()?
        .unwrap_or(1024);
    let rounds: usize = flag(args, "--rounds")
        .map(|s| s.parse().map_err(|_| "bad --rounds"))
        .transpose()?
        .unwrap_or(1);
    for kind in NetworkKind::ALL {
        let mut net = networks::build(kind, config);
        let mut w = MessagePassingWorkload::new(&config.grid, collective, bytes, rounds);
        let outcome = drive(
            net.as_mut(),
            &mut w,
            DriveLimits {
                deadline: Time::from_us(1_000_000),
                max_stalled: usize::MAX,
            },
        );
        if outcome.timed_out {
            return Err(format!("{} timed out", kind.name()));
        }
        println!(
            "{:<24} {:>9.2} us",
            kind.name(),
            w.finished_at().expect("completed").as_us_f64()
        );
    }
    Ok(())
}

/// Default fault campaign when `--faults` is omitted: a light mix of
/// structural and transient faults with auto-repair.
const DEFAULT_FAULT_SPEC: &str = "rand-links=2; transient=0.01; repair=10us";

fn cmd_faults(args: &[String]) -> Result<(), String> {
    let out = OutputOpts::parse(args);
    let fabric = fabric_from_args(args)?;
    let config = sim_config(&fabric);
    let network_arg = flag(args, "--network").unwrap_or_else(|| "all".into());
    let kinds = names::parse_networks(&network_arg).ok_or("unknown network")?;
    let pattern_arg = flag(args, "--pattern").unwrap_or_else(|| "uniform".into());
    let pattern = names::parse_pattern(&pattern_arg).ok_or("unknown pattern")?;
    let load: f64 = flag(args, "--load")
        .map(|s| s.parse().map_err(|_| "bad --load"))
        .transpose()?
        .unwrap_or(0.05);
    let spec = flag(args, "--faults").unwrap_or_else(|| DEFAULT_FAULT_SPEC.into());
    let plan = faults::FaultPlan::parse(&spec).map_err(|e| e.to_string())?;
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(0xC0FFEE);
    let (sim, drain) = if args.iter().any(|a| a == "--duration-short") {
        (Span::from_us(1), Span::from_us(5))
    } else {
        (Span::from_us(5), Span::from_us(20))
    };
    let jobs = JobOpts::parse(args)?;
    const MAX_STALLED: usize = 5_000;
    let started = Instant::now();
    let events_base = prof::counter(prof::Counter::SimEvents);
    // One fault-campaign point per network; each worker builds its own
    // resilient network, fault RNG and traffic source, so points shard
    // cleanly and deterministically.
    let points: Vec<CampaignPoint> = kinds
        .iter()
        .map(|&kind| CampaignPoint::Fault {
            kind,
            pattern,
            load,
            plan: plan.clone(),
            seed,
            sim,
            drain,
            max_stalled: MAX_STALLED,
        })
        .collect();
    let exec = PointExecOptions {
        trace: out.trace.is_some(),
        metrics: out.metrics.is_some(),
        audit: out.audit,
        trace_capacity: TRACE_EVENTS_PER_POINT,
    };
    let cache = open_cache(jobs.no_cache, exec.trace || exec.metrics || exec.audit)?;
    let cells = {
        let _progress = ProgressReporter::start("faults", points.len(), out.progress);
        run_indexed(&points, jobs.jobs, |_, point| {
            run_cell(point, &fabric, cache.as_ref(), exec)
        })
    };

    let mut table = report::fault_table();
    let mut sections: Vec<(String, Vec<(Time, TraceEvent)>)> = Vec::new();
    let mut runs: Vec<RunRecord> = Vec::new();
    let mut audit_log = AuditLog::new(out.audit);
    let mut cache_hits = 0usize;
    for (point, cell) in points.iter().zip(cells) {
        let kind = point.kind();
        let cached = cell.cached;
        cache_hits += usize::from(cached);
        audit_log.absorb(&format!("{} faults", kind.name()), cell.audit.as_ref());
        let PointResult::Fault(f) = cell.result else {
            unreachable!("fault point produced a non-fault result");
        };
        report::fault_row(&mut table, kind, &f);
        if out.trace.is_some() {
            sections.push((format!("{} faults", kind.name()), cell.trace));
        }
        if out.metrics.is_some() {
            runs.push(RunRecord {
                network: kind.name().to_string(),
                offered: load,
                saturated: f.saturated,
                snapshot: cell.metrics.expect("metrics were requested"),
            });
        }
        if out.verbose {
            eprintln!(
                "[faults] {}: availability {:.4}, {} retries, {} dropped{}",
                kind.name(),
                f.availability,
                f.retries,
                f.lost,
                if cached { " (cached)" } else { "" }
            );
        }
    }
    if let Some(path) = &out.trace {
        write_trace(path, &sections)?;
    }
    if let Some(path) = &out.metrics {
        let mut manifest = RunManifest::new("faults", &config);
        manifest.network = network_arg;
        manifest.pattern = pattern_arg;
        manifest.fault_plan = plan.to_spec();
        manifest.seed = seed;
        manifest.set_limits(DriveLimits::for_window(sim, drain, MAX_STALLED));
        manifest.jobs = campaign::resolve_jobs(jobs.jobs);
        manifest.cache = cache_summary(cache.is_some(), cache_hits, points.len());
        if let Some(c) = &cache {
            manifest.cache_dir = c.dir().display().to_string();
        }
        manifest.set_host_stats(started.elapsed().as_secs_f64() * 1e3, events_base);
        if out.host_metrics {
            runs.push(host_record(manifest.wall_clock_ms));
        }
        write_metrics(path, &manifest, &runs)?;
    }
    if !out.quiet {
        println!("Fault plan: {}\n\n{}", plan.to_spec(), table.to_text());
    }
    out.finish_profile();
    audit_log.finish(out.quiet)
}

/// The whole open-loop evaluation in one campaign: every network's
/// Figure 6 latency-load curve plus every network's fault campaign, as a
/// single flat point list sharded across `--jobs` workers.
fn cmd_run_all(args: &[String]) -> Result<(), String> {
    let out = OutputOpts::parse(args);
    let jobs = JobOpts::parse(args)?;
    let fabric = fabric_from_args(args)?;
    let config = sim_config(&fabric);
    let pattern_arg = flag(args, "--pattern").unwrap_or_else(|| "uniform".into());
    let pattern = names::parse_pattern(&pattern_arg).ok_or("unknown pattern")?;
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(0xC0FFEE);
    let (sim, drain) = if args.iter().any(|a| a == "--duration-short") {
        (Span::from_us(1), Span::from_us(5))
    } else {
        (Span::from_us(5), Span::from_us(20))
    };
    const MAX_STALLED: usize = 5_000;
    const FAULT_LOAD: f64 = 0.05;
    let options = SweepOptions {
        sim,
        drain,
        max_stalled: MAX_STALLED,
        seed,
    };
    let plan = faults::FaultPlan::parse(DEFAULT_FAULT_SPEC).map_err(|e| e.to_string())?;
    let loads = macrochip::sweep::figure6_loads(pattern);
    let started = Instant::now();
    let events_base = prof::counter(prof::Counter::SimEvents);

    let mut points: Vec<CampaignPoint> = Vec::new();
    for &kind in NetworkKind::ALL.iter() {
        for &offered in &loads {
            points.push(CampaignPoint::Sweep {
                kind,
                pattern,
                offered,
                options,
            });
        }
    }
    let sweep_count = points.len();
    for &kind in NetworkKind::ALL.iter() {
        points.push(CampaignPoint::Fault {
            kind,
            pattern,
            load: FAULT_LOAD,
            plan: plan.clone(),
            seed,
            sim,
            drain,
            max_stalled: MAX_STALLED,
        });
    }

    let exec = PointExecOptions {
        trace: out.trace.is_some(),
        metrics: out.metrics.is_some(),
        audit: out.audit,
        trace_capacity: TRACE_EVENTS_PER_POINT,
    };
    let cache = open_cache(jobs.no_cache, exec.trace || exec.metrics || exec.audit)?;
    let cells = {
        let _progress = ProgressReporter::start("run-all", points.len(), out.progress);
        run_indexed(&points, jobs.jobs, |_, point| {
            run_cell(point, &fabric, cache.as_ref(), exec)
        })
    };

    let mut sweep_table = report::sweep_table();
    let mut fault_table = report::fault_table();
    let mut sections: Vec<(String, Vec<(Time, TraceEvent)>)> = Vec::new();
    let mut runs: Vec<RunRecord> = Vec::new();
    let mut audit_log = AuditLog::new(out.audit);
    let mut cache_hits = 0usize;
    let mut saturated_points = 0usize;
    for (point, cell) in points.iter().zip(cells) {
        cache_hits += usize::from(cell.cached);
        let audit_label = match point {
            CampaignPoint::Sweep { kind, offered, .. } => {
                format!("{} @ {}%", kind.name(), fmt(offered * 100.0, 1))
            }
            _ => format!("{} faults", point.kind().name()),
        };
        audit_log.absorb(&audit_label, cell.audit.as_ref());
        match (point, cell.result) {
            (&CampaignPoint::Sweep { kind, offered, .. }, PointResult::Sweep(p)) => {
                saturated_points += usize::from(p.saturated);
                report::sweep_row(&mut sweep_table, kind, &p);
                if exec.trace {
                    let label = format!(
                        "{} @ {}% {}",
                        kind.name(),
                        fmt(offered * 100.0, 0),
                        pattern_arg
                    );
                    sections.push((label, cell.trace));
                }
                if exec.metrics {
                    runs.push(RunRecord {
                        network: kind.name().to_string(),
                        offered,
                        saturated: p.saturated,
                        snapshot: cell.metrics.expect("metrics were requested"),
                    });
                }
            }
            (&CampaignPoint::Fault { kind, load, .. }, PointResult::Fault(f)) => {
                report::fault_row(&mut fault_table, kind, &f);
                if exec.trace {
                    sections.push((format!("{} faults", kind.name()), cell.trace));
                }
                if exec.metrics {
                    runs.push(RunRecord {
                        network: kind.name().to_string(),
                        offered: load,
                        saturated: f.saturated,
                        snapshot: cell.metrics.expect("metrics were requested"),
                    });
                }
            }
            _ => unreachable!("campaign returned a mismatched result type"),
        }
    }
    if let Some(path) = &out.trace {
        write_trace(path, &sections)?;
    }
    if let Some(path) = &out.metrics {
        let mut manifest = RunManifest::new("run-all", &config);
        manifest.network = "all".into();
        manifest.pattern = pattern_arg.clone();
        manifest.fault_plan = plan.to_spec();
        manifest.seed = seed;
        manifest.set_limits(DriveLimits::for_window(sim, drain, MAX_STALLED));
        manifest.jobs = campaign::resolve_jobs(jobs.jobs);
        manifest.cache = cache_summary(cache.is_some(), cache_hits, points.len());
        if let Some(c) = &cache {
            manifest.cache_dir = c.dir().display().to_string();
        }
        manifest.outcome = format!("{saturated_points}/{sweep_count} sweep points saturated");
        manifest.set_host_stats(started.elapsed().as_secs_f64() * 1e3, events_base);
        if out.host_metrics {
            runs.push(host_record(manifest.wall_clock_ms));
        }
        write_metrics(path, &manifest, &runs)?;
    }
    if !out.quiet {
        println!(
            "Figure 6 sweep ({} pattern)\n\n{}",
            pattern_arg,
            sweep_table.to_text()
        );
        println!(
            "Fault campaign: {}\n\n{}",
            plan.to_spec(),
            fault_table.to_text()
        );
    }
    if out.verbose {
        eprintln!(
            "[run-all] {} points, {} from cache, jobs={}, {:.2} s",
            points.len(),
            cache_hits,
            campaign::resolve_jobs(jobs.jobs),
            started.elapsed().as_secs_f64()
        );
    }
    out.finish_profile();
    audit_log.finish(out.quiet)
}

/// Writes the stats file used by the capture→replay byte-identity check:
/// a JSON object mapping each run's network to its `net.*`-family metrics
/// snapshot. A live capture and a same-network replay of its trace must
/// produce identical bytes.
fn write_stats(path: &str, runs: &[(String, MetricsSnapshot)]) -> Result<(), String> {
    let mut s = String::from("{\n\"stats\": [");
    for (i, (network, snap)) in runs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n{\n\"network\": \"");
        s.push_str(&netcore::metrics::json_escape(network));
        s.push_str("\",\n\"metrics\": ");
        s.push_str(&snap.to_json());
        s.push_str("\n}");
    }
    s.push_str("\n]\n}\n");
    std::fs::write(path, s).map_err(|e| format!("writing {path}: {e}"))
}

/// Drops one metrics family from a snapshot. Replay stats strip `replay.*`
/// (trace coverage, which a live run cannot record) so the remainder
/// matches the live capture bit-for-bit.
fn without_family(snap: &MetricsSnapshot, prefix: &str) -> MetricsSnapshot {
    MetricsSnapshot {
        counters: snap
            .counters
            .iter()
            .filter(|(n, _)| !n.starts_with(prefix))
            .cloned()
            .collect(),
        gauges: snap
            .gauges
            .iter()
            .filter(|(n, _)| !n.starts_with(prefix))
            .cloned()
            .collect(),
        histograms: snap
            .histograms
            .iter()
            .filter(|(n, _)| !n.starts_with(prefix))
            .cloned()
            .collect(),
    }
}

/// Parses a rational time-scale factor: `3/2`, or `4` for `4/1`.
fn parse_ratio(spec: &str) -> Result<(u64, u64), String> {
    let (num, den) = spec.split_once('/').unwrap_or((spec, "1"));
    let num = num.parse().map_err(|_| format!("bad ratio {spec}"))?;
    let den = den.parse().map_err(|_| format!("bad ratio {spec}"))?;
    Ok((num, den))
}

/// Parses a site map: `rot:K` rotates every index by K, or an explicit
/// comma list of one target index per site.
fn parse_site_map(spec: &str, sites: usize) -> Result<Vec<u16>, String> {
    if let Some(k) = spec.strip_prefix("rot:") {
        let k: usize = k.parse().map_err(|_| format!("bad --remap {spec}"))?;
        return Ok((0..sites).map(|i| ((i + k) % sites) as u16).collect());
    }
    spec.split(',')
        .map(|s| {
            s.trim()
                .parse::<u16>()
                .map_err(|_| format!("bad site index {s}"))
        })
        .collect()
}

fn cmd_capture(args: &[String]) -> Result<(), String> {
    reject_chips(args, "capture")?;
    let config = config_from_args(args)?;
    let out_path = flag(args, "--out").ok_or("missing --out <FILE.mtrc>")?;
    if let Some(parent) = Path::new(&out_path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
    {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("creating {}: {e}", parent.display()))?;
    }
    let network_arg = flag(args, "--network").unwrap_or_else(|| "p2p".into());
    let kinds = names::parse_networks(&network_arg).ok_or("unknown network")?;
    let &[kind] = &kinds[..] else {
        return Err("capture records one run; pick a single --network".into());
    };
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(0xC0FFEE);
    let stats_path = flag(args, "--stats");
    let quiet = args.iter().any(|a| a == "-q" || a == "--quiet");
    let started = Instant::now();
    let events_base = prof::counter(prof::Counter::SimEvents);
    let grid_side = config.grid.side() as u16;

    let (header, live_stats, pattern_label, limits, outcome);
    if let Some(name) = flag(args, "--workload") {
        if stats_path.is_some() {
            return Err(
                "--stats needs an open-loop capture (--pattern); the coherent harness owns \
                 its network"
                    .into(),
            );
        }
        let ops: u32 = flag(args, "--ops")
            .map(|s| s.parse().map_err(|_| "bad --ops"))
            .transpose()?
            .unwrap_or(40);
        let spec = names::parse_workload(&name, ops).ok_or("unknown workload")?;
        let meta = TraceMeta {
            grid_side,
            seed,
            description: format!("coherent {} on {} seed {seed}", spec.name(), kind.name()),
        };
        let mut sink = CaptureSink::create_file(&out_path, &meta)
            .map_err(|e| format!("creating {out_path}: {e}"))?;
        let run = run_coherent_observed(kind, &spec, &config, EngineConfig::default(), seed, |p| {
            sink.record(p)
        });
        header = sink
            .finish()
            .map_err(|e| format!("capturing into {out_path}: {e}"))?;
        live_stats = None;
        pattern_label = spec.name();
        limits = None;
        outcome = format!(
            "captured {} packets; makespan {} us",
            header.packets,
            fmt(run.makespan.as_ns_f64() / 1e3, 2)
        );
    } else {
        let pattern_arg = flag(args, "--pattern").ok_or("missing --pattern (or --workload)")?;
        let pattern = names::parse_pattern(&pattern_arg).ok_or("unknown pattern")?;
        let load: f64 = flag(args, "--load")
            .map(|s| s.parse().map_err(|_| "bad --load"))
            .transpose()?
            .unwrap_or(0.05);
        let (sim, drain) = if args.iter().any(|a| a == "--duration-short") {
            (Span::from_us(1), Span::from_us(5))
        } else {
            (Span::from_us(5), Span::from_us(20))
        };
        let options = SweepOptions {
            sim,
            drain,
            max_stalled: 5_000,
            seed,
        };
        let meta = TraceMeta {
            grid_side,
            seed,
            description: format!(
                "open-loop {pattern_arg} @ {}% on {} seed {seed}",
                fmt(load * 100.0, 1),
                kind.name()
            ),
        };
        let mut sink = CaptureSink::create_file(&out_path, &meta)
            .map_err(|e| format!("creating {out_path}: {e}"))?;
        let (point, net) = run_load_point_observed(
            networks::build(kind, config),
            pattern,
            load,
            &config,
            options,
            Tracer::disabled(),
            |p| sink.record(p),
        );
        header = sink
            .finish()
            .map_err(|e| format!("capturing into {out_path}: {e}"))?;
        let mut reg = MetricsRegistry::new();
        reg.record_net_stats(net.stats());
        live_stats = Some(reg.snapshot());
        pattern_label = pattern_arg;
        limits = Some(DriveLimits::for_window(sim, drain, options.max_stalled));
        outcome = format!(
            "captured {} packets{}",
            header.packets,
            if point.saturated { " (saturated)" } else { "" }
        );
    }

    let trace_path = Path::new(&out_path);
    let mut manifest = RunManifest::new("capture", &config);
    manifest.network = network_arg;
    manifest.pattern = pattern_label;
    manifest.seed = seed;
    if let Some(limits) = limits {
        manifest.set_limits(limits);
    }
    manifest.outcome = outcome.clone();
    manifest.set_host_stats(started.elapsed().as_secs_f64() * 1e3, events_base);
    let sidecar = replay::sidecar_path(trace_path);
    std::fs::write(&sidecar, manifest.to_json() + "\n")
        .map_err(|e| format!("writing {}: {e}", sidecar.display()))?;
    let dir = match trace_path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let index = CorpusManifest::scan(dir)
        .and_then(|m| m.write_index(dir))
        .map_err(|e| format!("indexing {}: {e}", dir.display()))?;
    if let Some(path) = &stats_path {
        let snap = live_stats.expect("open-loop capture has live stats");
        write_stats(path, &[(kind.name().to_string(), snap)])?;
    }
    if !quiet {
        println!(
            "{out_path}: {} packets, {} us, hash {:016x}\n{}\nsidecar {}\nindex {}",
            header.packets,
            fmt(header.last_ps as f64 / 1e6, 2),
            header.content_hash,
            outcome,
            sidecar.display(),
            index.display()
        );
    }
    Ok(())
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    reject_chips(args, "replay")?;
    let config = config_from_args(args)?;
    let trace_arg = flag(args, "--trace").ok_or("missing --trace <FILE.mtrc>")?;
    // Streaming full-body validation up front: a truncated file or a
    // corrupted block is a clear error here, before any simulation runs.
    let header = replay::validate(Path::new(&trace_arg))
        .map_err(|e| format!("validating {trace_arg}: {e}"))?;
    let side = usize::from(header.meta.grid_side);
    if side != config.grid.side() {
        return Err(format!(
            "trace was captured on a {side}x{side} grid, configuration is {0}x{0}",
            config.grid.side()
        ));
    }
    let network_arg = flag(args, "--network").unwrap_or_else(|| "all".into());
    let kinds = names::parse_networks(&network_arg).ok_or("unknown network")?;
    let plan = flag(args, "--faults")
        .map(|s| faults::FaultPlan::parse(&s).map_err(|e| e.to_string()))
        .transpose()?;
    let seed: u64 = flag(args, "--seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(0xC0FFEE);
    let drain = if args.iter().any(|a| a == "--duration-short") {
        Span::from_us(5)
    } else {
        Span::from_us(20)
    };
    const MAX_STALLED: usize = 5_000;
    let jobs = JobOpts::parse(args)?;
    let trace_out = flag(args, "--trace-out");
    let metrics_path = flag(args, "--metrics");
    let stats_path = flag(args, "--stats");
    let audit = args.iter().any(|a| a == "--audit");
    let quiet = args.iter().any(|a| a == "-q" || a == "--quiet");
    let verbose = args.iter().any(|a| a == "-v" || a == "--verbose");
    let progress = args.iter().any(|a| a == "--progress");
    let host_metrics = args.iter().any(|a| a == "--host-metrics");
    let started = Instant::now();
    let events_base = prof::counter(prof::Counter::SimEvents);

    // One replay point per network — identical traffic, sharded like any
    // other campaign. The cache key covers the trace's content hash, not
    // its path.
    let points: Vec<CampaignPoint> = kinds
        .iter()
        .map(|&kind| CampaignPoint::Replay {
            kind,
            trace: trace_arg.clone(),
            content_hash: header.content_hash,
            plan: plan.clone(),
            seed,
            drain,
            max_stalled: MAX_STALLED,
        })
        .collect();
    let exec = PointExecOptions {
        trace: trace_out.is_some(),
        metrics: metrics_path.is_some() || stats_path.is_some(),
        audit,
        trace_capacity: TRACE_EVENTS_PER_POINT,
    };
    let cache = open_cache(jobs.no_cache, exec.trace || exec.metrics || exec.audit)?;
    let cells = {
        let _progress = ProgressReporter::start("replay", points.len(), progress);
        // Replay is single-chip (`reject_chips` above); the one-chip
        // fabric wrapper shares the campaign cell path and cache keys.
        let single = FabricConfig::single(config);
        run_indexed(&points, jobs.jobs, |_, point| {
            run_cell(point, &single, cache.as_ref(), exec)
        })
    };

    let mut table = report::replay_table();
    let mut sections: Vec<(String, Vec<(Time, TraceEvent)>)> = Vec::new();
    let mut runs: Vec<RunRecord> = Vec::new();
    let mut stats_runs: Vec<(String, MetricsSnapshot)> = Vec::new();
    let mut audit_log = AuditLog::new(audit);
    let mut cache_hits = 0usize;
    for (point, cell) in points.iter().zip(cells) {
        let kind = point.kind();
        cache_hits += usize::from(cell.cached);
        audit_log.absorb(&format!("{} replay", kind.name()), cell.audit.as_ref());
        let PointResult::Replay(r) = cell.result else {
            unreachable!("replay point produced a non-replay result");
        };
        if r.poisoned {
            return Err(format!(
                "replaying {trace_arg} on {}: trace failed mid-replay after validation",
                kind.name()
            ));
        }
        report::replay_row(&mut table, kind, &r);
        if exec.trace {
            sections.push((format!("{} replay", kind.name()), cell.trace));
        }
        if let Some(snap) = cell.metrics {
            if stats_path.is_some() {
                stats_runs.push((kind.name().to_string(), without_family(&snap, "replay.")));
            }
            if metrics_path.is_some() {
                runs.push(RunRecord {
                    network: kind.name().to_string(),
                    offered: f64::NAN,
                    saturated: r.saturated,
                    snapshot: snap,
                });
            }
        }
        if verbose {
            eprintln!(
                "[replay] {}: {}/{} delivered, mean {:.2} ns{}",
                kind.name(),
                r.delivered,
                r.trace_packets,
                r.mean_latency_ns,
                if cell.cached { " (cached)" } else { "" }
            );
        }
    }
    if let Some(path) = &trace_out {
        write_trace(path, &sections)?;
    }
    if let Some(path) = &metrics_path {
        let mut manifest = RunManifest::new("replay", &config);
        manifest.network = network_arg;
        manifest.pattern = trace_arg.clone();
        if let Some(plan) = &plan {
            manifest.fault_plan = plan.to_spec();
        }
        manifest.seed = seed;
        manifest.set_limits(DriveLimits {
            deadline: header.last_time() + drain,
            max_stalled: MAX_STALLED,
        });
        manifest.jobs = campaign::resolve_jobs(jobs.jobs);
        manifest.cache = cache_summary(cache.is_some(), cache_hits, points.len());
        if let Some(c) = &cache {
            manifest.cache_dir = c.dir().display().to_string();
        }
        manifest.outcome = format!(
            "replayed {} packets on {} networks",
            header.packets,
            points.len()
        );
        manifest.set_host_stats(started.elapsed().as_secs_f64() * 1e3, events_base);
        if host_metrics {
            runs.push(host_record(manifest.wall_clock_ms));
        }
        write_metrics(path, &manifest, &runs)?;
    }
    if let Some(path) = &stats_path {
        write_stats(path, &stats_runs)?;
    }
    if !quiet {
        println!(
            "Trace {trace_arg}: {} packets, {} us, hash {:016x}\n\n{}",
            header.packets,
            fmt(header.last_ps as f64 / 1e6, 2),
            header.content_hash,
            table.to_text()
        );
    }
    audit_log.finish(quiet)
}

fn cmd_trace_info(args: &[String]) -> Result<(), String> {
    let mut table = Table::new(&[
        "File",
        "Packets",
        "Duration (us)",
        "Grid",
        "Seed",
        "Size (B)",
        "Hash",
        "Description",
    ]);
    if let Some(dir) = flag(args, "--dir") {
        // Directory mode decodes headers only (cheap corpus listing);
        // single-file mode below does full-body CRC validation.
        let corpus = CorpusManifest::scan(&dir).map_err(|e| format!("scanning {dir}: {e}"))?;
        for e in &corpus.entries {
            table.row_owned(vec![
                e.file.clone(),
                e.header.packets.to_string(),
                fmt(e.header.last_ps as f64 / 1e6, 2),
                format!("{0}x{0}", e.header.meta.grid_side),
                e.header.meta.seed.to_string(),
                e.size_bytes.to_string(),
                format!("{:016x}", e.header.content_hash),
                e.header.meta.description.clone(),
            ]);
        }
        println!("{}", table.to_text());
        if args.iter().any(|a| a == "--write-index") {
            let path = corpus
                .write_index(&dir)
                .map_err(|e| format!("indexing {dir}: {e}"))?;
            println!("wrote {}", path.display());
        }
        return Ok(());
    }
    let mut files: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" | "--dir" => i += 2,
            a if a.starts_with('-') => i += 1,
            a => {
                files.push(a.to_string());
                i += 1;
            }
        }
    }
    if let Some(t) = flag(args, "--trace") {
        files.push(t);
    }
    if files.is_empty() {
        return Err("trace-info needs <FILE.mtrc> arguments or --dir <DIR>".into());
    }
    for f in &files {
        // Full streaming validation, not just the header: every block's
        // CRC is checked, so trace-info doubles as an integrity check.
        let h = replay::validate(Path::new(f)).map_err(|e| format!("validating {f}: {e}"))?;
        let size = std::fs::metadata(f).map(|m| m.len()).unwrap_or(0);
        table.row_owned(vec![
            f.clone(),
            h.packets.to_string(),
            fmt(h.last_ps as f64 / 1e6, 2),
            format!("{0}x{0}", h.meta.grid_side),
            h.meta.seed.to_string(),
            size.to_string(),
            format!("{:016x}", h.content_hash),
            h.meta.description.clone(),
        ]);
    }
    println!("{}", table.to_text());
    Ok(())
}

fn cmd_trace_transform(args: &[String]) -> Result<(), String> {
    let out_path = flag(args, "--out").ok_or("missing --out <FILE.mtrc>")?;
    const OPS: [&str; 6] = [
        "--time-scale",
        "--truncate",
        "--truncate-ns",
        "--keep-kind",
        "--remap",
        "--merge",
    ];
    let given: Vec<&str> = OPS
        .iter()
        .copied()
        .filter(|o| flag(args, o).is_some())
        .collect();
    let &[op] = &given[..] else {
        return Err(
            "pick exactly one transform: --time-scale <N/D>, --truncate <N>, \
             --truncate-ns <NS>, --keep-kind <KIND>, --remap <rot:K|i,j,...>, \
             --merge <A,B,...>"
                .into(),
        );
    };
    let spec = flag(args, op).expect("op flag present");
    let output = || -> Result<BufWriter<File>, String> {
        File::create(&out_path)
            .map(BufWriter::new)
            .map_err(|e| format!("creating {out_path}: {e}"))
    };
    let open_input = || -> Result<_, String> {
        let path = flag(args, "--trace").ok_or("missing --trace <IN.mtrc>")?;
        replay::open_file(&path).map_err(|e| format!("opening {path}: {e}"))
    };
    let header = match op {
        "--time-scale" => {
            let (num, den) = parse_ratio(&spec)?;
            replay::transform::time_scale(open_input()?, output()?, num, den)
        }
        "--truncate" => {
            let n: u64 = spec.parse().map_err(|_| format!("bad --truncate {spec}"))?;
            replay::transform::truncate(open_input()?, output()?, n, None)
        }
        "--truncate-ns" => {
            let ns: u64 = spec
                .parse()
                .map_err(|_| format!("bad --truncate-ns {spec}"))?;
            replay::transform::truncate(open_input()?, output()?, u64::MAX, Some(Time::from_ns(ns)))
        }
        "--keep-kind" => {
            let kind = names::parse_message_kind(&spec)
                .ok_or_else(|| format!("unknown message kind {spec}"))?;
            replay::transform::filter(
                open_input()?,
                output()?,
                move |p| p.kind == kind,
                &format!("kind={spec}"),
            )
        }
        "--remap" => {
            let input = open_input()?;
            let side = usize::from(input.header().meta.grid_side);
            let map = parse_site_map(&spec, side * side)?;
            replay::transform::site_remap(input, output()?, &map)
        }
        "--merge" => {
            let mut inputs = Vec::new();
            for path in spec.split(',').filter(|s| !s.is_empty()) {
                inputs.push(replay::open_file(path).map_err(|e| format!("opening {path}: {e}"))?);
            }
            replay::transform::merge(inputs, output()?)
        }
        _ => unreachable!("op came from OPS"),
    }
    .map_err(|e| format!("transforming: {e}"))?;
    println!(
        "{out_path}: {} packets, {} us, hash {:016x}",
        header.packets,
        fmt(header.last_ps as f64 / 1e6, 2),
        header.content_hash
    );
    Ok(())
}

/// `macrochip bench` — measure host throughput on all five networks and
/// write the standing `BENCH_*.json` baseline. See `bench` in USAGE.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let fabric = fabric_from_args(args)?;
    let quiet = args.iter().any(|a| a == "-q" || a == "--quiet");
    let profile = args.iter().any(|a| a == "--profile");
    if profile {
        prof::set_enabled(true);
    }
    let mut options = if args.iter().any(|a| a == "--quick") {
        BenchOptions::quick()
    } else {
        BenchOptions::full()
    };
    if let Some(t) = flag(args, "--trials") {
        options.trials = t.parse().map_err(|_| format!("bad --trials {t}"))?;
        if options.trials == 0 {
            return Err("--trials must be at least 1".into());
        }
    }
    options.trace = args.iter().any(|a| a == "--with-tracer");
    options.progress = args
        .iter()
        .any(|a| a == "--progress" || a == "-v" || a == "--verbose");
    let out_path = flag(args, "--out").unwrap_or_else(|| "BENCH_1.json".into());
    // `--factor` is the historical spelling of `--max-regression`.
    let factor: f64 = flag(args, "--max-regression")
        .or_else(|| flag(args, "--factor"))
        .map(|s| s.parse().map_err(|_| format!("bad --max-regression {s}")))
        .transpose()?
        .unwrap_or(macrochip::bench::DEFAULT_MAX_REGRESSION);
    options.max_regression = factor;

    let report = macrochip::bench::run_bench_on(&fabric, &options);
    std::fs::write(&out_path, report.to_json() + "\n")
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    if !quiet {
        print!("{}", report.table());
        println!(
            "\nwrote {out_path} (commit {}, {} trials)",
            report.commit, report.trials
        );
    }
    if profile {
        let table = prof::report().table();
        eprint!("{table}");
        // The self-time table lands next to the baseline so before/after
        // hot-site breakdowns can be diffed the same way BENCH files are.
        let prof_path = out_path
            .strip_suffix(".json")
            .map(|stem| format!("{stem}.profile.txt"))
            .unwrap_or_else(|| format!("{out_path}.profile.txt"));
        std::fs::write(&prof_path, &table).map_err(|e| format!("writing {prof_path}: {e}"))?;
        if !quiet {
            println!("wrote {prof_path} (span-profiler self-time table)");
        }
    }

    if let Some(base_path) = flag(args, "--against") {
        let text =
            std::fs::read_to_string(&base_path).map_err(|e| format!("reading {base_path}: {e}"))?;
        let baseline =
            BenchReport::from_json(&text).map_err(|e| format!("parsing {base_path}: {e}"))?;
        let diff = macrochip::bench::compare(&report, &baseline, factor);
        for w in &diff.warnings {
            eprintln!("[bench] warning: {w}");
        }
        if !quiet {
            for line in &diff.lines {
                println!("{line}");
            }
        }
        if !diff.passed() {
            return Err(format!(
                "bench regression vs {base_path}:\n  {}",
                diff.regressions.join("\n  ")
            ));
        }
        if !quiet {
            println!("bench: within {factor}x of {base_path} on all networks");
        }
    }
    Ok(())
}

/// `macrochip serve` — run the always-on campaign daemon.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    reject_chips(args, "serve")?;
    let addr = flag(args, "--addr").unwrap_or_else(serve::default_addr);
    let workers: usize = flag(args, "--workers")
        .map(|s| s.parse().map_err(|_| format!("bad --workers {s}")))
        .transpose()?
        .unwrap_or(0);
    let queue_cap: usize = flag(args, "--queue-cap")
        .map(|s| s.parse().map_err(|_| format!("bad --queue-cap {s}")))
        .transpose()?
        .unwrap_or(16);
    if queue_cap == 0 {
        return Err("--queue-cap must be at least 1".into());
    }
    let no_cache = args.iter().any(|a| a == "--no-cache");
    let quiet = args.iter().any(|a| a == "-q" || a == "--quiet");
    let options = serve::ServeOptions {
        workers,
        queue_cap,
        cache: open_cache(no_cache, false)?,
        manifest_dir: flag(args, "--manifest-dir").map(PathBuf::from),
        quiet,
    };
    let server = serve::Server::bind(&addr as &str, config_from_args(args)?, options)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    server.run().map_err(|e| format!("serving on {addr}: {e}"))
}

/// Connects to the daemon named by `--addr` (default
/// `$MACROCHIP_SERVE_ADDR`, then `127.0.0.1:7447`).
fn connect(args: &[String]) -> Result<(String, serve::Client), String> {
    let addr = flag(args, "--addr").unwrap_or_else(serve::default_addr);
    let client = serve::Client::connect(&addr)
        .map_err(|e| format!("connecting to {addr} (is `macrochip serve` running?): {e}"))?;
    Ok((addr, client))
}

/// Builds the campaign points (and the stdout the direct command would
/// print around its result table) for one `submit` subcommand. Point
/// construction mirrors the direct subcommands exactly — same defaults,
/// same seeds — so a served job is byte-identical to a local run.
fn build_submission(sub: &str, args: &[String]) -> Result<(Vec<CampaignPoint>, String), String> {
    match sub {
        "sweep" => {
            let kinds = names::parse_networks(&flag(args, "--network").ok_or("missing --network")?)
                .ok_or("unknown network")?;
            let pattern =
                names::parse_pattern(&flag(args, "--pattern").ok_or("missing --pattern")?)
                    .ok_or("unknown pattern")?;
            let loads: Vec<f64> = match flag(args, "--loads") {
                Some(s) => s
                    .split(',')
                    .map(|x| x.parse().map_err(|_| format!("bad load {x}")))
                    .collect::<Result<_, _>>()?,
                None => macrochip::sweep::figure6_loads(pattern),
            };
            let options = SweepOptions::default();
            let points = kinds
                .iter()
                .flat_map(|&kind| {
                    loads.iter().map(move |&offered| CampaignPoint::Sweep {
                        kind,
                        pattern,
                        offered,
                        options,
                    })
                })
                .collect();
            Ok((points, String::new()))
        }
        "faults" => {
            let kinds =
                names::parse_networks(&flag(args, "--network").unwrap_or_else(|| "all".into()))
                    .ok_or("unknown network")?;
            let pattern =
                names::parse_pattern(&flag(args, "--pattern").unwrap_or_else(|| "uniform".into()))
                    .ok_or("unknown pattern")?;
            let load: f64 = flag(args, "--load")
                .map(|s| s.parse().map_err(|_| "bad --load"))
                .transpose()?
                .unwrap_or(0.05);
            let spec = flag(args, "--faults").unwrap_or_else(|| DEFAULT_FAULT_SPEC.into());
            let plan = faults::FaultPlan::parse(&spec).map_err(|e| e.to_string())?;
            let seed: u64 = flag(args, "--seed")
                .map(|s| s.parse().map_err(|_| "bad --seed"))
                .transpose()?
                .unwrap_or(0xC0FFEE);
            let (sim, drain) = if args.iter().any(|a| a == "--duration-short") {
                (Span::from_us(1), Span::from_us(5))
            } else {
                (Span::from_us(5), Span::from_us(20))
            };
            let prefix = format!("Fault plan: {}\n\n", plan.to_spec());
            let points = kinds
                .iter()
                .map(|&kind| CampaignPoint::Fault {
                    kind,
                    pattern,
                    load,
                    plan: plan.clone(),
                    seed,
                    sim,
                    drain,
                    max_stalled: 5_000,
                })
                .collect();
            Ok((points, prefix))
        }
        "coherent" => {
            let ops: u32 = flag(args, "--ops")
                .map(|s| s.parse().map_err(|_| "bad --ops"))
                .transpose()?
                .unwrap_or(40);
            let spec =
                names::parse_workload(&flag(args, "--workload").ok_or("missing --workload")?, ops)
                    .ok_or("unknown workload")?;
            let kinds = names::parse_networks(&flag(args, "--network").ok_or("missing --network")?)
                .ok_or("unknown network")?;
            let prefix = format!("Workload: {}\n\n", spec.name());
            let points = kinds
                .iter()
                .map(|&kind| CampaignPoint::Coherent {
                    kind,
                    spec: spec.clone(),
                    seed: 0xCAFE,
                })
                .collect();
            Ok((points, prefix))
        }
        "replay" => {
            let trace_arg = flag(args, "--trace").ok_or("missing --trace <FILE.mtrc>")?;
            let header = replay::validate(Path::new(&trace_arg))
                .map_err(|e| format!("validating {trace_arg}: {e}"))?;
            let kinds =
                names::parse_networks(&flag(args, "--network").unwrap_or_else(|| "all".into()))
                    .ok_or("unknown network")?;
            let plan = flag(args, "--faults")
                .map(|s| faults::FaultPlan::parse(&s).map_err(|e| e.to_string()))
                .transpose()?;
            let seed: u64 = flag(args, "--seed")
                .map(|s| s.parse().map_err(|_| "bad --seed"))
                .transpose()?
                .unwrap_or(0xC0FFEE);
            let drain = if args.iter().any(|a| a == "--duration-short") {
                Span::from_us(5)
            } else {
                Span::from_us(20)
            };
            let prefix = format!(
                "Trace {trace_arg}: {} packets, {} us, hash {:016x}\n\n",
                header.packets,
                fmt(header.last_ps as f64 / 1e6, 2),
                header.content_hash
            );
            let points = kinds
                .iter()
                .map(|&kind| CampaignPoint::Replay {
                    kind,
                    trace: trace_arg.clone(),
                    content_hash: header.content_hash,
                    plan: plan.clone(),
                    seed,
                    drain,
                    max_stalled: 5_000,
                })
                .collect();
            Ok((points, prefix))
        }
        other => Err(format!(
            "submit serves sweep, faults, coherent or replay campaigns, not '{other}'"
        )),
    }
}

/// Renders served results exactly as the matching direct subcommand
/// would have printed them.
fn render_results(
    sub: &str,
    prefix: &str,
    points: &[CampaignPoint],
    results: &[PointResult],
) -> Result<(), String> {
    if points.len() != results.len() {
        return Err(format!(
            "server returned {} results for {} points",
            results.len(),
            points.len()
        ));
    }
    let table = match sub {
        "sweep" => {
            let mut table = report::sweep_table();
            for (point, result) in points.iter().zip(results) {
                let (PointResult::Sweep(p), kind) = (result, point.kind()) else {
                    return Err("server returned a non-sweep result".into());
                };
                report::sweep_row(&mut table, kind, p);
            }
            table
        }
        "faults" => {
            let mut table = report::fault_table();
            for (point, result) in points.iter().zip(results) {
                let (PointResult::Fault(f), kind) = (result, point.kind()) else {
                    return Err("server returned a non-fault result".into());
                };
                report::fault_row(&mut table, kind, f);
            }
            table
        }
        "coherent" => {
            let model = NetworkEnergyModel::default();
            let mut table = report::coherent_table();
            for result in results {
                let PointResult::Coherent(run) = result else {
                    return Err("server returned a non-coherent result".into());
                };
                report::coherent_row(&mut table, &model, run);
            }
            table
        }
        "replay" => {
            let mut table = report::replay_table();
            for (point, result) in points.iter().zip(results) {
                let (PointResult::Replay(r), kind) = (result, point.kind()) else {
                    return Err("server returned a non-replay result".into());
                };
                report::replay_row(&mut table, kind, r);
            }
            table
        }
        _ => unreachable!("build_submission vetted the subcommand"),
    };
    println!("{prefix}{}", table.to_text());
    Ok(())
}

/// `macrochip submit` — send a campaign to the daemon; with `--wait`,
/// stream progress and print the same table the direct command would.
fn cmd_submit(args: &[String]) -> Result<(), String> {
    reject_chips(args, "submit")?;
    let sub = args
        .get(1)
        .filter(|a| !a.starts_with('-'))
        .ok_or("submit needs a campaign: sweep, faults, coherent or replay")?
        .clone();
    let (points, prefix) = build_submission(&sub, args)?;
    let quiet = args.iter().any(|a| a == "-q" || a == "--quiet");
    let verbose = args.iter().any(|a| a == "-v" || a == "--verbose");
    let (addr, mut client) = connect(args)?;
    let submitted = client.submit(&sub, None, points.clone())?;
    if !quiet {
        eprintln!(
            "[submit] {} accepted by {addr}: {} points, {} warm, state {}",
            submitted.job, submitted.points, submitted.warm, submitted.state
        );
    }
    if !args.iter().any(|a| a == "--wait") {
        if !quiet {
            println!("{}", submitted.job);
        }
        return Ok(());
    }
    let status = client.wait(&submitted.job, |s| {
        if verbose {
            eprintln!(
                "[submit] {}: {}/{} points, {} events, {} cache hits",
                s.job, s.done, s.total, s.counters.sim_events, s.counters.cache_hits
            );
        }
    })?;
    if status.state != "done" {
        return Err(format!(
            "job {} ended {} with {}/{} points done",
            status.job, status.state, status.done, status.total
        ));
    }
    let results = client.result(&submitted.job)?;
    if quiet {
        return Ok(());
    }
    render_results(&sub, &prefix, &points, &results)
}

/// `macrochip status` — one job's progress, or the server's vitals.
fn cmd_status(args: &[String]) -> Result<(), String> {
    let (addr, mut client) = connect(args)?;
    match flag(args, "--job") {
        Some(job) => {
            let s = client.status(&job)?;
            println!(
                "{}: {}, {}/{} points done ({} warm), {:.0} ms, {} sim events, \
                 {} cache hits / {} misses",
                s.job,
                s.state,
                s.done,
                s.total,
                s.warm,
                s.wall_ms,
                s.counters.sim_events,
                s.counters.cache_hits,
                s.counters.cache_misses
            );
        }
        None => {
            let v = client.ping()?;
            let field = |k: &str| {
                v.get(k).map_or("?".to_string(), |f| match f {
                    macrochip::json::Value::String(s) => s.clone(),
                    other => format!("{other:?}"),
                })
            };
            let num = |k: &str| {
                v.get(k)
                    .and_then(macrochip::json::Value::as_u64)
                    .unwrap_or(0)
            };
            println!(
                "{addr}: macrochip-serve v{} (protocol {}), {} workers, queue cap {}, \
                 cache {}, {} jobs accepted ({} unfinished)",
                field("version"),
                num("protocol"),
                num("workers"),
                num("queue_cap"),
                field("cache"),
                num("jobs"),
                num("unfinished")
            );
        }
    }
    Ok(())
}

/// `macrochip result` — fetch a finished job's results in the raw
/// bit-exact cache encoding (`submit --wait` renders tables instead).
fn cmd_result(args: &[String]) -> Result<(), String> {
    let job = flag(args, "--job").ok_or("missing --job <ID>")?;
    let (_, mut client) = connect(args)?;
    for result in client.result(&job)? {
        print!("{}", result.to_cache_bytes());
    }
    Ok(())
}

fn cmd_cancel(args: &[String]) -> Result<(), String> {
    let job = flag(args, "--job").ok_or("missing --job <ID>")?;
    let (_, mut client) = connect(args)?;
    client.cancel(&job)?;
    println!("{job} cancelled");
    Ok(())
}

fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    let (addr, mut client) = connect(args)?;
    client.shutdown()?;
    println!("{addr} shutting down");
    Ok(())
}

/// Parses a wall-clock age: plain seconds, or `30s`, `10m`, `2h`, `7d`.
fn parse_age(spec: &str) -> Result<std::time::Duration, String> {
    let (digits, unit) = match spec.find(|c: char| !c.is_ascii_digit()) {
        Some(i) => spec.split_at(i),
        None => (spec, "s"),
    };
    let n: u64 = digits.parse().map_err(|_| format!("bad age {spec:?}"))?;
    let seconds = match unit {
        "s" => n,
        "m" => n * 60,
        "h" => n * 3_600,
        "d" => n * 86_400,
        _ => return Err(format!("bad age {spec:?} (use s, m, h or d)")),
    };
    Ok(std::time::Duration::from_secs(seconds))
}

/// `macrochip cache` — inspect or prune the content-addressed result
/// cache shared by the campaign engine and the serve daemon.
fn cmd_cache(args: &[String]) -> Result<(), String> {
    let dir = campaign::ResultCache::default_dir();
    let cache = campaign::ResultCache::new(dir.clone())
        .map_err(|e| format!("opening cache {}: {e}", dir.display()))?;
    match args.get(1).map(String::as_str) {
        Some("stats") => {
            let stats = cache
                .stats()
                .map_err(|e| format!("scanning {}: {e}", dir.display()))?;
            println!(
                "{}: {} entries, {} bytes",
                dir.display(),
                stats.entries,
                stats.bytes
            );
            Ok(())
        }
        Some("prune") => {
            let max_bytes: Option<u64> = flag(args, "--max-bytes")
                .map(|s| s.parse().map_err(|_| format!("bad --max-bytes {s}")))
                .transpose()?;
            let older_than = flag(args, "--older-than")
                .map(|s| parse_age(&s))
                .transpose()?;
            if max_bytes.is_none() && older_than.is_none() {
                return Err("prune needs --max-bytes <N> and/or --older-than <AGE>".into());
            }
            let removed = cache
                .prune(max_bytes, older_than)
                .map_err(|e| format!("pruning {}: {e}", dir.display()))?;
            let left = cache
                .stats()
                .map_err(|e| format!("scanning {}: {e}", dir.display()))?;
            println!(
                "{}: pruned {} entries ({} bytes); {} entries ({} bytes) remain",
                dir.display(),
                removed.entries,
                removed.bytes,
                left.entries,
                left.bytes
            );
            Ok(())
        }
        _ => Err("cache needs a subcommand: stats or prune".into()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("tables") => cmd_tables(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("sustained") => cmd_sustained(&args),
        Some("coherent") => cmd_coherent(&args),
        Some("mp") => cmd_mp(&args),
        Some("faults") => cmd_faults(&args),
        Some("run-all") => cmd_run_all(&args),
        Some("capture") => cmd_capture(&args),
        Some("replay") => cmd_replay(&args),
        Some("trace-info") => cmd_trace_info(&args),
        Some("trace-transform") => cmd_trace_transform(&args),
        Some("bench") => cmd_bench(&args),
        Some("serve") => cmd_serve(&args),
        Some("submit") => cmd_submit(&args),
        Some("status") => cmd_status(&args),
        Some("result") => cmd_result(&args),
        Some("cancel") => cmd_cancel(&args),
        Some("shutdown") => cmd_shutdown(&args),
        Some("cache") => cmd_cache(&args),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
