//! Coherence operations: what an L2 miss asks the network to do.
//!
//! The CPU side of the paper's simulator produces L2 misses annotated with
//! coherence information (who owns the line, who shares it); the network
//! simulator expands each into the message sequence the MOESI protocol
//! needs (§5). [`OpSpec`] is that annotated miss; the
//! [`engine`](crate::engine) turns it into packets.

use desim::Span;
use netcore::SiteId;
use std::collections::VecDeque;

/// What kind of permission an L2 miss requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Read miss: fetch a readable copy.
    Read,
    /// Write miss: fetch an exclusive copy, invalidating sharers.
    Write,
    /// Upgrade: the requester holds a shared copy and only needs
    /// permission (invalidations, no data).
    Upgrade,
}

/// One coherence operation: an L2 miss with its directory context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpSpec {
    /// The site whose L2 missed.
    pub requester: SiteId,
    /// The line's directory home (address-interleaved).
    pub home: SiteId,
    /// Requested permission.
    pub kind: OpKind,
    /// The site holding the line dirty (M/O), if any.
    pub owner: Option<SiteId>,
    /// Sites whose copies must be invalidated (writes/upgrades only),
    /// excluding the requester.
    pub sharers: Vec<SiteId>,
    /// The missing line's address (used for MSHR allocation/merging).
    pub line: u64,
}

impl OpSpec {
    /// Number of acknowledgment messages the requester must collect.
    pub fn acks_needed(&self) -> usize {
        match self.kind {
            OpKind::Read => 0,
            OpKind::Write | OpKind::Upgrade => self.sharers.len(),
        }
    }

    /// Whether the operation completes with a data message.
    pub fn needs_data(&self) -> bool {
        !matches!(self.kind, OpKind::Upgrade)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the spec is self-contradictory (requester listed as its
    /// own sharer or owner, or a read carrying sharers to invalidate).
    pub fn validate(&self) {
        assert_ne!(self.owner, Some(self.requester), "requester owns the line");
        assert!(
            !self.sharers.contains(&self.requester),
            "requester listed among sharers to invalidate"
        );
        if self.kind == OpKind::Read {
            assert!(
                self.sharers.is_empty(),
                "read misses never invalidate sharers"
            );
        }
    }
}

/// The next miss a core will take: its compute gap (time spent on
/// instructions and L2 hits since the previous miss completed) followed by
/// the coherence operation itself.
#[derive(Debug, Clone)]
pub struct NextMiss {
    /// Compute time before the miss issues.
    pub gap: Span,
    /// The miss.
    pub op: OpSpec,
}

/// A per-core producer of L2 misses. Implemented by the synthetic and
/// application workload models.
pub trait OpSource {
    /// The next miss for `core` of `site`, or `None` when that core has
    /// finished its share of the work.
    fn next_miss(&mut self, site: SiteId, core: usize) -> Option<NextMiss>;
}

/// A canned miss script, mainly for tests: each core pops from its own
/// queue.
#[derive(Debug, Default)]
pub struct ScriptedSource {
    per_core: std::collections::HashMap<(SiteId, usize), VecDeque<NextMiss>>,
}

impl ScriptedSource {
    /// Creates an empty script.
    pub fn new() -> ScriptedSource {
        ScriptedSource::default()
    }

    /// Appends a miss to a core's script.
    pub fn push(&mut self, site: SiteId, core: usize, miss: NextMiss) {
        self.per_core
            .entry((site, core))
            .or_default()
            .push_back(miss);
    }
}

impl OpSource for ScriptedSource {
    fn next_miss(&mut self, site: SiteId, core: usize) -> Option<NextMiss> {
        self.per_core.get_mut(&(site, core))?.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> SiteId {
        SiteId::from_index(i)
    }

    fn read(req: usize, home: usize) -> OpSpec {
        OpSpec {
            requester: s(req),
            home: s(home),
            kind: OpKind::Read,
            owner: None,
            sharers: vec![],
            line: 0,
        }
    }

    #[test]
    fn reads_need_data_and_no_acks() {
        let op = read(0, 1);
        op.validate();
        assert_eq!(op.acks_needed(), 0);
        assert!(op.needs_data());
    }

    #[test]
    fn writes_count_acks_per_sharer() {
        let op = OpSpec {
            requester: s(0),
            home: s(1),
            kind: OpKind::Write,
            owner: None,
            sharers: vec![s(2), s(3), s(4)],
            line: 0,
        };
        op.validate();
        assert_eq!(op.acks_needed(), 3);
        assert!(op.needs_data());
    }

    #[test]
    fn upgrades_need_no_data() {
        let op = OpSpec {
            requester: s(0),
            home: s(1),
            kind: OpKind::Upgrade,
            owner: None,
            sharers: vec![s(2)],
            line: 0,
        };
        op.validate();
        assert!(!op.needs_data());
        assert_eq!(op.acks_needed(), 1);
    }

    #[test]
    #[should_panic(expected = "requester listed among sharers")]
    fn self_sharer_rejected() {
        let op = OpSpec {
            requester: s(0),
            home: s(1),
            kind: OpKind::Write,
            owner: None,
            sharers: vec![s(0)],
            line: 0,
        };
        op.validate();
    }

    #[test]
    #[should_panic(expected = "read misses never invalidate")]
    fn read_with_sharers_rejected() {
        let mut op = read(0, 1);
        op.sharers = vec![s(2)];
        op.validate();
    }

    #[test]
    fn scripted_source_pops_in_order() {
        let mut src = ScriptedSource::new();
        for i in 0..3 {
            src.push(
                s(0),
                0,
                NextMiss {
                    gap: Span::from_ns(i),
                    op: read(0, 1),
                },
            );
        }
        assert_eq!(src.next_miss(s(0), 0).unwrap().gap, Span::from_ns(0));
        assert_eq!(src.next_miss(s(0), 0).unwrap().gap, Span::from_ns(1));
        assert_eq!(src.next_miss(s(0), 0).unwrap().gap, Span::from_ns(2));
        assert!(src.next_miss(s(0), 0).is_none());
        assert!(src.next_miss(s(1), 0).is_none());
    }
}
