//! The closed-loop coherence engine.
//!
//! The engine plays the role of the paper's CPU simulator + coherence
//! protocol layer (§5): every core alternates compute gaps and L2 misses.
//! With the default blocking cores (the paper's single-issue, in-order,
//! one-thread cores, Table 4) a miss stalls its core until it completes;
//! the optional trace-rate mode overlaps misses up to the site's finite
//! MSHR count instead. Each miss becomes a [`OpSpec`] that the engine
//! expands into the MOESI message sequence over the network:
//!
//! ```text
//!   requester --Request--> home
//!   home --Forward--> owner          (dirty line elsewhere)
//!   home --Invalidate--> sharers     (writes/upgrades)
//!   home/owner --Data--> requester
//!   sharers --Ack--> requester
//! ```
//!
//! The operation completes when the requester has its data and all
//! acknowledgments; the elapsed time is the paper's *latency per coherence
//! operation* (Figure 8). Finite MSHRs per site stall cores when
//! exhausted; same-line secondary misses merge into the primary.
//!
//! The engine implements [`PacketSource`], so the same driver runs it over
//! any of the five networks.

use crate::ops::{NextMiss, OpKind, OpSource, OpSpec};
use desim::stats::LatencyHistogram;
use desim::{EventQueue, Span, Time, TraceEvent, Tracer};
use netcore::{MacrochipConfig, MessageKind, Packet, PacketId, PacketSource, SiteId};
use std::collections::{HashMap, VecDeque};

/// Timing and capacity parameters of the coherence layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Local memory access at the home site (clean misses).
    pub mem_latency: Span,
    /// Directory lookup at the home site.
    pub dir_latency: Span,
    /// Remote cache access (forwards, invalidation handling).
    pub cache_latency: Span,
    /// Miss-status holding registers per site.
    pub mshrs_per_site: usize,
    /// When true (the default, matching the paper's single-issue in-order
    /// cores), a core's next miss follows `gap` after its previous miss
    /// *completes*. When false, misses issue at trace rate — `gap` after
    /// the previous *issue* — overlapping up to the MSHR limit (used by
    /// the nonblocking-core ablation).
    pub blocking_cores: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            mem_latency: Span::from_ns(30),
            dir_latency: Span::from_ps(400),   // two 5 GHz cycles
            cache_latency: Span::from_ps(400), // two 5 GHz cycles
            mshrs_per_site: 32,
            blocking_cores: true,
        }
    }
}

/// Aggregate results of a coherent run.
#[derive(Debug, Clone)]
pub struct OpStats {
    issued: u64,
    completed: u64,
    merged: u64,
    latency: LatencyHistogram,
    last_completion: Time,
}

impl OpStats {
    fn new() -> OpStats {
        OpStats {
            issued: 0,
            completed: 0,
            merged: 0,
            latency: LatencyHistogram::new(),
            last_completion: Time::ZERO,
        }
    }

    /// Operations issued (including merged secondaries).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Operations completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Secondary misses merged into an outstanding primary.
    pub fn merged(&self) -> u64 {
        self.merged
    }

    /// Latency distribution per coherence operation (Figure 8's metric).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Completion time of the last operation — the run's makespan
    /// (Figure 7's speedup metric compares these across networks).
    pub fn last_completion(&self) -> Time {
        self.last_completion
    }
}

type CoreKey = (SiteId, usize);

#[derive(Debug)]
enum EngEv {
    /// A core's next miss reaches the head of its pipeline.
    Issue { core: CoreKey, op: OpSpec },
    /// A protocol message leaves a site after its processing delay.
    Emit { packet: Packet },
}

#[derive(Debug)]
struct OpState {
    spec: OpSpec,
    core: CoreKey,
    issued: Time,
    acks_needed: usize,
    acks_got: usize,
    data_needed: bool,
    data_got: bool,
    /// Secondary misses merged into this op: (core, issue time).
    merged: Vec<(CoreKey, Time)>,
}

impl OpState {
    fn is_complete(&self) -> bool {
        (!self.data_needed || self.data_got) && self.acks_got >= self.acks_needed
    }
}

/// The coherence engine: an [`OpSource`] of per-core misses in, a stream
/// of protocol packets out.
///
/// # Example
///
/// ```
/// use coherence::engine::{CoherenceEngine, EngineConfig};
/// use coherence::ops::{NextMiss, OpKind, OpSpec, ScriptedSource};
/// use desim::Span;
/// use netcore::{MacrochipConfig, PacketSource, SiteId};
///
/// let config = MacrochipConfig::scaled();
/// let mut src = ScriptedSource::new();
/// src.push(config.grid.site(0, 0), 0, NextMiss {
///     gap: Span::from_ns(5),
///     op: OpSpec {
///         requester: config.grid.site(0, 0),
///         home: config.grid.site(3, 3),
///         kind: OpKind::Read,
///         owner: None,
///         sharers: vec![],
///         line: 0x40,
///     },
/// });
/// let engine = CoherenceEngine::new(config, EngineConfig::default(), src);
/// assert!(!engine.is_exhausted());
/// ```
pub struct CoherenceEngine<S: OpSource> {
    net_config: MacrochipConfig,
    config: EngineConfig,
    source: S,
    events: EventQueue<EngEv>,
    ops: HashMap<u64, OpState>,
    /// (site index, line) → outstanding primary op id.
    pending_lines: HashMap<(usize, u64), u64>,
    /// Registers in use per site.
    mshrs_used: Vec<usize>,
    /// Cores whose issue stalled on a full MSHR file, per site.
    mshr_waiters: Vec<VecDeque<(CoreKey, OpSpec)>>,
    active_cores: usize,
    next_op_id: u64,
    next_packet_id: u64,
    stats: OpStats,
    tracer: Tracer,
}

impl<S: OpSource> CoherenceEngine<S> {
    /// Creates the engine and schedules every core's first miss.
    pub fn new(
        net_config: MacrochipConfig,
        config: EngineConfig,
        mut source: S,
    ) -> CoherenceEngine<S> {
        let sites = net_config.grid.sites();
        let mut events = EventQueue::new();
        let mut active_cores = 0;
        for site in net_config.grid.iter() {
            for core in 0..net_config.cores_per_site {
                if let Some(NextMiss { gap, op }) = source.next_miss(site, core) {
                    active_cores += 1;
                    events.push(
                        Time::ZERO + gap,
                        EngEv::Issue {
                            core: (site, core),
                            op,
                        },
                    );
                }
            }
        }
        CoherenceEngine {
            net_config,
            config,
            source,
            events,
            ops: HashMap::new(),
            pending_lines: HashMap::new(),
            mshrs_used: vec![0; sites],
            mshr_waiters: (0..sites).map(|_| VecDeque::new()).collect(),
            active_cores,
            next_op_id: 0,
            next_packet_id: 0,
            stats: OpStats::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Results so far.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Attaches a flight-recorder handle; MOESI state transitions are
    /// emitted as [`TraceEvent::Coherence`] records.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Cores still with work to do.
    pub fn active_cores(&self) -> usize {
        self.active_cores
    }

    fn packet(
        &mut self,
        src: SiteId,
        dst: SiteId,
        kind: MessageKind,
        op: u64,
        now: Time,
    ) -> Packet {
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        let bytes = self.net_config.message_bytes(kind);
        Packet::new(id, src, dst, bytes, kind, now).with_op(op)
    }

    /// Handles an `Issue` event: allocate an MSHR (or merge / stall) and
    /// send the request.
    ///
    /// Cores issue misses at their trace rate (the paper drives its
    /// network simulator the same way, §5): a core's next miss follows
    /// `gap` after this one *issues*, so several misses can be in flight,
    /// bounded only by the site's MSHRs. A core whose miss cannot get an
    /// MSHR stalls — no further misses issue until it is admitted.
    fn on_issue(&mut self, core: CoreKey, op: OpSpec, now: Time, out: &mut Vec<Packet>) {
        debug_assert_eq!(core.0, op.requester, "core issues from its own site");
        self.stats.issued += 1;
        self.admit(core, op, now, out);
    }

    /// Merges, starts, or queues an operation, and keeps the core's issue
    /// chain going in the first two cases.
    fn admit(&mut self, core: CoreKey, op: OpSpec, now: Time, out: &mut Vec<Packet>) {
        let site = op.requester.index();
        if let Some(&primary) = self.pending_lines.get(&(site, op.line)) {
            // Secondary miss: merge into the outstanding primary (no MSHR
            // consumed). A blocking core resumes when the primary
            // completes; a trace-rate core keeps issuing.
            self.stats.merged += 1;
            self.ops
                .get_mut(&primary)
                .expect("pending line has a live primary")
                .merged
                .push((core, now));
            if !self.config.blocking_cores {
                self.schedule_next(core, now);
            }
            return;
        }
        if self.mshrs_used[site] >= self.config.mshrs_per_site {
            // The core stalls until a register frees.
            self.mshr_waiters[site].push_back((core, op));
            return;
        }
        self.start_op(core, op, now, out);
    }

    fn start_op(&mut self, core: CoreKey, op: OpSpec, now: Time, out: &mut Vec<Packet>) {
        #[cfg(debug_assertions)]
        op.validate();
        let site = op.requester.index();
        self.mshrs_used[site] += 1;
        let id = self.next_op_id;
        self.next_op_id += 1;
        self.pending_lines.insert((site, op.line), id);
        let request = self.packet(op.requester, op.home, MessageKind::Request, id, now);
        let acks_needed = op.acks_needed() + usize::from(op.kind == OpKind::Upgrade);
        let data_needed = op.needs_data();
        self.ops.insert(
            id,
            OpState {
                spec: op,
                core,
                issued: now,
                acks_needed,
                acks_got: 0,
                data_needed,
                data_got: false,
                merged: Vec::new(),
            },
        );
        out.push(request);
        if !self.config.blocking_cores {
            // Trace-rate cores issue their next miss without waiting.
            self.schedule_next(core, now);
        }
    }

    /// The home site processed the request: fan out the protocol messages.
    fn on_request_at_home(&mut self, op_id: u64, now: Time) {
        let (spec, requester) = {
            let st = &self.ops[&op_id];
            (st.spec.clone(), st.spec.requester)
        };
        let after_dir = now + self.config.dir_latency;
        // Invalidations to every stale sharer (writes/upgrades).
        for sharer in &spec.sharers {
            let p = self.packet(
                spec.home,
                *sharer,
                MessageKind::Invalidate,
                op_id,
                after_dir,
            );
            self.events.push(after_dir, EngEv::Emit { packet: p });
        }
        match spec.kind {
            OpKind::Upgrade => {
                // Permission grant, no data.
                let p = self.packet(spec.home, requester, MessageKind::Ack, op_id, after_dir);
                self.events.push(after_dir, EngEv::Emit { packet: p });
            }
            OpKind::Read | OpKind::Write => {
                if let Some(owner) = spec.owner {
                    // Dirty elsewhere: forward; the owner supplies data.
                    let p = self.packet(spec.home, owner, MessageKind::Forward, op_id, after_dir);
                    self.events.push(after_dir, EngEv::Emit { packet: p });
                } else {
                    // Clean: the home's local memory supplies data.
                    let at = after_dir + self.config.mem_latency;
                    let p = self.packet(spec.home, requester, MessageKind::Data, op_id, at);
                    self.events.push(at, EngEv::Emit { packet: p });
                }
            }
        }
    }

    fn on_forward_at_owner(&mut self, op_id: u64, now: Time) {
        let (owner, requester, kind) = {
            let st = &self.ops[&op_id];
            (
                st.spec.owner.expect("forward implies an owner"),
                st.spec.requester,
                st.spec.kind,
            )
        };
        // The dirty owner downgrades: readers leave it owning a stale-able
        // copy (M->O), writers take the line away entirely (M->I).
        let transition = if kind == OpKind::Read { "M->O" } else { "M->I" };
        self.tracer.emit(now, || TraceEvent::Coherence {
            op: op_id,
            site: owner.index(),
            transition,
        });
        let at = now + self.config.cache_latency;
        let p = self.packet(owner, requester, MessageKind::Data, op_id, at);
        self.events.push(at, EngEv::Emit { packet: p });
    }

    fn on_invalidate_at_sharer(&mut self, op_id: u64, sharer: SiteId, now: Time) {
        let requester = self.ops[&op_id].spec.requester;
        self.tracer.emit(now, || TraceEvent::Coherence {
            op: op_id,
            site: sharer.index(),
            transition: "S->I",
        });
        let at = now + self.config.cache_latency;
        let p = self.packet(sharer, requester, MessageKind::Ack, op_id, at);
        self.events.push(at, EngEv::Emit { packet: p });
    }

    fn maybe_complete(&mut self, op_id: u64, now: Time, out: &mut Vec<Packet>) {
        if !self.ops[&op_id].is_complete() {
            return;
        }
        let st = self.ops.remove(&op_id).expect("op exists");
        let site = st.spec.requester.index();
        self.pending_lines.remove(&(site, st.spec.line));
        self.mshrs_used[site] -= 1;

        // The requester's line reaches its final MOESI state.
        let transition = match st.spec.kind {
            OpKind::Read if st.spec.owner.is_some() => "I->S",
            OpKind::Read => "I->E",
            OpKind::Write => "I->M",
            OpKind::Upgrade => "S->M",
        };
        self.tracer.emit(now, || TraceEvent::Coherence {
            op: op_id,
            site,
            transition,
        });

        self.stats.completed += 1;
        self.stats.latency.record(now.saturating_since(st.issued));
        self.stats.last_completion = self.stats.last_completion.max(now);
        if self.config.blocking_cores {
            self.schedule_next(st.core, now);
        }
        for (core, issued) in st.merged {
            self.stats.completed += 1;
            self.stats.latency.record(now.saturating_since(issued));
            if self.config.blocking_cores {
                self.schedule_next(core, now);
            }
        }

        // A register freed: admit stalled cores. A pop that merges frees
        // nothing, so keep admitting until a start consumes the register
        // or the queue empties.
        while self.mshrs_used[site] < self.config.mshrs_per_site {
            let Some((core, op)) = self.mshr_waiters[site].pop_front() else {
                break;
            };
            self.admit(core, op, now, out);
        }
    }

    fn schedule_next(&mut self, core: CoreKey, now: Time) {
        match self.source.next_miss(core.0, core.1) {
            Some(NextMiss { gap, op }) => {
                self.events.push(now + gap, EngEv::Issue { core, op });
            }
            None => self.active_cores -= 1,
        }
    }

    /// Checks the engine's structural invariants and returns any
    /// violations found (empty when healthy). Cheap enough to call after
    /// every drain step under `--audit`, or once at end of run:
    ///
    /// * **MSHRs never leak** — each live primary op holds exactly one
    ///   register at its requester site, so the per-site live-op count
    ///   must equal `mshrs_used`, which must never exceed the configured
    ///   file size; once the engine drains, every register is free.
    /// * **Waiters only queue on a full file** — a core stalled in
    ///   `mshr_waiters` while registers are free would be a lost wakeup.
    /// * **Pending-line table is a bijection** — every `(site, line)`
    ///   entry names a live op for that site and line, and every live op
    ///   is findable by its `(site, line)` key (no dangling or shadowed
    ///   entries).
    /// * **Directory owner/sharer exclusivity** — a live op's snapshot
    ///   never lists the owner or the requester among the sharers to
    ///   invalidate, never lists a sharer twice, and never collects more
    ///   acks than it asked for.
    pub fn check_invariants(&self, now: Time) -> Vec<netcore::AuditViolation> {
        let mut violations = Vec::new();
        let mut flag =
            |check: &'static str, op: Option<u64>, site: Option<usize>, detail: String| {
                violations.push(netcore::AuditViolation {
                    check,
                    packet: op,
                    site,
                    at: now,
                    detail,
                });
            };

        let sites = self.net_config.grid.sites();
        let mut live_per_site = vec![0usize; sites];
        for (&op_id, st) in &self.ops {
            let site = st.spec.requester.index();
            if let Some(slot) = live_per_site.get_mut(site) {
                *slot += 1;
            }
            match self.pending_lines.get(&(site, st.spec.line)) {
                Some(&primary) if primary == op_id => {}
                Some(&primary) => flag(
                    "coherence.pending-line-shadowed",
                    Some(op_id),
                    Some(site),
                    format!(
                        "live op on line {:#x} shadowed by op {} in the pending table",
                        st.spec.line, primary
                    ),
                ),
                None => flag(
                    "coherence.pending-line-missing",
                    Some(op_id),
                    Some(site),
                    format!(
                        "live op on line {:#x} absent from the pending table",
                        st.spec.line
                    ),
                ),
            }
            if st.spec.owner == Some(st.spec.requester) {
                flag(
                    "coherence.requester-owns-line",
                    Some(op_id),
                    Some(site),
                    "op snapshot names the requester as the line's owner".into(),
                );
            }
            if st.spec.sharers.contains(&st.spec.requester) {
                flag(
                    "coherence.requester-among-sharers",
                    Some(op_id),
                    Some(site),
                    "op snapshot lists the requester among sharers to invalidate".into(),
                );
            }
            if let Some(owner) = st.spec.owner {
                if st.spec.sharers.contains(&owner) {
                    flag(
                        "coherence.owner-among-sharers",
                        Some(op_id),
                        Some(site),
                        format!(
                            "site {owner} is both owner and sharer of line {:#x}",
                            st.spec.line
                        ),
                    );
                }
            }
            let mut sharers = st.spec.sharers.clone();
            sharers.sort_unstable();
            sharers.dedup();
            if sharers.len() != st.spec.sharers.len() {
                flag(
                    "coherence.duplicate-sharer",
                    Some(op_id),
                    Some(site),
                    format!(
                        "sharer list for line {:#x} contains duplicates",
                        st.spec.line
                    ),
                );
            }
            if st.acks_got > st.acks_needed {
                flag(
                    "coherence.ack-overflow",
                    Some(op_id),
                    Some(site),
                    format!(
                        "collected {} acks but only {} expected",
                        st.acks_got, st.acks_needed
                    ),
                );
            }
        }

        for (&(site, line), &op_id) in &self.pending_lines {
            match self.ops.get(&op_id) {
                None => flag(
                    "coherence.pending-line-dangling",
                    Some(op_id),
                    Some(site),
                    format!("pending table entry for line {line:#x} names a completed op"),
                ),
                Some(st) => {
                    if st.spec.requester.index() != site || st.spec.line != line {
                        flag(
                            "coherence.pending-line-mismatch",
                            Some(op_id),
                            Some(site),
                            format!(
                                "pending entry (site {site}, line {line:#x}) names an op for \
                                 site {} line {:#x}",
                                st.spec.requester.index(),
                                st.spec.line
                            ),
                        );
                    }
                }
            }
        }

        for (site, (&used, &live)) in self.mshrs_used.iter().zip(&live_per_site).enumerate() {
            if used != live {
                flag(
                    "coherence.mshr-leak",
                    None,
                    Some(site),
                    format!("{used} registers in use vs {live} live ops at the site"),
                );
            }
            if used > self.config.mshrs_per_site {
                flag(
                    "coherence.mshr-overcommit",
                    None,
                    Some(site),
                    format!(
                        "{used} registers in use vs a file of {}",
                        self.config.mshrs_per_site
                    ),
                );
            }
            if !self.mshr_waiters[site].is_empty() && used < self.config.mshrs_per_site {
                flag(
                    "coherence.mshr-waiter-stall",
                    None,
                    Some(site),
                    format!(
                        "{} cores queued while {} of {} registers are free",
                        self.mshr_waiters[site].len(),
                        self.config.mshrs_per_site - used,
                        self.config.mshrs_per_site
                    ),
                );
            }
        }
        violations
    }
}

impl<S: OpSource> PacketSource for CoherenceEngine<S> {
    fn next_emission(&self) -> Option<Time> {
        self.events.peek_time()
    }

    fn emit_due(&mut self, now: Time, out: &mut Vec<Packet>) {
        while let Some((t, ev)) = self.events.pop_due(now) {
            match ev {
                EngEv::Issue { core, op } => self.on_issue(core, op, t, out),
                EngEv::Emit { packet } => out.push(packet),
            }
        }
    }

    fn on_delivered(&mut self, packet: &Packet, now: Time) {
        let op_id = packet
            .op
            .expect("coherence packets always carry their op id");
        if !self.ops.contains_key(&op_id) {
            debug_assert!(false, "delivery for a completed op");
            return;
        }
        let mut out = Vec::new();
        match packet.kind {
            MessageKind::Request => self.on_request_at_home(op_id, now),
            MessageKind::Forward => self.on_forward_at_owner(op_id, now),
            MessageKind::Invalidate => self.on_invalidate_at_sharer(op_id, packet.dst, now),
            MessageKind::Data => {
                self.ops.get_mut(&op_id).expect("checked above").data_got = true;
                self.maybe_complete(op_id, now, &mut out);
            }
            MessageKind::Ack => {
                self.ops.get_mut(&op_id).expect("checked above").acks_got += 1;
                self.maybe_complete(op_id, now, &mut out);
            }
            MessageKind::Control => {
                debug_assert!(false, "the engine never sends Control packets");
            }
        }
        // Packets produced synchronously (an MSHR waiter admitted at
        // completion) are due immediately; queue them as zero-delay
        // emissions so the driver picks them up.
        for p in out {
            self.events.push(now, EngEv::Emit { packet: p });
        }
    }

    fn is_exhausted(&self) -> bool {
        self.active_cores == 0 && self.ops.is_empty() && self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ScriptedSource;

    fn config() -> MacrochipConfig {
        MacrochipConfig::scaled()
    }

    fn s(cfg: &MacrochipConfig, x: usize, y: usize) -> SiteId {
        cfg.grid.site(x, y)
    }

    fn read_op(cfg: &MacrochipConfig, req: SiteId, home: SiteId, line: u64) -> OpSpec {
        let _ = cfg;
        OpSpec {
            requester: req,
            home,
            kind: OpKind::Read,
            owner: None,
            sharers: vec![],
            line,
        }
    }

    /// Runs the engine against an "ideal" zero-latency network: every
    /// emitted packet is delivered instantly. Returns stats.
    fn run_ideal<Src: OpSource>(engine: &mut CoherenceEngine<Src>) -> u64 {
        let mut guard = 0;
        while !engine.is_exhausted() {
            let t = engine.next_emission().expect("engine not exhausted");
            let mut out = Vec::new();
            engine.emit_due(t, &mut out);
            for mut p in out {
                p.delivered = Some(t); // zero network latency
                engine.on_delivered(&p, t);
            }
            guard += 1;
            assert!(guard < 1_000_000, "engine did not converge");
        }
        engine.stats().completed()
    }

    #[test]
    fn clean_read_completes_with_request_and_data() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        src.push(
            a,
            0,
            NextMiss {
                gap: Span::from_ns(1),
                op: read_op(&cfg, a, h, 0x40),
            },
        );
        let mut eng = CoherenceEngine::new(cfg, EngineConfig::default(), src);
        assert_eq!(run_ideal(&mut eng), 1);
        // Latency on an ideal network = dir + mem latency.
        let lat = eng.stats().latency().mean().as_ns_f64();
        assert!((lat - 30.4).abs() < 1e-6, "latency {lat}");
    }

    #[test]
    fn dirty_read_fetches_from_owner_not_memory() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h, o) = (s(&cfg, 0, 0), s(&cfg, 3, 3), s(&cfg, 5, 5));
        src.push(
            a,
            0,
            NextMiss {
                gap: Span::ZERO,
                op: OpSpec {
                    requester: a,
                    home: h,
                    kind: OpKind::Read,
                    owner: Some(o),
                    sharers: vec![],
                    line: 0x40,
                },
            },
        );
        let mut eng = CoherenceEngine::new(cfg, EngineConfig::default(), src);
        assert_eq!(run_ideal(&mut eng), 1);
        // dir (0.4) + owner cache (0.4): far below the 30 ns memory.
        let lat = eng.stats().latency().mean().as_ns_f64();
        assert!((lat - 0.8).abs() < 1e-6, "latency {lat}");
    }

    #[test]
    fn write_with_sharers_collects_all_acks() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        let sharers = vec![s(&cfg, 1, 1), s(&cfg, 2, 2), s(&cfg, 4, 4)];
        src.push(
            a,
            0,
            NextMiss {
                gap: Span::ZERO,
                op: OpSpec {
                    requester: a,
                    home: h,
                    kind: OpKind::Write,
                    owner: None,
                    sharers,
                    line: 0x40,
                },
            },
        );
        let mut eng = CoherenceEngine::new(cfg, EngineConfig::default(), src);
        assert_eq!(run_ideal(&mut eng), 1);
        // Completion gated on memory (30.4) — invalidation acks (0.8)
        // overlap with it.
        let lat = eng.stats().latency().mean().as_ns_f64();
        assert!((lat - 30.4).abs() < 1e-6, "latency {lat}");
    }

    #[test]
    fn upgrade_needs_grant_and_acks_but_no_data() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        src.push(
            a,
            0,
            NextMiss {
                gap: Span::ZERO,
                op: OpSpec {
                    requester: a,
                    home: h,
                    kind: OpKind::Upgrade,
                    owner: None,
                    sharers: vec![s(&cfg, 2, 2)],
                    line: 0x40,
                },
            },
        );
        let mut eng = CoherenceEngine::new(cfg, EngineConfig::default(), src);
        assert_eq!(run_ideal(&mut eng), 1);
        // No 30 ns memory access: just dir + cache latencies.
        assert!(eng.stats().latency().mean().as_ns_f64() < 1.0);
    }

    #[test]
    fn same_line_secondary_miss_merges() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        // Two cores of the same site miss the same line simultaneously.
        src.push(
            a,
            0,
            NextMiss {
                gap: Span::ZERO,
                op: read_op(&cfg, a, h, 0x40),
            },
        );
        src.push(
            a,
            1,
            NextMiss {
                gap: Span::ZERO,
                op: read_op(&cfg, a, h, 0x40),
            },
        );
        let mut eng = CoherenceEngine::new(cfg, EngineConfig::default(), src);
        assert_eq!(run_ideal(&mut eng), 2);
        assert_eq!(eng.stats().merged(), 1);
    }

    #[test]
    fn mshr_exhaustion_stalls_then_admits() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        // More simultaneous distinct-line misses than MSHRs.
        let mshrs = 2;
        for core in 0..4 {
            src.push(
                a,
                core,
                NextMiss {
                    gap: Span::ZERO,
                    op: read_op(&cfg, a, h, 0x40 * (core as u64 + 1)),
                },
            );
        }
        let eng_cfg = EngineConfig {
            mshrs_per_site: mshrs,
            ..EngineConfig::default()
        };
        let mut eng = CoherenceEngine::new(cfg, eng_cfg, src);
        assert_eq!(run_ideal(&mut eng), 4);
    }

    #[test]
    fn blocking_cores_serialize_their_misses() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        for i in 0..5u64 {
            src.push(
                a,
                0,
                NextMiss {
                    gap: Span::from_ns(2),
                    op: read_op(&cfg, a, h, 0x40 * (i + 1)),
                },
            );
        }
        let mut eng = CoherenceEngine::new(cfg, EngineConfig::default(), src);
        assert_eq!(run_ideal(&mut eng), 5);
        // In-order cores: each miss waits for the previous to complete.
        let makespan = eng.stats().last_completion().as_ns_f64();
        assert!((makespan - 5.0 * 32.4).abs() < 1e-6, "makespan {makespan}");
    }

    #[test]
    fn trace_rate_cores_pipeline_misses() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        for i in 0..5u64 {
            src.push(
                a,
                0,
                NextMiss {
                    gap: Span::from_ns(2),
                    op: read_op(&cfg, a, h, 0x40 * (i + 1)),
                },
            );
        }
        let eng_cfg = EngineConfig {
            blocking_cores: false,
            ..EngineConfig::default()
        };
        let mut eng = CoherenceEngine::new(cfg, eng_cfg, src);
        assert_eq!(run_ideal(&mut eng), 5);
        // Misses overlap: the last op issues at 5 x 2 ns and completes one
        // memory latency later — far sooner than five serialized misses.
        let makespan = eng.stats().last_completion().as_ns_f64();
        assert!(
            (makespan - (5.0 * 2.0 + 30.4)).abs() < 1e-6,
            "makespan {makespan}"
        );
    }

    #[test]
    fn mshr_exhaustion_stalls_the_trace_rate_issue_chain() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        // One core, 1 MSHR: misses must serialize despite a zero gap.
        for i in 0..3u64 {
            src.push(
                a,
                0,
                NextMiss {
                    gap: Span::ZERO,
                    op: read_op(&cfg, a, h, 0x40 * (i + 1)),
                },
            );
        }
        let eng_cfg = EngineConfig {
            mshrs_per_site: 1,
            blocking_cores: false,
            ..EngineConfig::default()
        };
        let mut eng = CoherenceEngine::new(cfg, eng_cfg, src);
        assert_eq!(run_ideal(&mut eng), 3);
        let makespan = eng.stats().last_completion().as_ns_f64();
        assert!((makespan - 3.0 * 30.4).abs() < 1e-6, "makespan {makespan}");
    }

    #[test]
    fn traced_write_records_moesi_transitions() {
        use desim::trace::RingSink;
        use std::cell::RefCell;
        use std::rc::Rc;

        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h, o) = (s(&cfg, 0, 0), s(&cfg, 3, 3), s(&cfg, 5, 5));
        src.push(
            a,
            0,
            NextMiss {
                gap: Span::ZERO,
                op: OpSpec {
                    requester: a,
                    home: h,
                    kind: OpKind::Write,
                    owner: Some(o),
                    sharers: vec![s(&cfg, 2, 2)],
                    line: 0x40,
                },
            },
        );
        let mut eng = CoherenceEngine::new(cfg, EngineConfig::default(), src);
        let sink = Rc::new(RefCell::new(RingSink::new(64)));
        eng.set_tracer(desim::Tracer::shared(&sink));
        assert_eq!(run_ideal(&mut eng), 1);
        let recorded = sink.borrow().events().count();
        let transitions: Vec<&'static str> = sink
            .borrow()
            .events()
            .filter_map(|&(_, e)| match e {
                desim::TraceEvent::Coherence { transition, .. } => Some(transition),
                _ => None,
            })
            .collect();
        // Every recorded event must be a coherence transition.
        assert_eq!(transitions.len(), recorded);
        // Owner downgrade, sharer invalidation, requester fill.
        assert!(transitions.contains(&"M->I"));
        assert!(transitions.contains(&"S->I"));
        assert_eq!(*transitions.last().unwrap(), "I->M");
    }

    #[test]
    fn engine_counts_active_cores() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        src.push(
            a,
            0,
            NextMiss {
                gap: Span::ZERO,
                op: read_op(&cfg, a, h, 0x40),
            },
        );
        let eng = CoherenceEngine::new(cfg, EngineConfig::default(), src);
        assert_eq!(eng.active_cores(), 1);
    }

    #[test]
    fn invariants_hold_mid_run_and_after_drain() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        for line in 0..4u64 {
            src.push(
                a,
                line as usize,
                NextMiss {
                    gap: Span::ZERO,
                    op: read_op(&cfg, a, h, 0x40 * (line + 1)),
                },
            );
        }
        let mut eng = CoherenceEngine::new(cfg, EngineConfig::default(), src);
        // Mid-run: issue the first misses, then audit with ops live.
        let t = eng.next_emission().expect("work scheduled");
        let mut out = Vec::new();
        eng.emit_due(t, &mut out);
        assert!(!out.is_empty());
        assert!(eng.check_invariants(t).is_empty());
        for mut p in out {
            p.delivered = Some(t);
            eng.on_delivered(&p, t);
        }
        run_ideal(&mut eng);
        // Drained: every MSHR free, pending table empty.
        let end = eng.stats().last_completion();
        assert!(eng.check_invariants(end).is_empty());
    }

    #[test]
    fn a_leaked_mshr_register_is_flagged_with_its_site() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        src.push(
            a,
            0,
            NextMiss {
                gap: Span::ZERO,
                op: read_op(&cfg, a, h, 0x40),
            },
        );
        let mut eng = CoherenceEngine::new(cfg, EngineConfig::default(), src);
        run_ideal(&mut eng);
        // Corrupt the bookkeeping the way a missed decrement would.
        eng.mshrs_used[a.index()] += 1;
        let violations = eng.check_invariants(Time::from_ns(10));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].check, "coherence.mshr-leak");
        assert_eq!(violations[0].site, Some(a.index()));
        assert_eq!(violations[0].at, Time::from_ns(10));
    }

    #[test]
    fn a_dangling_pending_line_entry_is_flagged() {
        let cfg = config();
        let mut src = ScriptedSource::new();
        let (a, h) = (s(&cfg, 0, 0), s(&cfg, 3, 3));
        src.push(
            a,
            0,
            NextMiss {
                gap: Span::ZERO,
                op: read_op(&cfg, a, h, 0x40),
            },
        );
        let mut eng = CoherenceEngine::new(cfg, EngineConfig::default(), src);
        run_ideal(&mut eng);
        // A completed op left behind in the pending table.
        eng.pending_lines.insert((a.index(), 0x40), 99);
        let checks: Vec<&str> = eng
            .check_invariants(Time::ZERO)
            .iter()
            .map(|v| v.check)
            .collect();
        assert!(
            checks.contains(&"coherence.pending-line-dangling"),
            "{checks:?}"
        );
    }
}
