//! Miss-status holding registers: the paper models finite MSHRs per site
//! (§5). When a site's MSHRs are exhausted, further misses stall until an
//! outstanding operation completes.

use std::collections::HashSet;

/// A site's finite file of miss-status holding registers.
///
/// # Example
///
/// ```
/// use coherence::mshr::MshrFile;
///
/// let mut mshrs = MshrFile::new(2);
/// assert!(mshrs.try_allocate(0x40));
/// assert!(mshrs.try_allocate(0x80));
/// assert!(!mshrs.try_allocate(0xC0)); // full
/// mshrs.release(0x40);
/// assert!(mshrs.try_allocate(0xC0));
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    capacity: usize,
    outstanding: HashSet<u64>,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0, "need at least one MSHR");
        MshrFile {
            capacity,
            outstanding: HashSet::new(),
        }
    }

    /// Allocates a register for a miss on `line_addr`.
    ///
    /// Returns false when the file is full **or** the line already has an
    /// outstanding miss (secondary misses merge into the primary, needing
    /// no new register and no new network traffic).
    pub fn try_allocate(&mut self, line_addr: u64) -> bool {
        if self.outstanding.contains(&line_addr) {
            return false;
        }
        if self.outstanding.len() >= self.capacity {
            return false;
        }
        self.outstanding.insert(line_addr);
        true
    }

    /// True if `line_addr` already has an outstanding miss.
    pub fn is_pending(&self, line_addr: u64) -> bool {
        self.outstanding.contains(&line_addr)
    }

    /// Releases the register held for `line_addr`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line had no outstanding miss.
    pub fn release(&mut self, line_addr: u64) {
        let was_present = self.outstanding.remove(&line_addr);
        debug_assert!(was_present, "released an MSHR that was never allocated");
    }

    /// Registers currently in use.
    pub fn in_use(&self) -> usize {
        self.outstanding.len()
    }

    /// True when no register is free.
    pub fn is_full(&self) -> bool {
        self.outstanding.len() >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_up_to_capacity() {
        let mut m = MshrFile::new(3);
        assert!(m.try_allocate(1));
        assert!(m.try_allocate(2));
        assert!(m.try_allocate(3));
        assert!(m.is_full());
        assert!(!m.try_allocate(4));
        assert_eq!(m.in_use(), 3);
    }

    #[test]
    fn duplicate_line_does_not_double_allocate() {
        let mut m = MshrFile::new(2);
        assert!(m.try_allocate(7));
        assert!(!m.try_allocate(7));
        assert!(m.is_pending(7));
        assert_eq!(m.in_use(), 1);
    }

    #[test]
    fn release_frees_capacity() {
        let mut m = MshrFile::new(1);
        assert!(m.try_allocate(1));
        m.release(1);
        assert!(!m.is_pending(1));
        assert!(m.try_allocate(2));
    }

    #[test]
    #[should_panic(expected = "never allocated")]
    fn double_release_is_a_bug() {
        let mut m = MshrFile::new(1);
        m.try_allocate(1);
        m.release(1);
        m.release(1);
    }
}
