//! MOESI cache coherence for the macrochip (paper §5).
//!
//! The paper drives its network simulator with L2-miss coherence traffic
//! from a MOESI multiprocessor cache model. This crate rebuilds that
//! machinery:
//!
//! * [`protocol`] — the MOESI state machine as a pure transition table;
//! * [`cache`] — the per-site shared L2 (256 KB, 16-way, LRU);
//! * [`directory`] — full-map directories, address-interleaved across
//!   home sites;
//! * [`mshr`] — finite miss-status holding registers (the paper models
//!   finite MSHRs, §5);
//! * [`ops`] — coherence operations and the message sequences that
//!   satisfy them (request → home; forwards, invalidations, data, acks);
//! * [`engine`] — the closed-loop [`netcore::PacketSource`] that issues
//!   operations from per-core workloads, expands them into packets, and
//!   tracks completion latency per coherence operation (Figure 8's
//!   metric).
//!
//! # Example
//!
//! ```
//! use coherence::protocol::{MoesiState, local_write};
//!
//! // Writing a Shared line requires invalidations and yields Modified.
//! let t = local_write(MoesiState::Shared);
//! assert!(t.needs_invalidations);
//! assert_eq!(t.next, MoesiState::Modified);
//! ```

pub mod cache;
pub mod directory;
pub mod engine;
pub mod mshr;
pub mod ops;
pub mod protocol;

pub use engine::{CoherenceEngine, EngineConfig, OpStats};
pub use ops::{OpKind, OpSpec};
pub use protocol::MoesiState;
