//! The MOESI protocol as a pure transition table.
//!
//! The simulator's caches and directories consult these functions; keeping
//! them pure makes the protocol's invariants easy to test exhaustively
//! (all five states × all events fit in a page).

use std::fmt;

/// MOESI stable states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoesiState {
    /// Modified: dirty, exclusive.
    Modified,
    /// Owned: dirty, shared; this cache services requests.
    Owned,
    /// Exclusive: clean, exclusive.
    Exclusive,
    /// Shared: clean (or peer-owned), read-only.
    Shared,
    /// Invalid: not present.
    Invalid,
}

impl MoesiState {
    /// All five states.
    pub const ALL: [MoesiState; 5] = [
        MoesiState::Modified,
        MoesiState::Owned,
        MoesiState::Exclusive,
        MoesiState::Shared,
        MoesiState::Invalid,
    ];

    /// True when the local copy may be read without any network traffic.
    pub fn is_readable(self) -> bool {
        !matches!(self, MoesiState::Invalid)
    }

    /// True when the local copy may be written without any network traffic.
    pub fn is_writable(self) -> bool {
        matches!(self, MoesiState::Modified | MoesiState::Exclusive)
    }

    /// True when this cache must supply data to remote requesters.
    pub fn supplies_data(self) -> bool {
        matches!(
            self,
            MoesiState::Modified | MoesiState::Owned | MoesiState::Exclusive
        )
    }

    /// True when the copy differs from memory.
    pub fn is_dirty(self) -> bool {
        matches!(self, MoesiState::Modified | MoesiState::Owned)
    }
}

impl fmt::Display for MoesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            MoesiState::Modified => 'M',
            MoesiState::Owned => 'O',
            MoesiState::Exclusive => 'E',
            MoesiState::Shared => 'S',
            MoesiState::Invalid => 'I',
        };
        write!(f, "{c}")
    }
}

/// Outcome of applying a processor-side event to a line's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The line's state after the event completes.
    pub next: MoesiState,
    /// The event misses: data (or permission) must be fetched.
    pub is_miss: bool,
    /// Other caches' copies must be invalidated first.
    pub needs_invalidations: bool,
}

/// Processor read against the local state.
pub fn local_read(state: MoesiState) -> Transition {
    match state {
        MoesiState::Invalid => Transition {
            // Final state (S or E) depends on whether other sharers exist;
            // the directory decides. S is the conservative landing state;
            // the engine upgrades to E on an unshared response.
            next: MoesiState::Shared,
            is_miss: true,
            needs_invalidations: false,
        },
        s => Transition {
            next: s,
            is_miss: false,
            needs_invalidations: false,
        },
    }
}

/// Processor write against the local state.
pub fn local_write(state: MoesiState) -> Transition {
    match state {
        MoesiState::Modified => Transition {
            next: MoesiState::Modified,
            is_miss: false,
            needs_invalidations: false,
        },
        MoesiState::Exclusive => Transition {
            // Silent E -> M upgrade.
            next: MoesiState::Modified,
            is_miss: false,
            needs_invalidations: false,
        },
        MoesiState::Owned | MoesiState::Shared => Transition {
            // Upgrade miss: permission only, but sharers must be killed.
            next: MoesiState::Modified,
            is_miss: true,
            needs_invalidations: true,
        },
        MoesiState::Invalid => Transition {
            next: MoesiState::Modified,
            is_miss: true,
            needs_invalidations: true,
        },
    }
}

/// A remote processor reads a line this cache holds.
pub fn remote_read(state: MoesiState) -> MoesiState {
    match state {
        // Dirty suppliers retain ownership in MOESI (no writeback).
        MoesiState::Modified | MoesiState::Owned => MoesiState::Owned,
        MoesiState::Exclusive | MoesiState::Shared => MoesiState::Shared,
        MoesiState::Invalid => MoesiState::Invalid,
    }
}

/// A remote processor writes a line this cache holds.
pub fn remote_write(_state: MoesiState) -> MoesiState {
    MoesiState::Invalid
}

#[cfg(test)]
mod tests {
    use super::*;
    use MoesiState::*;

    #[test]
    fn read_hits_do_not_change_state() {
        for s in [Modified, Owned, Exclusive, Shared] {
            let t = local_read(s);
            assert_eq!(t.next, s);
            assert!(!t.is_miss);
        }
    }

    #[test]
    fn read_miss_from_invalid() {
        let t = local_read(Invalid);
        assert!(t.is_miss);
        assert!(!t.needs_invalidations);
        assert!(t.next.is_readable());
    }

    #[test]
    fn write_hits_only_in_m_and_e() {
        for s in MoesiState::ALL {
            let t = local_write(s);
            assert_eq!(!t.is_miss, matches!(s, Modified | Exclusive), "{s}");
            assert_eq!(t.next, Modified);
        }
    }

    #[test]
    fn shared_and_owned_writes_need_invalidations() {
        assert!(local_write(Shared).needs_invalidations);
        assert!(local_write(Owned).needs_invalidations);
        assert!(local_write(Invalid).needs_invalidations);
        assert!(!local_write(Exclusive).needs_invalidations);
    }

    #[test]
    fn remote_read_preserves_dirty_ownership() {
        assert_eq!(remote_read(Modified), Owned);
        assert_eq!(remote_read(Owned), Owned);
        assert_eq!(remote_read(Exclusive), Shared);
        assert_eq!(remote_read(Shared), Shared);
    }

    #[test]
    fn remote_write_always_invalidates() {
        for s in MoesiState::ALL {
            assert_eq!(remote_write(s), Invalid);
        }
    }

    #[test]
    fn dirty_states_supply_data() {
        assert!(Modified.supplies_data());
        assert!(Owned.supplies_data());
        assert!(Exclusive.supplies_data());
        assert!(!Shared.supplies_data());
        assert!(!Invalid.supplies_data());
    }

    #[test]
    fn exactly_m_and_o_are_dirty() {
        let dirty: Vec<_> = MoesiState::ALL.iter().filter(|s| s.is_dirty()).collect();
        assert_eq!(dirty, vec![&Modified, &Owned]);
    }

    #[test]
    fn writability_implies_readability() {
        for s in MoesiState::ALL {
            if s.is_writable() {
                assert!(s.is_readable());
            }
        }
    }
}
